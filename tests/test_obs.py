"""Tests for the observability layer (`repro.obs`).

Covers the PR's contracts: thread-safe span stacks and registry series
under racing threads, trace propagation across the shard process
boundary (stitched parent/child ids), slowest-N retention under churn,
near-zero disabled cost call sites, byte-identical traced answers, the
metrics fold (full ``reset()``, backend-sourced restart counters), and
the exporters (Prometheus text, JSON log lines, waterfalls).
"""

from __future__ import annotations

import io
import json
import threading

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine
from repro.core.query import DurableTopKQuery
from repro.core.record import Dataset
from repro.minidb import MiniDB, t_hop_procedure
from repro.obs import (
    TRACES,
    MetricsRegistry,
    Span,
    Trace,
    TraceBuffer,
    absorb_remote_spans,
    begin_remote,
    configure_json_logging,
    current_context,
    disable,
    enable,
    end_remote,
    format_waterfall,
    global_registry,
    render_prometheus,
    trace_span,
)
from repro.obs.trace import reset_for_tests
from repro.scoring import LinearPreference
from repro.service import MetricsCollector, QueryRequest, QueryResponse
from repro.service.request import RejectionReason
from repro.shard import ShardCoordinator


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with a pristine tracer."""
    reset_for_tests()
    yield
    reset_for_tests()


# ----------------------------------------------------------------------
# Span stacks and traces
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_is_noop(self):
        disable()
        with trace_span("engine.query", k=3) as span:
            span.set(answers=1)
        assert len(TRACES) == 0

    def test_nesting_builds_one_tree(self):
        enable()
        with trace_span("service.batch", batch_size=2) as root:
            with trace_span("engine.query", k=3) as child:
                child.set(answers=7)
        traces = TRACES.slowest()
        assert len(traces) == 1
        trace = traces[0]
        assert trace.root.name == "service.batch"
        assert trace.root.parent_id is None
        (inner,) = trace.children_of(trace.root.span_id)
        assert inner.name == "engine.query"
        assert inner.attrs["answers"] == 7
        assert 0.0 <= inner.duration <= trace.root.duration
        assert root.attrs["batch_size"] == 2

    def test_threads_get_independent_stacks(self):
        """Racing threads must never cross-link spans (thread-local stacks)."""
        enable()
        errors: list[str] = []
        barrier = threading.Barrier(8)

        def worker(tag: int):
            barrier.wait()
            for i in range(50):
                with trace_span("root", tag=tag, i=i) as root:
                    with trace_span("child", tag=tag) as child:
                        if child.parent_id != root.span_id:
                            errors.append("wrong parent")
                    if root.attrs["tag"] != tag:
                        errors.append("attr bleed")

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert TRACES.offered == 8 * 50
        for trace in TRACES.slowest():
            tags = {span.attrs["tag"] for span in trace.spans}
            assert len(tags) == 1  # one thread per trace, never mixed
            assert len(trace.spans) == 2

    def test_buffer_retains_slowest_under_churn(self):
        buffer = TraceBuffer(capacity=8)
        durations = [(i * 7919) % 1000 for i in range(200)]  # deterministic shuffle
        for i, ms in enumerate(durations):
            trace = Trace(f"t{i}")
            trace.add(
                Span(
                    trace_id=f"t{i}",
                    span_id=f"s{i}",
                    parent_id=None,
                    name="root",
                    start=0.0,
                    duration=ms / 1e3,
                )
            )
            buffer.offer(trace)
        kept = [t.duration for t in buffer.slowest()]
        expected = sorted((ms / 1e3 for ms in durations), reverse=True)[:8]
        assert kept == expected
        assert buffer.offered == 200
        buffer.clear()
        assert len(buffer) == 0


# ----------------------------------------------------------------------
# Cross-process propagation (the shard pipe)
# ----------------------------------------------------------------------
class TestRemoteStitching:
    def test_begin_end_remote_reparents_to_anchor(self):
        enable()
        with trace_span("shard.scatter") as scatter:
            ctx = current_context()
        assert ctx == (scatter.trace_id, scatter.span_id)
        # Simulate the worker side of the pipe in-process.
        reset_for_tests()
        session = begin_remote(ctx)
        with trace_span("shard.worker", shard=1):
            with trace_span("engine.query", k=3):
                pass
        wire = end_remote(session)
        assert len(TRACES) == 0  # remote traces never complete locally
        assert [w["name"] for w in wire] == ["shard.worker", "engine.query"]
        worker_root, engine = wire
        assert worker_root["trace_id"] == scatter.trace_id
        assert worker_root["parent_id"] == scatter.span_id
        assert engine["parent_id"] == worker_root["span_id"]

    def test_absorb_stitches_into_inflight_trace_only(self):
        enable()
        with trace_span("shard.scatter") as scatter:
            ctx = current_context()
            remote = [
                Span(
                    trace_id=scatter.trace_id,
                    span_id="deadbeef-1",
                    parent_id=ctx[1],
                    name="shard.worker",
                    start=scatter.start,
                    duration=0.001,
                    pid=99999,
                ).to_wire()
            ]
            absorb_remote_spans(remote)
        (trace,) = TRACES.slowest()
        names = [s.name for s in trace.spans]
        assert names == ["shard.scatter", "shard.worker"]
        # After completion the same spans are dropped, not resurrected.
        absorb_remote_spans(remote)
        assert len(TRACES.slowest()[0].spans) == 2

    def test_sharded_query_yields_one_stitched_tree(self, small_ind):
        """The acceptance scenario: coordinator + worker spans, one tree."""
        request = QueryRequest(
            scorer=LinearPreference([0.6, 0.4]), k=3, tau=120, algorithm="t-hop"
        )
        with ShardCoordinator(small_ind, n_shards=3) as coordinator:
            untraced = coordinator.query(request)
            enable()
            with trace_span("service.batch", batch_size=1):
                traced = coordinator.query(request)
            disable()
        # Tracing observes, never participates.
        assert traced.ids == untraced.ids
        assert traced.stats.as_dict() == untraced.stats.as_dict()

        (trace,) = TRACES.slowest()
        root = trace.root
        (scatter,) = trace.children_of(root.span_id)
        assert scatter.name == "shard.scatter"
        assert scatter.attrs["fanout"] == 3
        workers = trace.children_of(scatter.span_id)
        assert [w.name for w in workers] == ["shard.worker"] * 3
        assert {w.attrs["shard"] for w in workers} == {0, 1, 2}
        pids = {w.pid for w in workers}
        assert len(pids) == 3 and root.pid not in pids
        for worker in workers:
            (engine,) = trace.children_of(worker.span_id)
            assert engine.name == "engine.query"
            assert engine.attrs["durability_topk"] >= 1
            (index,) = trace.children_of(engine.span_id)
            assert index.name == "index.topk"
            assert index.attrs["candidates_scanned"] > 0
            assert index.attrs["calls"] == engine.attrs["durability_topk"]


# ----------------------------------------------------------------------
# Layer attributes
# ----------------------------------------------------------------------
class TestLayerSpans:
    def test_engine_span_answers_match_result(self, small_ind):
        engine = DurableTopKEngine(small_ind)
        scorer = LinearPreference([0.5, 0.5])
        enable()
        result = engine.query(DurableTopKQuery(k=3, tau=100), scorer)
        (trace,) = TRACES.slowest()
        span = trace.root
        assert span.name == "engine.query"
        assert span.attrs["answers"] == len(result.ids)
        assert span.attrs["durability_topk"] == result.stats.durability_topk_queries
        (index,) = trace.children_of(span.span_id)
        assert index.name == "index.topk"

    def test_minidb_span_reports_page_counts(self):
        rng = np.random.default_rng(11)
        db = MiniDB(Dataset(rng.random((1200, 2)), name="obs-test"), buffer_pages=16)
        try:
            u = np.array([0.6, 0.4])
            untraced = t_hop_procedure(db, u, 3, 200, 200, 999)
            enable()
            traced = t_hop_procedure(db, u, 3, 200, 200, 999)
            disable()
            assert traced.ids == untraced.ids
            assert traced.logical_reads == untraced.logical_reads
            (trace,) = TRACES.slowest()
            pages = next(s for s in trace.spans if s.name == "minidb.pages")
            assert pages.attrs["logical_reads"] == traced.logical_reads
            assert pages.attrs["physical_reads"] == traced.physical_reads
            assert pages.attrs["topk_queries"] == traced.topk_queries
        finally:
            db.close()


# ----------------------------------------------------------------------
# The metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_series_identity_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("wal.fsyncs")
        assert registry.counter("wal.fsyncs") is a
        b = registry.counter("rej", reason="timeout")
        assert registry.counter("rej", reason="queue_full") is not b
        a.inc()
        a.inc(4)
        assert a.value == 5
        gauge = registry.gauge("segments")
        gauge.set(3)
        gauge.dec()
        assert gauge.value == 2
        hist = registry.histogram("lat", window=4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            hist.observe(v)
        assert hist.count == 5 and hist.sum == 15.0
        assert hist.samples() == [2.0, 3.0, 4.0, 5.0]  # bounded window
        assert hist.percentile(50) == 3.5

    def test_racing_threads_lose_no_increments(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            counter = registry.counter("hits")
            hist = registry.histogram("obs")
            for i in range(1000):
                counter.inc()
                hist.observe(float(i))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("hits").value == 8000
        assert registry.histogram("obs").count == 8000

    def test_reset_zeroes_every_series(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0


# ----------------------------------------------------------------------
# The metrics fold (collector over registry)
# ----------------------------------------------------------------------
def _response(total=0.010, wait=0.002, shards=None):
    extra = {"shards": shards} if shards else {}
    result = type("R", (), {"ids": [1], "extra": extra})()
    request = QueryRequest(scorer=LinearPreference([0.5, 0.5]), k=3, tau=50)
    return QueryResponse(
        request=request,
        result=result,
        wait_seconds=wait,
        service_seconds=total - wait,
        total_seconds=total,
    )


class TestMetricsCollector:
    def test_counters_are_registry_series(self):
        collector = MetricsCollector()
        collector.record_submit()
        collector.record_batch(pool_hit=True)
        collector.record_rejection(RejectionReason.QUEUE_FULL)
        collector.record_response(_response(shards=[0, 2]))
        snap = collector.snapshot()
        assert snap.submitted == 1 and snap.completed == 1
        assert snap.rejected == {RejectionReason.QUEUE_FULL.value: 1}
        assert snap.fanout == {2: 1}
        assert snap.shard_queries == {0: 1, 2: 1}
        flat = collector.registry.as_dict()
        assert flat["service.requests.submitted"] == 1
        assert flat["service.fanout{width=2}"] == 1

    def test_reset_clears_samples_and_counters(self):
        """The satellite fix: reset() drops warmup samples, not just the clock."""
        collector = MetricsCollector()
        for _ in range(5):
            collector.record_submit()
            collector.record_response(_response(total=0.5))
        collector.reset()
        snap = collector.snapshot()
        assert snap.submitted == 0 and snap.completed == 0
        assert snap.latency_p95 == 0.0  # warmup latencies are gone
        collector.record_submit()
        collector.record_response(_response(total=0.001))
        assert collector.snapshot().latency_p95 <= 0.001 + 1e-9

    def test_reset_clock_keeps_samples(self):
        collector = MetricsCollector()
        collector.record_response(_response(total=0.5))
        collector.reset_clock()
        assert collector.snapshot().completed == 1  # documented clock-only reset

    def test_snapshot_pulls_backend_sources(self):
        collector = MetricsCollector()
        collector.add_source(
            lambda: {"shard_restarts": 2, "shard_revivals": 1, "other": 9}
        )
        snap = collector.snapshot()
        assert snap.shard_restarts == 2
        assert snap.shard_revivals == 1
        assert snap.extra["other"] == 9
        assert snap.as_dict()["shard_restarts"] == 2
        assert "2 restarts (1 health-check revivals)" in snap.report()


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("wal.fsyncs").inc(3)
        registry.gauge("ingest.segments").set(4)
        registry.histogram("lat", window=8).observe(0.5)
        text = render_prometheus(registry)
        assert "# TYPE repro_wal_fsyncs_total counter" in text
        assert "repro_wal_fsyncs_total 3" in text
        assert "repro_ingest_segments 4" in text
        assert "repro_lat_count 1" in text
        assert 'quantile="0.99"' in text

    def test_json_log_lines_and_trace_hook(self):
        stream = io.StringIO()
        configure_json_logging(stream=stream)
        enable()
        with trace_span("service.batch", batch_size=3):
            pass
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        events = [line["event"] for line in lines]
        assert "trace.complete" in events
        complete = lines[events.index("trace.complete")]
        assert complete["root"] == "service.batch"
        assert complete["spans"] == 1

    def test_waterfall_contains_offsets_and_attrs(self, small_ind):
        engine = DurableTopKEngine(small_ind)
        enable()
        engine.query(DurableTopKQuery(k=3, tau=100), LinearPreference([0.5, 0.5]))
        disable()
        (trace,) = TRACES.slowest()
        art = format_waterfall(trace)
        assert "engine.query" in art and "index.topk" in art
        assert "candidates_scanned=" in art
        assert "layers:" in art


# ----------------------------------------------------------------------
# Disabled-mode guarantees
# ----------------------------------------------------------------------
class TestDisabledPath:
    def test_lower_layers_never_emit_when_disabled(self, small_ind):
        disable()
        engine = DurableTopKEngine(small_ind)
        engine.query(DurableTopKQuery(k=3, tau=100), LinearPreference([0.5, 0.5]))
        assert len(TRACES) == 0

    def test_global_registry_collects_without_tracing(self, small_ind):
        """Always-on metrics are independent of the tracing flag."""
        disable()
        before = global_registry().counter("service.pool.evictions").value
        from repro.service.pool import SessionPool

        engine = DurableTopKEngine(small_ind)
        pool = SessionPool(capacity=1)
        for i, u in enumerate(([0.5, 0.5], [0.7, 0.3])):
            scorer = LinearPreference(u)
            session, _ = pool.checkout(i, lambda s=scorer: engine.session(s))
            pool.checkin(i, session)
        pool.close()
        assert global_registry().counter("service.pool.evictions").value == before + 1
