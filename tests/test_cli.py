"""Tests for the experiment CLI (`python -m repro`)."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestRun:
    def test_run_fig8_small(self, capsys, tmp_path):
        code = main(
            ["run", "fig8", "--workload", "nba2", "--n", "2000",
             "--preferences", "1", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "t-hop" in out
        saved = list(tmp_path.glob("*.txt"))
        assert len(saved) == 1
        assert "Figure 8" in saved[0].read_text()

    def test_run_fig12_anti_small(self, capsys):
        # Route the ANTI workload flag through to figure12.
        code = main(["run", "fig12", "--workload", "anti", "--n", "2000", "--preferences", "1"])
        assert code == 0
        assert "ANTI" in capsys.readouterr().out


class TestStream:
    def test_stream_replays_arrival_decisions(self, capsys):
        code = main(
            ["stream", "--workload", "ind", "--n", "300", "--k", "2",
             "--tau", "40", "--lookahead", "--limit", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "durable on arrival" in out
        assert "look-back durable on arrival" in out
        assert "look-ahead durable" in out

    def test_stream_custom_weights(self, capsys):
        code = main(
            ["stream", "--workload", "ind", "--n", "200", "--weights", "0.9,0.1"]
        )
        assert code == 0
        assert "u=[0.9, 0.1]" in capsys.readouterr().out

    def test_stream_matches_offline_engine(self, capsys):
        """The streamed look-back count equals the offline durable set."""
        from repro import LinearPreference, durable_topk
        from repro.data import independent_uniform

        main(["stream", "--workload", "ind", "--n", "400", "--k", "3", "--tau", "60"])
        out = capsys.readouterr().out
        data = independent_uniform(400, 2, seed=0)
        expected = durable_topk(data, LinearPreference([0.5, 0.5]), k=3, tau=60)
        assert f"{len(expected.ids)}/400 records look-back durable" in out


class TestIngestBench:
    def test_smoke_verifies_every_response(self, capsys, tmp_path):
        code = main(["ingest-bench", "--smoke", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "smoke ok" in out
        saved = tmp_path / "ingest_throughput.txt"
        assert "incorrect" in saved.read_text() or "identical" in saved.read_text()
