"""Tests for the experiment CLI (`python -m repro`)."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestRun:
    def test_run_fig8_small(self, capsys, tmp_path):
        code = main(
            ["run", "fig8", "--workload", "nba2", "--n", "2000",
             "--preferences", "1", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "t-hop" in out
        saved = list(tmp_path.glob("*.txt"))
        assert len(saved) == 1
        assert "Figure 8" in saved[0].read_text()

    def test_run_fig12_anti_small(self, capsys):
        # Route the ANTI workload flag through to figure12.
        code = main(["run", "fig12", "--workload", "anti", "--n", "2000", "--preferences", "1"])
        assert code == 0
        assert "ANTI" in capsys.readouterr().out
