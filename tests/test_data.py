"""Tests for the dataset generators."""

import numpy as np
import pytest

from repro.data import (
    NBA_VARIANTS,
    anticorrelated,
    correlated,
    generate_nba,
    generate_network,
    independent_uniform,
    nba_variant,
    network_variant,
    random_permutation_scores,
    synthetic_dataset,
)
from repro.index.skyline import kskyband_indices


class TestSynthetic:
    def test_ind_shape_and_range(self):
        data = independent_uniform(500, 3, seed=1)
        assert data.values.shape == (500, 3)
        assert data.values.min() >= 0.0
        assert data.values.max() <= 1.0

    def test_ind_deterministic(self):
        a = independent_uniform(100, 2, seed=5)
        b = independent_uniform(100, 2, seed=5)
        assert np.array_equal(a.values, b.values)

    def test_anti_radii_in_annulus(self):
        data = anticorrelated(800, 2, seed=2)
        radii = np.linalg.norm(data.values, axis=1)
        assert radii.min() >= 0.8 - 1e-9
        assert radii.max() <= 1.0 + 1e-9

    def test_anti_higher_dims(self):
        data = anticorrelated(300, 5, seed=3)
        radii = np.linalg.norm(data.values, axis=1)
        assert radii.min() >= 0.8 - 1e-9
        assert (data.values >= 0).all()

    def test_anti_skyband_much_larger_than_ind(self):
        """The property Figure 12 exploits: ANTI inflates the k-skyband."""
        anti = anticorrelated(400, 2, seed=4)
        ind = independent_uniform(400, 2, seed=4)
        k = 4
        anti_band = len(kskyband_indices(anti.values, k))
        ind_band = len(kskyband_indices(ind.values, k))
        assert anti_band > 3 * ind_band

    def test_anti_invalid_radii(self):
        with pytest.raises(ValueError):
            anticorrelated(10, 2, inner_radius=1.0, outer_radius=0.5)

    def test_correlated_validation(self):
        with pytest.raises(ValueError):
            correlated(10, 2, rho=1.5)

    def test_dispatch(self):
        assert synthetic_dataset("ind", 50).n == 50
        assert synthetic_dataset("anti", 50).n == 50
        assert synthetic_dataset("corr", 50).n == 50
        with pytest.raises(ValueError):
            synthetic_dataset("zipf", 50)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            independent_uniform(0, 2)


class TestRPM:
    def test_permutation_preserves_multiset(self):
        values = np.array([3.0, 1.0, 2.0, 5.0])
        scores = random_permutation_scores(4, seed=1, values=values)
        assert sorted(scores.tolist()) == sorted(values.tolist())

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            random_permutation_scores(3, values=np.ones(5))

    def test_default_values_distinct(self):
        scores = random_permutation_scores(1000, seed=2)
        assert len(np.unique(scores)) == 1000


class TestNBA:
    def test_shape_and_names(self):
        data = generate_nba(1000, seed=1)
        assert data.values.shape == (1000, 15)
        assert data.attribute_names[0] == "points"
        assert data.labels is not None
        assert data.timestamps is not None

    def test_deterministic(self):
        a = generate_nba(200, seed=9)
        b = generate_nba(200, seed=9)
        assert np.array_equal(a.values, b.values)

    def test_chronological_timestamps(self):
        data = generate_nba(500, seed=2)
        seasons = [int(ts.split("-")[0]) for ts in data.timestamps]
        assert seasons == sorted(seasons)

    def test_nonnegative_and_heavy_tail(self):
        data = generate_nba(5000, seed=3)
        assert (data.values >= 0).all()
        points = data.values[:, 0]
        # A meaningful upper tail: the max should dwarf the median.
        assert points.max() > 4 * np.median(points)

    def test_variants(self):
        data = generate_nba(300, seed=4)
        for x, names in NBA_VARIANTS.items():
            sub = nba_variant(data, x)
            assert sub.attribute_names == names
        with pytest.raises(ValueError):
            nba_variant(data, 4)

    def test_points_consistency(self):
        """points = 2*fgm + 3*threes + ftm by construction."""
        data = generate_nba(400, seed=5)
        idx = {a: i for i, a in enumerate(data.attribute_names)}
        points = data.values[:, idx["points"]]
        recomputed = (
            2 * data.values[:, idx["field_goals_made"]]
            + 3 * data.values[:, idx["three_pointers_made"]]
            + data.values[:, idx["free_throws_made"]]
        )
        assert np.array_equal(points, recomputed)

    def test_rebounds_split(self):
        data = generate_nba(400, seed=6)
        idx = {a: i for i, a in enumerate(data.attribute_names)}
        total = data.values[:, idx["rebounds"]]
        split = data.values[:, idx["offensive_rebounds"]] + data.values[:, idx["defensive_rebounds"]]
        assert np.array_equal(total, split)


class TestNetwork:
    def test_shape_and_normalisation(self):
        data = generate_network(2000, seed=1)
        assert data.values.shape == (2000, 37)
        assert data.values.min() >= 0.0
        assert data.values.max() <= 1.0

    def test_unnormalised_heavy_tail(self):
        data = generate_network(3000, seed=2, normalise=False)
        src = data.values[:, 1]
        assert src.max() > 20 * np.median(src[src > 0])

    def test_variants(self):
        data = generate_network(500, seed=3)
        for x in (2, 3, 5, 10, 20, 30, 37):
            assert network_variant(data, x).d == x
        with pytest.raises(ValueError):
            network_variant(data, 38)

    def test_anomaly_rate_validation(self):
        with pytest.raises(ValueError):
            generate_network(100, anomaly_rate=1.5)

    def test_deterministic(self):
        a = generate_network(300, seed=7)
        b = generate_network(300, seed=7)
        assert np.array_equal(a.values, b.values)
