"""Tests for the `repro top` dashboard (`repro.experiments.top`).

The :class:`Dashboard` render is a pure string over a collector, a
registry and a trace buffer, so the tests fabricate those and assert on
frame content: request/latency/batching rows, frame-over-frame counter
rates, per-SLO burn rows, and the slowest-trace one-liner. The CLI
``--once`` path drives the real demo stack once, headless.
"""

from __future__ import annotations

import io

import pytest

from repro.experiments.cli import main
from repro.experiments.top import Dashboard, run_top
from repro.obs import TRACES, MetricsRegistry, TraceBuffer, enable, trace_span
from repro.obs.slo import SLOMonitor
from repro.obs.trace import reset_for_tests
from repro.scoring import LinearPreference
from repro.service import (
    MetricsCollector,
    QueryRequest,
    QueryResponse,
    RejectionReason,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    reset_for_tests()
    yield
    reset_for_tests()


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def make_dashboard(clock=None, traces=None, slos=False):
    registry = MetricsRegistry()
    collector = MetricsCollector(
        registry=registry, slos=SLOMonitor(clock=clock) if slos else None
    )
    dashboard = Dashboard(
        collector,
        registry=registry,
        traces=traces if traces is not None else TraceBuffer(),
        clock=clock or FakeClock(),
    )
    return dashboard, collector, registry


def response(total_seconds: float = 0.01) -> QueryResponse:
    request = QueryRequest(scorer=LinearPreference([0.5, 0.5]), k=3, tau=30)
    return QueryResponse(request=request, total_seconds=total_seconds)


class TestDashboardFrame:
    def test_frame_shows_requests_latency_and_batching(self):
        clock = FakeClock(5.0)
        dashboard, collector, _ = make_dashboard(clock=clock)
        collector.record_response(response(0.010))
        collector.record_rejection(RejectionReason.QUEUE_FULL)
        clock.t = 6.0
        frame = dashboard.frame()
        assert "repro top" in frame
        assert "1 ok / 1 rejected" in frame
        assert "latency ms p50" in frame
        assert "batching" in frame
        assert "\x1b" not in frame  # pure text; ANSI only in the live loop

    def test_counter_rates_are_frame_over_frame(self):
        clock = FakeClock(10.0)
        dashboard, _, registry = make_dashboard(clock=clock)
        dashboard.frame()  # first frame: rates anchor at current totals
        registry.counter("wal.fsyncs").inc(10)
        clock.t = 12.0  # 10 fsyncs over 2 s -> 5.0/s
        frame = dashboard.frame()
        assert "wal fsync    5.0/s" in frame
        clock.t = 14.0  # no new fsyncs -> rate falls back to 0
        assert "wal fsync    0.0/s" in dashboard.frame()

    def test_idle_frame_shows_zero_throughput(self):
        # The requests row must be frame-over-frame: the collector's
        # lifetime average stays positive long after traffic stops, and
        # an idle dashboard showing yesterday's rate is a lie.
        clock = FakeClock(100.0)
        dashboard, collector, _ = make_dashboard(clock=clock)
        dashboard.frame()
        for _ in range(20):
            collector.record_response(response(0.005))
        clock.t = 102.0  # 20 completions over 2 s -> 10.0/s
        assert "throughput     10.0 req/s" in dashboard.frame()
        clock.t = 104.0  # idle frame: rate must drop to zero ...
        frame = dashboard.frame()
        assert "throughput      0.0 req/s" in frame
        # ... even though the lifetime average is still positive.
        assert collector.snapshot().throughput > 0.0

    def test_gateway_row_rates_and_idle_reset(self):
        clock = FakeClock(50.0)
        dashboard, _, registry = make_dashboard(clock=clock)
        assert "gateway" not in dashboard.frame()
        registry.counter("gateway.connections_total").inc(2)
        registry.gauge("gateway.connections").inc(2)
        registry.counter("gateway.requests", tenant="acme", outcome="ok").inc(12)
        registry.counter("gateway.requests", tenant="acme", outcome="rate_limited").inc(4)
        registry.counter("gateway.bytes_in", tenant="acme").inc(4096)
        registry.counter("gateway.bytes_out", tenant="acme").inc(8192)
        clock.t = 52.0  # over 2 s: 6 ok/s, 2 rejected/s, 2/4 KiB/s
        frame = dashboard.frame()
        assert "gateway    conns 2" in frame
        assert "ok    6.0/s" in frame
        assert "rejected    2.0/s" in frame
        assert "in/out    2.0/   4.0 KiB/s" in frame
        clock.t = 54.0  # idle: every gateway rate falls back to zero
        frame = dashboard.frame()
        assert "ok    0.0/s" in frame
        assert "rejected    0.0/s" in frame
        assert "in/out    0.0/   0.0 KiB/s" in frame

    def test_slo_rows_render_burning_state(self):
        clock = FakeClock(100.0)
        dashboard, collector, _ = make_dashboard(clock=clock, slos=True)
        for _ in range(30):
            collector.record_response(response(10.0))  # way over objective
        frame = dashboard.frame()
        assert "slo        latency     BURNING" in frame
        assert "slo        rejections  ok" in frame

    def test_slowest_trace_one_liner(self):
        enable()
        with trace_span("service.batch", batch_size=4):
            pass
        dashboard, _, _ = make_dashboard(traces=TRACES)
        frame = dashboard.frame()
        assert "slowest    service.batch" in frame
        assert "batch_size=4" in frame

    def test_empty_trace_buffer_says_so(self):
        dashboard, _, _ = make_dashboard()
        assert "no traces retained" in dashboard.frame()

    def test_fanout_row_appears_only_for_sharded_traffic(self):
        dashboard, collector, registry = make_dashboard()
        assert "fanout" not in dashboard.frame()
        registry.counter("service.fanout", width=2).inc()
        registry.counter("service.shard_queries", shard=0).inc()
        registry.counter("service.shard_queries", shard=1).inc()
        frame = dashboard.frame()
        assert "fanout" in frame and "s0=1" in frame


class TestTopCLI:
    def test_run_top_once_renders_headless(self):
        buf = io.StringIO()
        frame = run_top(
            once=True,
            interval=0.2,
            n0=1_500,
            clients=1,
            workers=1,
            writers=1,
            n_preferences=4,
            request_rate=120.0,
            out=buf,
        )
        assert "repro top" in frame
        assert "slo        latency" in frame
        assert "ingest     segments" in frame
        assert "\x1b" not in buf.getvalue()  # --once never emits ANSI

    def test_cli_top_once(self, capsys):
        assert main(["top", "--once", "--interval", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "requests" in out
