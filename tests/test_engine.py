"""Unit tests for the DurableTopKEngine facade and query types."""

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine, durable_topk
from repro.core.query import Direction, DurableTopKQuery
from repro.core.record import Dataset
from repro.core.reference import brute_force_durable_topk
from repro.scoring import LinearPreference


class TestQueryValidation:
    def test_k_and_tau_bounds(self):
        with pytest.raises(ValueError):
            DurableTopKQuery(k=0, tau=1)
        with pytest.raises(ValueError):
            DurableTopKQuery(k=1, tau=0)

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            DurableTopKQuery(k=1, tau=1, interval=(5, 2))
        with pytest.raises(ValueError):
            DurableTopKQuery(k=1, tau=1, interval=(-1, 2))

    def test_resolve_interval(self):
        q = DurableTopKQuery(k=1, tau=1)
        assert q.resolve_interval(10) == (0, 9)
        q2 = DurableTopKQuery(k=1, tau=1, interval=(3, 100))
        assert q2.resolve_interval(10) == (3, 9)
        with pytest.raises(ValueError):
            DurableTopKQuery(k=1, tau=1, interval=(20, 30)).resolve_interval(10)
        with pytest.raises(ValueError):
            q.resolve_interval(0)

    def test_reversed_query(self):
        q = DurableTopKQuery(k=2, tau=5, interval=(2, 6), direction=Direction.FUTURE)
        r = q.reversed(10)
        assert r.interval == (3, 7)
        assert r.direction is Direction.PAST


class TestEngine:
    @pytest.fixture(scope="class")
    def dataset(self):
        rng = np.random.default_rng(61)
        return Dataset(rng.random((400, 2)), name="engine-test")

    @pytest.fixture(scope="class")
    def scorer(self):
        return LinearPreference([0.5, 0.5])

    def test_invalid_index_method(self, dataset):
        with pytest.raises(ValueError):
            DurableTopKEngine(dataset, index_method="btree")

    def test_unknown_algorithm(self, dataset, scorer):
        engine = DurableTopKEngine(dataset)
        with pytest.raises(KeyError, match="unknown algorithm"):
            engine.query(DurableTopKQuery(k=1, tau=10), scorer, algorithm="quantum")

    def test_scorer_dimension_mismatch(self, dataset):
        engine = DurableTopKEngine(dataset)
        with pytest.raises(ValueError):
            engine.query(DurableTopKQuery(k=1, tau=10), LinearPreference([1.0, 1.0, 1.0]))

    def test_compare_returns_identical_answers(self, dataset, scorer):
        engine = DurableTopKEngine(dataset, skyband_k_max=8)
        results = engine.compare(DurableTopKQuery(k=3, tau=40), scorer)
        assert set(results) == {"t-base", "t-hop", "s-base", "s-band", "s-hop"}
        answers = {tuple(r.ids) for r in results.values()}
        assert len(answers) == 1

    def test_compare_skips_band_for_non_strict_scorers(self, dataset):
        engine = DurableTopKEngine(dataset, skyband_k_max=8)
        results = engine.compare(DurableTopKQuery(k=3, tau=40), LinearPreference([1.0, 0.0]))
        assert "s-band" not in results
        assert "t-hop" in results

    def test_future_direction_mirror_equivalence(self, dataset, scorer):
        engine = DurableTopKEngine(dataset)
        res = engine.query(
            DurableTopKQuery(k=2, tau=30, direction=Direction.FUTURE), scorer, algorithm="t-hop"
        )
        rev_scores = scorer.scores(dataset.values)[::-1]
        expected = sorted(
            399 - t for t in brute_force_durable_topk(rev_scores, 2, 0, 399, 30)
        )
        assert res.ids == expected

    def test_future_with_interval(self, dataset, scorer):
        engine = DurableTopKEngine(dataset)
        res = engine.query(
            DurableTopKQuery(k=2, tau=30, interval=(100, 250), direction=Direction.FUTURE),
            scorer,
            algorithm="s-hop",
        )
        assert all(100 <= t <= 250 for t in res.ids)
        rev_scores = scorer.scores(dataset.values)[::-1]
        expected = sorted(
            399 - t
            for t in brute_force_durable_topk(rev_scores, 2, 399 - 250, 399 - 100, 30)
        )
        assert res.ids == expected

    def test_with_durations(self, dataset, scorer):
        engine = DurableTopKEngine(dataset)
        res = engine.query(
            DurableTopKQuery(k=2, tau=25), scorer, algorithm="t-hop", with_durations=True
        )
        assert res.durations is not None
        assert set(res.durations) == set(res.ids)
        assert all(d >= 25 for d in res.durations.values())

    def test_prepare_builds_offline_indexes(self, dataset, scorer):
        engine = DurableTopKEngine(dataset, index_method="skyline_tree", skyband_k_max=4)
        engine.prepare(["s-band"])
        assert dataset.has_cached("skyline_tree")
        assert dataset.has_cached("skyband_index")

    def test_one_shot_helper(self, dataset, scorer):
        res = durable_topk(dataset, scorer, k=1, tau=50)
        expected = brute_force_durable_topk(scorer.scores(dataset.values), 1, 0, 399, 50)
        assert res.ids == expected

    def test_result_describe(self, dataset, scorer):
        res = durable_topk(dataset, scorer, k=1, tau=50)
        text = res.describe(dataset, scorer, limit=3)
        assert "durable record" in text
        assert "t=" in text


class TestPreferenceCache:
    @pytest.fixture()
    def dataset(self):
        rng = np.random.default_rng(62)
        return Dataset(rng.random((500, 2)), name="cache-test")

    def test_same_preference_reuses_index(self, dataset):
        engine = DurableTopKEngine(dataset)
        a = engine._bound_index(LinearPreference([0.5, 0.5]))
        b = engine._bound_index(LinearPreference([0.5, 0.5]))
        assert a is b

    def test_different_preferences_do_not_collide(self, dataset):
        engine = DurableTopKEngine(dataset)
        a = engine._bound_index(LinearPreference([0.5, 0.5]))
        b = engine._bound_index(LinearPreference([0.9, 0.1]))
        assert a is not b

    def test_lru_eviction(self, dataset):
        engine = DurableTopKEngine(dataset)
        first = engine._bound_index(LinearPreference([1.0, 0.0]))
        for i in range(engine.PREFERENCE_CACHE_SIZE):
            engine._bound_index(LinearPreference([1.0, float(i + 1)]))
        again = engine._bound_index(LinearPreference([1.0, 0.0]))
        assert again is not first  # evicted and rebuilt

    def test_cached_queries_stay_correct(self, dataset):
        from repro.core.reference import brute_force_durable_topk

        engine = DurableTopKEngine(dataset)
        scorer = LinearPreference([0.3, 0.7])
        scores = scorer.scores(dataset.values)
        for k, tau in ((1, 30), (3, 60), (5, 120)):  # same scorer, varied query
            res = engine.query(DurableTopKQuery(k=k, tau=tau), scorer, algorithm="t-hop")
            assert res.ids == brute_force_durable_topk(scores, k, 0, 499, tau)

    def test_engine_session_matches_plain_queries(self, dataset):
        from repro.core.reference import brute_force_durable_topk

        engine = DurableTopKEngine(dataset)
        scorer = LinearPreference([0.4, 0.6])
        scores = scorer.scores(dataset.values)
        session = engine.session(scorer)
        assert session.index is engine._bound_index(scorer)  # pinned, not rebuilt
        with pytest.raises(ValueError):  # sessions are scorer-bound
            engine.query(
                DurableTopKQuery(k=1, tau=10),
                LinearPreference([0.9, 0.1]),
                session=session,
            )
        for k, tau in ((1, 30), (3, 60), (5, 120)):
            query = DurableTopKQuery(k=k, tau=tau)
            via_session = session.query(query, algorithm="t-hop")
            plain = engine.query(query, scorer, algorithm="t-hop")
            assert via_session.ids == plain.ids
            assert via_session.ids == brute_force_durable_topk(scores, k, 0, 499, tau)
