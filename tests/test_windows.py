"""Unit tests for tumbling/sliding window comparators (Example I.1)."""

import numpy as np
import pytest

from repro.core.reference import brute_force_durable_topk
from repro.core.windows import (
    durable_via_sliding_postprocess,
    sliding_window_topk,
    sliding_window_union,
    tumbling_window_topk,
)


@pytest.fixture(scope="module")
def scores():
    rng = np.random.default_rng(55)
    return rng.random(120)


class TestTumbling:
    def test_windows_partition_timeline(self, scores):
        out = tumbling_window_topk(scores, 1, 25)
        covered = []
        for (lo, hi), _ in out:
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(120))

    def test_each_window_top1_is_max(self, scores):
        for (lo, hi), ids in tumbling_window_topk(scores, 1, 30):
            assert scores[ids[0]] == scores[lo : hi + 1].max()

    def test_offset_shifts_boundaries(self, scores):
        out = tumbling_window_topk(scores, 1, 25, offset=10)
        assert out[0][0] == (0, 9)
        assert out[1][0] == (10, 34)

    def test_offset_changes_results(self):
        # Two high records close together: window placement decides which
        # survives — the sensitivity the paper criticises.
        scores = np.zeros(20)
        scores[9], scores[10] = 5.0, 6.0
        a = {ids[0] for _, ids in tumbling_window_topk(scores, 1, 10, offset=0)}
        b = {ids[0] for _, ids in tumbling_window_topk(scores, 1, 10, offset=5)}
        assert a != b

    def test_invalid_offset(self, scores):
        with pytest.raises(ValueError):
            tumbling_window_topk(scores, 1, 10, offset=10)


class TestSliding:
    def test_union_superset_of_durable(self, scores):
        # Records with a full (unclipped) look-back window are durable only
        # if some sliding-window position reports them, hence the union is
        # a superset on [tau, n-1]. (Earlier records have clipped windows
        # no sliding position matches.)
        tau = 20
        union = set(sliding_window_union(scores, 2, tau))
        durable = set(brute_force_durable_topk(scores, 2, tau, 119, tau))
        assert durable <= union

    def test_union_typically_larger(self, scores):
        tau = 20
        union = sliding_window_union(scores, 2, tau)
        durable = brute_force_durable_topk(scores, 2, tau, 119, tau)
        assert len(union) > len(durable)

    def test_window_count(self, scores):
        out = sliding_window_topk(scores, 1, 20)
        assert len(out) == 100


class TestSlidingPostprocess:
    def test_matches_durable_definition(self, scores):
        for k, tau in ((1, 10), (3, 30)):
            assert durable_via_sliding_postprocess(scores, k, 0, 119, tau) == (
                brute_force_durable_topk(scores, k, 0, 119, tau)
            )
