"""Tests for the CSV loader."""

import pytest

from repro.data.loader import load_csv


@pytest.fixture()
def csv_file(tmp_path):
    path = tmp_path / "games.csv"
    path.write_text(
        "date,player,points,assists,team\n"
        "2003-01-02,Bob,30,5,East\n"
        "2001-05-10,Ann,25,7,West\n"
        "2002-03-03,Cat,40,2,East\n"
    )
    return path


class TestLoadCSV:
    def test_sorted_by_timestamp(self, csv_file):
        data = load_csv(csv_file, timestamp_column="date", label_column="player")
        assert data.timestamps == ["2001-05-10", "2002-03-03", "2003-01-02"]
        assert data.labels == ["Ann", "Cat", "Bob"]

    def test_numeric_columns_auto_detected(self, csv_file):
        data = load_csv(csv_file, timestamp_column="date", label_column="player")
        assert data.attribute_names == ["points", "assists"]  # team is text
        assert data.values[0].tolist() == [25.0, 7.0]

    def test_explicit_attribute_selection(self, csv_file):
        data = load_csv(
            csv_file, timestamp_column="date", attribute_columns=["assists"]
        )
        assert data.d == 1
        assert data.values[:, 0].tolist() == [7.0, 2.0, 5.0]

    def test_numeric_timestamps_parsed(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("ts,x\n3,1.0\n1,2.0\n2,3.0\n")
        data = load_csv(path, timestamp_column="ts")
        assert data.timestamps == [1.0, 2.0, 3.0]

    def test_stable_tie_order(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("ts,x\n1,10\n1,20\n1,30\n")
        data = load_csv(path, timestamp_column="ts")
        assert data.values[:, 0].tolist() == [10.0, 20.0, 30.0]

    def test_missing_columns_rejected(self, csv_file):
        with pytest.raises(KeyError):
            load_csv(csv_file, timestamp_column="when")
        with pytest.raises(KeyError):
            load_csv(csv_file, timestamp_column="date", label_column="nobody")
        with pytest.raises(KeyError):
            load_csv(csv_file, timestamp_column="date", attribute_columns=["goals"])

    def test_non_numeric_attribute_rejected(self, csv_file):
        with pytest.raises(ValueError, match="not numeric"):
            load_csv(csv_file, timestamp_column="date", attribute_columns=["team"])

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("ts,x\n")
        with pytest.raises(ValueError, match="no data rows"):
            load_csv(path, timestamp_column="ts")

    def test_queryable_end_to_end(self, csv_file):
        from repro import LinearPreference, durable_topk

        data = load_csv(csv_file, timestamp_column="date", label_column="player")
        res = durable_topk(data, LinearPreference([1.0, 0.0]), k=1, tau=2)
        labels = [data.record(t).label for t in res.ids]
        assert labels == ["Ann", "Cat"]  # Bob's 30 is under Cat's 40
