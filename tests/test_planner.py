"""Tests for the cost-based planner."""

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine
from repro.core.planner import CostModel, PlannerDecision, choose_algorithm
from repro.core.query import DurableTopKQuery
from repro.core.record import Dataset
from repro.scoring import CosinePreference, LinearPreference


class TestChooseAlgorithm:
    def test_validation(self):
        with pytest.raises(ValueError):
            choose_algorithm(0, 10, 100, 2, True)
        with pytest.raises(ValueError):
            choose_algorithm(1, 0, 100, 2, True)

    def test_selective_low_dim_prefers_band(self):
        decision = choose_algorithm(5, 5_000, 25_000, 2, True, True, True)
        assert decision.algorithm == "s-band"
        assert decision.expected_candidates is not None

    def test_high_dim_avoids_band(self):
        decision = choose_algorithm(5, 5_000, 25_000, 30, True, True, True)
        assert decision.algorithm in ("t-hop", "s-hop")

    def test_band_unavailable_without_index(self):
        decision = choose_algorithm(5, 5_000, 25_000, 2, True, True, has_skyband_index=False)
        assert "s-band" not in decision.estimates

    def test_band_unavailable_without_strict_monotonicity(self):
        decision = choose_algorithm(5, 5_000, 25_000, 2, True, False, True)
        assert "s-band" not in decision.estimates

    def test_unselective_query_prefers_linear_scan(self):
        # tau tiny -> nearly everything is an answer -> hop query counts
        # approach |I| and per-record algorithms win.
        decision = choose_algorithm(10, 2, 50_000, 2, True, True, True)
        assert decision.algorithm in ("s-base", "t-base")

    def test_expected_answer_matches_lemma(self):
        decision = choose_algorithm(4, 99, 1_000, 2, True)
        assert decision.expected_answer == pytest.approx(4 * 1_000 / 100)

    def test_explain_mentions_choice(self):
        decision = choose_algorithm(5, 1_000, 10_000, 2, True, True, True)
        text = decision.explain()
        assert decision.algorithm in text
        assert "E|S|" in text

    def test_custom_cost_model_changes_choice(self):
        # Free top-k queries make T-Hop unbeatable.
        free_queries = CostModel(topk_query=0.0)
        decision = choose_algorithm(
            5, 1_000, 10_000, 2, True, True, True, cost_model=free_queries
        )
        assert decision.algorithm == "t-hop"


class TestEngineAuto:
    @pytest.fixture(scope="class")
    def dataset(self):
        rng = np.random.default_rng(21)
        return Dataset(rng.random((2_000, 2)), name="auto-test")

    def test_auto_produces_correct_answer(self, dataset):
        from repro.core.reference import brute_force_durable_topk

        engine = DurableTopKEngine(dataset, skyband_k_max=8)
        scorer = LinearPreference([0.5, 0.5])
        res = engine.query(DurableTopKQuery(k=3, tau=200), scorer, algorithm="auto")
        expected = brute_force_durable_topk(scorer.scores(dataset.values), 3, 0, 1999, 200)
        assert res.ids == expected
        assert res.algorithm in ("t-base", "t-hop", "s-base", "s-band", "s-hop")

    def test_plan_exposed(self, dataset):
        engine = DurableTopKEngine(dataset, skyband_k_max=8)
        decision = engine.plan(DurableTopKQuery(k=3, tau=200), LinearPreference([0.5, 0.5]))
        assert isinstance(decision, PlannerDecision)

    def test_auto_never_band_for_cosine(self, dataset):
        engine = DurableTopKEngine(dataset, skyband_k_max=8)
        decision = engine.plan(DurableTopKQuery(k=3, tau=200), CosinePreference([1.0, 1.0]))
        assert "s-band" not in decision.estimates
