"""Smoke tests: every shipped example must run cleanly end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, f"{script.stem} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script.stem} produced no output"
