"""Tests for the live ingestion pipeline (WAL, segments, LiveDataset,
LiveMiniDB, service backend, versioned caches)."""

import threading

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine
from repro.core.query import Direction, DurableTopKQuery
from repro.core.record import Dataset
from repro.core.reference import brute_force_durable_topk, brute_force_topk
from repro.index.range_topk import ScoreArrayTopKIndex
from repro.ingest import LiveDataset, SegmentedTopKIndex, TailBuffer, WriteAheadLog
from repro.minidb import LiveMiniDB
from repro.minidb.procedures import t_base_procedure, t_hop_procedure
from repro.scoring import LinearPreference
from repro.service import DurableTopKService, LiveBackend, QueryRequest


@pytest.fixture()
def scorer():
    return LinearPreference([0.6, 0.4])


def make_live(rows, seal_every=None, seal_rows=10_000):
    """A LiveDataset fed row by row, sealed every ``seal_every`` rows."""
    live = LiveDataset(d=rows.shape[1], seal_rows=seal_rows)
    for i, row in enumerate(rows):
        live.append(row)
        if seal_every and (i + 1) % seal_every == 0:
            live.seal()
    return live


class TestWriteAheadLog:
    def test_roundtrip(self, tmp_path):
        rows = np.arange(12, dtype=float).reshape(4, 3)
        with WriteAheadLog(tmp_path / "wal.log", 3) as wal:
            for row in rows:
                wal.append(row)
            wal.flush(sync=True)
        reopened = WriteAheadLog(tmp_path / "wal.log", 3)
        assert np.array_equal(reopened.recovered.rows, rows)
        assert reopened.recovered.torn_bytes == 0
        reopened.close()

    def test_torn_tail_is_dropped_and_log_stays_appendable(self, tmp_path):
        path = tmp_path / "wal.log"
        rows = np.random.default_rng(0).random((5, 2))
        with WriteAheadLog(path, 2) as wal:
            for row in rows:
                wal.append(row)
            wal.flush()
        with open(path, "ab") as f:
            f.write(b"\x07" * 11)  # a torn partial entry
        reopened = WriteAheadLog(path, 2)
        assert np.array_equal(reopened.recovered.rows, rows)
        assert reopened.recovered.torn_bytes == 11
        reopened.append([1.0, 2.0])
        reopened.flush()
        reopened.close()
        final = WriteAheadLog(path, 2)
        assert len(final.recovered.rows) == 6
        final.close()

    def test_reset_clears_entries(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", 1)
        wal.append([1.0])
        wal.flush()
        wal.reset()
        wal.close()
        assert len(WriteAheadLog(tmp_path / "wal.log", 1).recovered.rows) == 0

    def test_dimension_mismatch_rejected(self, tmp_path):
        WriteAheadLog(tmp_path / "wal.log", 2).close()
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal.log", 3)


class TestSegmentedTopKIndex:
    @pytest.mark.parametrize("cuts", [[], [100], [37, 110, 200], [1, 2, 3, 250]])
    def test_matches_monolithic_index(self, cuts):
        rng = np.random.default_rng(42)
        scores = rng.random(300)
        bounds = [0, *cuts, 300]
        parts = [
            (lo, ScoreArrayTopKIndex(scores[lo:hi]))
            for lo, hi in zip(bounds, bounds[1:])
            if hi > lo
        ]
        stitched = SegmentedTopKIndex(parts)
        whole = ScoreArrayTopKIndex(scores)
        assert stitched.n == whole.n
        for t in [0, 50, 150, 299]:
            assert stitched.score(t) == whole.score(t)
        for k, lo, hi in [(1, 0, 299), (5, 90, 210), (3, 36, 38), (300, 0, 299), (4, -5, 400)]:
            assert stitched.topk(k, lo, hi) == whole.topk(k, lo, hi)
            assert stitched.top1(lo, hi) == whole.top1(lo, hi)

    def test_ties_break_toward_later_arrival_across_parts(self):
        scores = np.array([1.0, 5.0, 5.0, 1.0, 5.0, 0.0])
        parts = [
            (0, ScoreArrayTopKIndex(scores[:2])),
            (2, ScoreArrayTopKIndex(scores[2:4])),
            (4, ScoreArrayTopKIndex(scores[4:])),
        ]
        stitched = SegmentedTopKIndex(parts)
        assert stitched.topk(3, 0, 5) == [4, 2, 1]

    def test_rejects_gaps(self):
        with pytest.raises(ValueError):
            SegmentedTopKIndex([(0, ScoreArrayTopKIndex(np.ones(3))),
                                (5, ScoreArrayTopKIndex(np.ones(3)))])


class TestTailBuffer:
    def test_growth_preserves_published_rows(self):
        tail = TailBuffer(2, capacity=2)
        for i in range(20):
            tail.append([float(i), float(-i)])
        buf, count = tail.published
        assert count == 20
        assert np.array_equal(buf[:count, 0], np.arange(20, dtype=float))


class TestLiveDatasetEquivalence:
    @pytest.mark.parametrize("algorithm", ["t-base", "t-hop"])
    def test_exact_vs_offline_rebuild(self, scorer, algorithm):
        rng = np.random.default_rng(7)
        live = make_live(rng.random((500, 2)), seal_every=120)
        engine = DurableTopKEngine(live.freeze())
        for k, tau, interval in [(2, 60, None), (1, 30, (100, 450)), (4, 500, (0, 499))]:
            query = DurableTopKQuery(k=k, tau=tau, interval=interval)
            got = live.query(query, scorer, algorithm=algorithm, with_durations=True)
            want = engine.query(query, scorer, algorithm=algorithm, with_durations=True)
            assert got.ids == want.ids
            assert got.durations == want.durations
            assert got.stats.topk_queries == want.stats.topk_queries

    def test_tail_straddling_window(self, scorer):
        rng = np.random.default_rng(8)
        live = make_live(rng.random((240, 2)), seal_every=100)
        assert live.segment_count == 2 and live.n == 240  # 40-row tail
        scores = scorer.scores(live.freeze().values)
        # Interval and windows straddle the sealed/tail boundary at 200.
        query = DurableTopKQuery(k=2, tau=70, interval=(150, 239))
        got = live.query(query, scorer)
        assert got.ids == brute_force_durable_topk(scores, 2, 150, 239, 70)

    def test_future_direction_matches_engine(self, scorer):
        rng = np.random.default_rng(9)
        live = make_live(rng.random((300, 2)), seal_every=90)
        engine = DurableTopKEngine(live.freeze())
        query = DurableTopKQuery(k=2, tau=45, interval=(80, 260), direction=Direction.FUTURE)
        got = live.query(query, scorer, with_durations=True)
        want = engine.query(query, scorer, algorithm="t-hop", with_durations=True)
        assert got.ids == want.ids
        assert got.durations == want.durations

    def test_compaction_preserves_answers(self, scorer):
        rng = np.random.default_rng(10)
        live = make_live(rng.random((400, 2)), seal_every=50)
        query = DurableTopKQuery(k=3, tau=80)
        before = live.query(query, scorer).ids
        assert live.compact(force=True) > 0
        assert live.segment_count == 1
        assert live.query(query, scorer).ids == before

    def test_snapshot_is_stable_under_later_appends(self, scorer):
        rng = np.random.default_rng(11)
        live = make_live(rng.random((200, 2)), seal_every=80)
        snap = live.snapshot()
        frozen = live.freeze()
        live.extend(rng.random((100, 2)))
        live.seal()
        query = DurableTopKQuery(k=2, tau=40)
        pinned = live.query(query, scorer, snapshot=snap)
        assert pinned.extra["snapshot_n"] == 200
        want = DurableTopKEngine(frozen).query(query, scorer, algorithm="t-hop")
        assert pinned.ids == want.ids

    def test_sort_based_algorithms_are_refused(self, scorer):
        live = make_live(np.random.default_rng(0).random((50, 2)))
        with pytest.raises(ValueError, match="freeze"):
            live.query(DurableTopKQuery(k=1, tau=5), scorer, algorithm="s-hop")

    def test_append_validation(self):
        live = LiveDataset(d=2)
        with pytest.raises(ValueError):
            live.append([1.0])
        with pytest.raises(ValueError):
            live.append([np.nan, 1.0])

    def test_background_maintenance_seals_and_stays_exact(self, scorer):
        rng = np.random.default_rng(12)
        with LiveDataset(d=2, seal_rows=64, compact_fanout=3) as live:
            live.start_maintenance(poll_seconds=0.005)
            for chunk in rng.random((40, 25, 2)):
                live.extend(chunk)
            deadline = threading.Event()
            for _ in range(200):  # wait for the sealer to catch up
                if live.seals > 0 and live._state.tail.count < 64:
                    break
                deadline.wait(0.01)
            assert live.seals > 0
            scores = scorer.scores(live.freeze().values)
            got = live.query(DurableTopKQuery(k=2, tau=100), scorer)
            n = got.extra["snapshot_n"]
            assert got.ids == brute_force_durable_topk(scores[:n], 2, 0, n - 1, 100)


class TestVersionedCaches:
    def test_freeze_stamps_version_and_epochs_differ(self, scorer):
        live = make_live(np.random.default_rng(1).random((60, 2)), seal_every=30)
        a = live.freeze()
        live.append([0.5, 0.5])
        b = live.freeze()
        assert a.version != b.version
        assert b.n == a.n + 1

    def test_derived_views_inherit_version(self):
        data = Dataset(np.random.default_rng(2).random((20, 3)), version=5)
        assert data.prefix(10).version == 5
        assert data.select_attributes([0, 1]).version == 5
        assert data.reversed().version == 5

    def test_engine_index_cache_keys_on_version(self, scorer):
        """An engine whose dataset advances an epoch must not serve the
        stale preference-bound index (the growing-dataset hazard)."""
        rng = np.random.default_rng(3)
        values = rng.random((80, 2))
        data = Dataset(values[:60], version=1)
        engine = DurableTopKEngine(data)
        session = engine.session(scorer)
        old = session.query(DurableTopKQuery(k=1, tau=10))
        # The dataset object is swapped for a grown epoch (what a naive
        # live wrapper would do); the session must rebind, not reuse.
        engine.dataset = Dataset(values, version=2)
        new = session.query(DurableTopKQuery(k=1, tau=10))
        assert session.dataset_version == 2
        scores = scorer.scores(values)
        assert new.ids == brute_force_durable_topk(scores, 1, 0, 79, 10)
        assert old.ids == brute_force_durable_topk(scores[:60], 1, 0, 59, 10)


class TestLiveServiceBackend:
    def test_concurrent_reads_and_writes_are_exact(self, scorer):
        rng = np.random.default_rng(13)
        live = LiveDataset(d=2, seal_rows=500)
        live.extend(rng.random((2_000, 2)))
        live.seal()
        live.start_maintenance(poll_seconds=0.001)

        stop = threading.Event()

        def writer():
            wrng = np.random.default_rng(99)
            while not stop.is_set():
                live.extend(wrng.random((50, 2)))

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            with DurableTopKService(LiveBackend(live), workers=4) as service:
                requests = [
                    QueryRequest(
                        scorer=scorer, k=2, tau=100, interval=(0, 1_500),
                        algorithm="t-hop",
                    )
                    for _ in range(40)
                ]
                responses = [service.submit(r) for r in requests]
                results = [r.result() for r in responses]
        finally:
            stop.set()
            thread.join()
        frozen = live.freeze()
        scores = scorer.scores(frozen.values)
        for response in results:
            assert response.ok
            n_snap = response.result.extra["snapshot_n"]
            expected = brute_force_durable_topk(scores[:n_snap], 2, 0, 1_500, 100)
            assert response.result.ids == expected
            assert response.result.extra["staleness_rows"] >= 0


class TestLiveMiniDB:
    def test_topk_matches_brute_force_across_segments_and_tail(self, tmp_path):
        rng = np.random.default_rng(21)
        rows = rng.random((900, 2))
        store = LiveMiniDB(tmp_path / "db", d=2, seal_rows=250, buffer_pages=16)
        for row in rows:
            store.append(row)
        u = np.array([0.3, 0.7])
        scores = rows @ u
        for k, lo, hi in [(3, 0, 899), (2, 700, 820), (5, 740, 760), (1, 0, 10)]:
            assert store.topk(u, k, lo, hi) == brute_force_topk(scores, k, lo, hi)
        store.close()

    @pytest.mark.parametrize("procedure", [t_hop_procedure, t_base_procedure])
    def test_procedures_run_unchanged_over_live_store(self, tmp_path, procedure):
        rng = np.random.default_rng(22)
        rows = rng.random((600, 2))
        store = LiveMiniDB(tmp_path / "db", d=2, seal_rows=200, buffer_pages=16)
        for row in rows:
            store.append(row)
        u = np.array([0.5, 0.5])
        report = procedure(store, u, 2, 75)
        assert report.ids == brute_force_durable_topk(rows @ u, 2, 0, 599, 75)
        store.close()

    def test_page_accounting_exact_across_reopen(self, tmp_path):
        """Sealed segments come back with identical page placement, so a
        cold query costs exactly the same pages before and after reopen."""
        rng = np.random.default_rng(23)
        store = LiveMiniDB(tmp_path / "db", d=2, seal_rows=150, buffer_pages=16)
        for row in rng.random((700, 2)):
            store.append(row)
        store.seal()
        u = np.array([0.8, 0.2])
        before = t_hop_procedure(store, u, 2, 90, cold=True)
        store.close()
        reopened = LiveMiniDB(tmp_path / "db")
        after = t_hop_procedure(reopened, u, 2, 90, cold=True)
        assert after.ids == before.ids
        assert after.logical_reads == before.logical_reads
        assert after.physical_reads == before.physical_reads
        reopened.close()

    def test_appends_visible_before_seal_and_durable_after_flush(self, tmp_path):
        store = LiveMiniDB(tmp_path / "db", d=1, seal_rows=None)
        store.append([3.0])
        store.append([1.0], flush=True)
        assert store.n == 2 and store.sealed_rows == 0
        assert store.topk(np.array([1.0]), 1, 0, 1) == [0]
        store.close()
        reopened = LiveMiniDB(tmp_path / "db")
        assert reopened.n == 2
        reopened.close()
