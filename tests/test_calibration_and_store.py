"""Tests for cost-model calibration and result persistence."""

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine
from repro.core.planner import CostModel
from repro.core.query import Direction, DurableTopKQuery
from repro.core.record import Dataset
from repro.experiments.calibration import calibrate_cost_model
from repro.experiments.resultstore import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.scoring import LinearPreference


class TestCalibration:
    def test_returns_cost_model_with_sane_ratios(self):
        rng = np.random.default_rng(1)
        dataset = Dataset(rng.random((4_000, 2)), name="cal")
        model = calibrate_cost_model(dataset, repeats=30)
        assert isinstance(model, CostModel)
        assert model.per_record == 1.0
        # A top-k query must cost more than a single record step.
        assert model.topk_query > 1.0
        assert model.sort_per_record > 0.0

    def test_calibrated_model_usable_by_planner(self):
        from repro.core.planner import choose_algorithm

        rng = np.random.default_rng(2)
        dataset = Dataset(rng.random((4_000, 2)), name="cal2")
        model = calibrate_cost_model(dataset, repeats=20)
        decision = choose_algorithm(
            5, 400, 2_000, 2, True, True, True, cost_model=model
        )
        assert decision.algorithm in ("t-base", "t-hop", "s-base", "s-band", "s-hop")

    def test_default_dataset(self):
        model = calibrate_cost_model(repeats=10)
        assert model.topk_query > 0


class TestResultStore:
    @pytest.fixture()
    def result(self):
        rng = np.random.default_rng(3)
        dataset = Dataset(rng.random((400, 2)), name="store")
        engine = DurableTopKEngine(dataset)
        return engine.query(
            DurableTopKQuery(k=2, tau=40, interval=(50, 350)),
            LinearPreference([0.5, 0.5]),
            algorithm="t-hop",
            with_durations=True,
        )

    def test_roundtrip_dict(self, result):
        payload = result_to_dict(result)
        restored = result_from_dict(payload)
        assert restored.ids == result.ids
        assert restored.algorithm == result.algorithm
        assert restored.query == result.query
        assert restored.durations == result.durations
        assert restored.stats.topk_queries == result.stats.topk_queries

    def test_roundtrip_file(self, result, tmp_path):
        path = save_result(result, tmp_path / "run.json")
        restored = load_result(path)
        assert restored.ids == result.ids
        assert restored.query.direction is Direction.PAST

    def test_provenance_recorded(self, result):
        import repro

        payload = result_to_dict(result)
        assert payload["library_version"] == repro.__version__

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            result_from_dict({"algorithm": "t-hop"})

    def test_future_direction_roundtrip(self):
        rng = np.random.default_rng(4)
        dataset = Dataset(rng.random((200, 1)), name="future-store")
        engine = DurableTopKEngine(dataset)
        res = engine.query(
            DurableTopKQuery(k=1, tau=20, direction=Direction.FUTURE),
            LinearPreference([1.0]),
            algorithm="t-hop",
        )
        restored = result_from_dict(result_to_dict(res))
        assert restored.query.direction is Direction.FUTURE
        assert restored.ids == res.ids
