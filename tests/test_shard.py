"""Tests for the sharded scatter-gather tier (`repro.shard`).

The headline property is merge equivalence: for every shard count, every
direction, and windows that straddle span boundaries, the coordinator's
merged answer must be byte-identical — ids, max-durations, and (at one
shard) the full statistics — to an unsharded single-process engine.
The rest pins the operational contract: pickle-free shared-memory
handoff, worker crash recovery, and remote errors failing requests
rather than workers.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine, durable_topk
from repro.core.query import Direction, QueryStats
from repro.data import independent_uniform
from repro.scoring import LinearPreference, random_preference
from repro.service import (
    DurableTopKService,
    QueryRequest,
    ShardedBackend,
    WorkloadGenerator,
    WorkloadSpec,
    run_closed_loop,
)
from repro.shard import (
    ShardCoordinator,
    ShardedDataset,
    ShardRemoteError,
    merge_shard_answers,
    pack_stats,
    partition_spans,
    unpack_stats,
)

#: The satellite requirement: equivalence across these shard counts.
SHARD_COUNTS = (1, 2, 4, 7)


# ----------------------------------------------------------------------
# Partitioning and merge plumbing
# ----------------------------------------------------------------------
class TestPartition:
    def test_spans_cover_domain_contiguously(self):
        for n, shards in ((10, 3), (100, 7), (5, 5), (1, 1), (997, 4)):
            spans = partition_spans(n, shards)
            assert spans[0].lo == 0
            assert spans[-1].hi == n - 1
            for left, right in zip(spans, spans[1:]):
                assert right.lo == left.hi + 1
            sizes = [len(span) for span in spans]
            assert max(sizes) - min(sizes) <= 1
            assert sum(sizes) == n

    def test_shard_count_capped_at_n(self):
        spans = partition_spans(3, 10)
        assert len(spans) == 3
        assert [len(span) for span in spans] == [1, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_spans(0, 2)
        with pytest.raises(ValueError):
            partition_spans(10, 0)

    def test_span_intersect(self):
        span = partition_spans(100, 4)[1]  # [25, 49]
        assert span.intersect(0, 99) == (25, 49)
        assert span.intersect(30, 40) == (30, 40)
        assert span.intersect(49, 60) == (49, 49)
        assert span.intersect(50, 60) is None

    def test_merge_concatenates_in_span_order(self):
        assert merge_shard_answers([[1, 4], [], [7, 9]]) == [1, 4, 7, 9]
        assert merge_shard_answers([[], []]) == []


class TestStatsWire:
    def test_pack_unpack_round_trip(self):
        stats = QueryStats(durability_topk_queries=7, hops=3, pages_read=11)
        assert unpack_stats(pack_stats(stats)).as_dict() == stats.as_dict()

    def test_unpack_ignores_unknown_keys(self):
        packed = pack_stats(QueryStats(hops=2))
        packed["from_the_future"] = 99
        assert unpack_stats(packed).hops == 2


# ----------------------------------------------------------------------
# Shared-memory handoff
# ----------------------------------------------------------------------
class TestSharedDataset:
    def test_attach_is_zero_copy_and_equal(self, small_ind):
        with ShardedDataset(small_ind, 3) as sharded:
            handle = sharded.handle()
            attached, shm = handle.attach()
            try:
                assert attached.n == small_ind.n and attached.d == small_ind.d
                assert attached.version == small_ind.version
                assert np.array_equal(attached.values, small_ind.values)
                # The worker-side dataset is a view into the mapped block,
                # not a copy of it.
                assert attached.values.base is not None
            finally:
                shm.close()

    def test_handle_is_tiny_compared_to_the_data(self, small_ind):
        with ShardedDataset(small_ind, 2) as sharded:
            handle_bytes = len(pickle.dumps(sharded.handle()))
            assert handle_bytes < 512
            assert small_ind.values.nbytes > 4 * handle_bytes

    def test_close_is_idempotent_and_unlinks(self, small_ind):
        sharded = ShardedDataset(small_ind, 2)
        handle = sharded.handle()
        sharded.close()
        sharded.close()
        assert sharded.closed
        with pytest.raises(FileNotFoundError):
            handle.attach()

    def test_spans_for_clips_to_intersections(self, small_ind):
        with ShardedDataset(small_ind, 4) as sharded:
            first = sharded.spans[0]
            assert sharded.spans_for(0, small_ind.n - 1) == sharded.spans
            assert sharded.spans_for(first.lo, first.hi) == [first]
            boundary = sharded.spans_for(first.hi, first.hi + 1)
            assert boundary == sharded.spans[:2]


# ----------------------------------------------------------------------
# Merge equivalence (the satellite property test)
# ----------------------------------------------------------------------
class TestMergeEquivalence:
    def _random_requests(self, rng, n, d, count):
        scorers = [LinearPreference(random_preference(rng, d)) for _ in range(4)]
        algorithms = ("t-hop", "t-base", "s-hop")
        requests = []
        for _ in range(count):
            lo = int(rng.integers(0, n - 1))
            hi = int(rng.integers(lo, n))
            hi = min(hi, n - 1)
            requests.append(
                QueryRequest(
                    scorer=scorers[int(rng.integers(len(scorers)))],
                    k=int(rng.integers(1, 8)),
                    # tau regularly exceeds a 7-shard span (n/7), so
                    # durability windows straddle ownership boundaries.
                    tau=int(rng.integers(1, (2 * n) // 3)),
                    interval=(lo, hi),
                    direction=Direction.FUTURE if rng.random() < 0.3 else Direction.PAST,
                    algorithm=algorithms[int(rng.integers(len(algorithms)))],
                )
            )
        return requests

    def test_randomized_equivalence_across_shard_counts(self):
        data = independent_uniform(420, 3, seed=8)
        engine = DurableTopKEngine(data)
        rng = np.random.default_rng(31)
        requests = self._random_requests(rng, data.n, data.d, 14)
        expected = [
            engine.query(
                request.as_query(),
                request.scorer,
                algorithm=request.algorithm,
                with_durations=True,
            )
            for request in requests
        ]
        for shards in SHARD_COUNTS:
            spans = partition_spans(data.n, shards)
            with ShardCoordinator(data, n_shards=shards) as coordinator:
                for request, reference in zip(requests, expected):
                    merged = coordinator.query(request, with_durations=True)
                    assert merged.ids == reference.ids, (shards, request)
                    assert merged.durations == reference.durations, (shards, request)
                    lo, hi = request.as_query().resolve_interval(data.n)
                    offered = sum(1 for span in spans if span.intersect(lo, hi) is not None)
                    assert merged.extra["shard_fanout"] == offered
                    assert merged.stats.topk_queries == sum(
                        merged.extra["shard_topk_queries"].values()
                    )
                    if shards == 1:
                        # With one shard the scatter-gather *is* a serial
                        # run: every counter must match, not just ids.
                        assert merged.stats.as_dict() == reference.stats.as_dict()

    def test_tie_heavy_answers_stay_identical(self, tie_heavy_dataset):
        data = tie_heavy_dataset
        rng = np.random.default_rng(5)
        requests = self._random_requests(rng, data.n, data.d, 8)
        with ShardCoordinator(data, n_shards=4) as coordinator:
            for request in requests:
                merged = coordinator.query(request)
                reference = durable_topk(
                    data,
                    request.scorer,
                    request.k,
                    request.tau,
                    interval=request.interval,
                    direction=request.direction,
                    algorithm=request.algorithm,
                )
                assert merged.ids == reference.ids, request

    def test_boundary_straddling_window(self, small_ind):
        """A two-record interval across a span boundary, tau over the span."""
        scorer = LinearPreference([0.6, 0.4])
        with ShardCoordinator(small_ind, n_shards=4) as coordinator:
            boundary = coordinator.spans[1].hi
            for direction in (Direction.PAST, Direction.FUTURE):
                request = QueryRequest(
                    scorer=scorer,
                    k=3,
                    tau=small_ind.n // 2,
                    interval=(boundary, boundary + 1),
                    direction=direction,
                    algorithm="t-hop",
                )
                merged = coordinator.query(request)
                reference = durable_topk(
                    small_ind,
                    scorer,
                    request.k,
                    request.tau,
                    interval=request.interval,
                    direction=direction,
                    algorithm="t-hop",
                )
                assert merged.ids == reference.ids
                assert merged.extra["shard_fanout"] == 2


# ----------------------------------------------------------------------
# Worker lifecycle: crashes, restarts, remote errors
# ----------------------------------------------------------------------
class TestWorkerLifecycle:
    def _full_domain_request(self):
        return QueryRequest(scorer=LinearPreference([0.5, 0.5]), k=3, tau=120, algorithm="t-hop")

    def test_restart_on_crash_mid_service(self, small_ind):
        request = self._full_domain_request()
        reference = durable_topk(small_ind, request.scorer, request.k, request.tau)
        with ShardCoordinator(small_ind, n_shards=3) as coordinator:
            assert coordinator.query(request).ids == reference.ids
            coordinator._handles[1].process.kill()
            time.sleep(0.05)
            merged = coordinator.query(request)
            assert merged.ids == reference.ids
            assert coordinator.restarts >= 1
            assert coordinator.stats()["restarts"] >= 1

    def test_health_check_revives_dead_worker(self, small_ind):
        with ShardCoordinator(small_ind, n_shards=2) as coordinator:
            before = {info["shard"]: info["pid"] for info in coordinator.health_check()}
            coordinator._handles[0].process.kill()
            time.sleep(0.05)
            after = {info["shard"]: info["pid"] for info in coordinator.health_check()}
            assert set(after) == set(before) == {0, 1}
            assert after[0] != before[0]
            assert after[1] == before[1]
            assert coordinator.restarts == 1

    def test_worker_stats_count_served_subqueries(self, small_ind):
        request = self._full_domain_request()
        with ShardCoordinator(small_ind, n_shards=2) as coordinator:
            for _ in range(3):
                coordinator.query(request)
            stats = coordinator.worker_stats()
            assert [entry["served"] for entry in stats] == [3, 3]
            assert all(entry["pool"]["hits"] >= 2 for entry in stats)

    def test_remote_error_fails_request_not_worker(self, small_ind):
        bad = QueryRequest(scorer=LinearPreference([1.0]), k=3, tau=50)
        with ShardCoordinator(small_ind, n_shards=2) as coordinator:
            with pytest.raises(ShardRemoteError, match="weights but data"):
                coordinator.query(bad)
            good = coordinator.query(self._full_domain_request())
            assert good.ids
            assert coordinator.restarts == 0

    def test_unpicklable_payload_fails_cleanly(self, small_ind):
        scorer = LinearPreference([0.5, 0.5])

        def hook(values):
            return values

        scorer.hook = hook  # nested functions do not pickle
        request = QueryRequest(scorer=scorer, k=3, tau=50, algorithm="t-hop")
        with ShardCoordinator(small_ind, n_shards=2) as coordinator:
            with pytest.raises(Exception, match="pickle"):
                coordinator.query(request)
            good = coordinator.query(self._full_domain_request())
            assert good.ids
            assert coordinator.restarts == 0

    def test_close_is_idempotent(self, small_ind):
        coordinator = ShardCoordinator(small_ind, n_shards=2)
        coordinator.query(self._full_domain_request())
        coordinator.close()
        coordinator.close()


# ----------------------------------------------------------------------
# Through the service: the fourth backend
# ----------------------------------------------------------------------
class TestShardedBackendService:
    def test_concurrent_service_matches_serial(self, small_ind):
        spec = WorkloadSpec(
            n_preferences=8,
            d=small_ind.d,
            k_choices=(3, 5, 10),
            tau_fractions=(0.05, 0.3),
            interval_fractions=(0.3, 0.8),
            algorithms=("t-hop", "t-base", "s-hop"),
            future_fraction=0.25,
            seed=23,
        )
        stream = WorkloadGenerator(spec, small_ind.n).requests(60)
        coordinator = ShardCoordinator(small_ind, n_shards=3)
        with DurableTopKService(ShardedBackend(coordinator), workers=6, pool_capacity=8) as service:
            responses = run_closed_loop(service.query, stream, clients=6)
            snapshot = service.metrics.snapshot()
        for request, response in zip(stream, responses):
            assert response.ok
            expected = durable_topk(
                small_ind,
                request.scorer,
                request.k,
                request.tau,
                interval=request.interval,
                direction=request.direction,
                algorithm=request.algorithm,
            )
            assert response.result.ids == expected.ids
        # The fanout satellites: the collector picked the scatter sets up
        # from result extras, and the report surfaces them.
        assert snapshot.fanout
        assert sum(snapshot.fanout.values()) == len(stream)
        assert set(snapshot.shard_queries) <= {0, 1, 2}
        assert snapshot.mean_fanout >= 1.0
        assert "shard fanout" in snapshot.report()

    def test_backend_rejects_wrong_dimension_on_session_open(self, small_ind):
        coordinator = ShardCoordinator(small_ind, n_shards=2)
        with DurableTopKService(ShardedBackend(coordinator), workers=2) as service:
            future = service.submit(
                QueryRequest(scorer=LinearPreference([1.0, 2.0, 3.0]), k=3, tau=10)
            )
            with pytest.raises(ValueError, match="weights but data"):
                future.result(timeout=10).unwrap()

    def test_service_close_closes_coordinator_and_owned_memory(self, small_ind):
        coordinator = ShardCoordinator(small_ind, n_shards=2)
        service = DurableTopKService(ShardedBackend(coordinator), workers=2)
        service.close()
        assert coordinator.sharded.closed
        with pytest.raises(Exception):
            coordinator.query(QueryRequest(scorer=LinearPreference([0.5, 0.5]), k=3, tau=10))
