"""Unit tests for scoring functions."""

import numpy as np
import pytest

from repro.scoring import (
    CosinePreference,
    LinearPreference,
    MonotonePreference,
    SingleAttribute,
    random_preference,
)


class TestLinearPreference:
    def test_scores(self):
        scorer = LinearPreference([2.0, 1.0])
        values = np.array([[1.0, 1.0], [0.0, 3.0]])
        assert scorer.scores(values).tolist() == [3.0, 3.0]

    def test_score_point(self):
        scorer = LinearPreference([0.5, 0.5])
        assert scorer.score_point(np.array([2.0, 4.0])) == pytest.approx(3.0)

    def test_monotone_flag(self):
        assert LinearPreference([1.0, 0.0]).is_monotone
        assert not LinearPreference([1.0, -1.0]).is_monotone

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearPreference([])
        with pytest.raises(ValueError):
            LinearPreference([np.nan, 1.0])
        with pytest.raises(ValueError):
            LinearPreference([[1.0], [2.0]])
        scorer = LinearPreference([1.0, 2.0])
        with pytest.raises(ValueError):
            scorer.validate_for(3)
        scorer.validate_for(2)  # no raise


class TestMonotonePreference:
    def test_log_transform(self):
        scorer = MonotonePreference([1.0], transform=np.log1p)
        assert scorer.scores(np.array([[np.e - 1.0]]))[0] == pytest.approx(1.0)

    def test_preserves_domination_order(self):
        scorer = MonotonePreference([0.5, 0.5])
        better = scorer.score_point(np.array([3.0, 3.0]))
        worse = scorer.score_point(np.array([2.0, 3.0]))
        assert better > worse

    def test_custom_transform(self):
        scorer = MonotonePreference([1.0, 1.0], transform=np.sqrt, transform_name="sqrt")
        assert scorer.scores(np.array([[4.0, 9.0]]))[0] == pytest.approx(5.0)
        assert "sqrt" in scorer.name

    def test_validate_for(self):
        with pytest.raises(ValueError):
            MonotonePreference([1.0]).validate_for(2)


class TestCosinePreference:
    def test_unit_alignment(self):
        scorer = CosinePreference([1.0, 0.0])
        values = np.array([[5.0, 0.0], [1.0, 1.0], [0.0, 2.0]])
        out = scorer.scores(values)
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(np.sqrt(0.5))
        assert out[2] == pytest.approx(0.0)

    def test_zero_record_scores_zero(self):
        scorer = CosinePreference([1.0, 1.0])
        assert scorer.scores(np.zeros((1, 2)))[0] == 0.0

    def test_not_monotone(self):
        assert not CosinePreference([1.0, 1.0]).is_monotone

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            CosinePreference([0.0, 0.0])

    def test_magnitude_invariance(self):
        scorer = CosinePreference([0.3, 0.7])
        a = scorer.score_point(np.array([1.0, 2.0]))
        b = scorer.score_point(np.array([10.0, 20.0]))
        assert a == pytest.approx(b)


class TestSingleAttribute:
    def test_picks_dimension(self):
        scorer = SingleAttribute(1)
        assert scorer.scores(np.array([[1.0, 9.0]]))[0] == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SingleAttribute(-1)
        with pytest.raises(ValueError):
            SingleAttribute(3).validate_for(2)


class TestRandomPreference:
    def test_normalised_and_nonnegative(self, rng):
        for kind in ("uniform", "dirichlet"):
            u = random_preference(rng, 5, kind=kind)
            assert u.shape == (5,)
            assert np.all(u >= 0)
            assert u.sum() == pytest.approx(1.0)

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            random_preference(rng, 0)
        with pytest.raises(ValueError):
            random_preference(rng, 3, kind="bogus")
