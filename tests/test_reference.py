"""Unit tests for the brute-force oracles."""

import numpy as np

from repro.core.reference import (
    brute_force_durable_topk,
    brute_force_inclusive_durable_topk,
    brute_force_topk,
    strictly_better_counts,
)


class TestBruteForceTopK:
    def test_simple(self):
        scores = np.array([1.0, 9.0, 5.0, 7.0])
        assert brute_force_topk(scores, 2, 0, 3) == [1, 3]

    def test_tie_later_arrival_wins(self):
        scores = np.array([5.0, 5.0, 1.0])
        assert brute_force_topk(scores, 1, 0, 2) == [1]
        assert brute_force_topk(scores, 2, 0, 2) == [1, 0]

    def test_clamping_and_degenerate(self):
        scores = np.array([1.0, 2.0])
        assert brute_force_topk(scores, 3, -5, 10) == [1, 0]
        assert brute_force_topk(scores, 0, 0, 1) == []
        assert brute_force_topk(scores, 2, 5, 9) == []


class TestStrictlyBetterCounts:
    def test_monotone_decreasing_sequence(self):
        scores = np.array([5.0, 4.0, 3.0, 2.0])
        counts = strictly_better_counts(scores, tau=3, lo=0, hi=3)
        assert counts.tolist() == [0, 1, 2, 3]

    def test_window_clipping_at_zero(self):
        scores = np.array([1.0, 5.0, 3.0])
        counts = strictly_better_counts(scores, tau=10, lo=0, hi=2)
        assert counts.tolist() == [0, 0, 1]

    def test_ties_do_not_count(self):
        scores = np.array([4.0, 4.0, 4.0])
        counts = strictly_better_counts(scores, tau=2, lo=0, hi=2)
        assert counts.tolist() == [0, 0, 0]


class TestBruteForceDurable:
    def test_known_example(self):
        # Scores: a record is durable(k=1, tau=2) iff it beats the 2 before.
        scores = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 2.0])
        assert brute_force_durable_topk(scores, 1, 0, 5, 2) == [0, 2, 4]

    def test_k_covers_everything(self):
        scores = np.array([1.0, 2.0, 3.0])
        assert brute_force_durable_topk(scores, 3, 0, 2, 2) == [0, 1, 2]

    def test_interval_restricts_output(self):
        scores = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 2.0])
        assert brute_force_durable_topk(scores, 1, 3, 5, 2) == [4]

    def test_empty_interval(self):
        scores = np.array([1.0, 2.0])
        assert brute_force_durable_topk(scores, 1, 5, 9, 1) == []

    def test_inclusive_semantics_coincide_for_lookback(self):
        rng = np.random.default_rng(41)
        scores = rng.integers(0, 8, 200).astype(float)
        for k, tau in ((1, 5), (3, 20), (5, 50)):
            assert brute_force_durable_topk(scores, k, 0, 199, tau) == (
                brute_force_inclusive_durable_topk(scores, k, 0, 199, tau)
            )

    def test_monotone_in_k(self):
        rng = np.random.default_rng(42)
        scores = rng.random(150)
        prev: set[int] = set()
        for k in (1, 2, 4, 8):
            cur = set(brute_force_durable_topk(scores, k, 0, 149, 25))
            assert prev <= cur
            prev = cur

    def test_antitone_in_tau(self):
        rng = np.random.default_rng(43)
        scores = rng.random(150)
        prev = None
        for tau in (5, 10, 20, 40, 80):
            cur = set(brute_force_durable_topk(scores, 3, 0, 149, tau))
            if prev is not None:
                assert cur <= prev
            prev = cur
