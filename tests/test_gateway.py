"""Tests for the network gateway (`repro.gateway`).

The headline test is wire equivalence: answers served over a real
localhost socket must be byte-identical — ids, durations, stats — to
the same requests executed on an in-process engine. Around it: framing
under adversarial TCP chunking, the pre-hashed auth fast path
(unknown/revoked keys, registry refresh without restart), per-tenant
token-bucket fairness between competing tenants, queue quotas, and
graceful drain (in-flight requests complete, new connections refused).

Admission tests run against a manually-resolved fake service so that
"a request is in flight" is a test-controlled fact, not a race.
"""

from __future__ import annotations

import struct
import threading
import time
from concurrent.futures import Future
from dataclasses import replace

import pytest

from repro.core.engine import DurableTopKEngine
from repro.gateway import (
    ApiKeyRegistry,
    DurableTopKGateway,
    FrameDecoder,
    FrameTooLarge,
    GatewayClient,
    GatewayError,
    Tenant,
    encode_frame,
)
from repro.obs import MetricsRegistry
from repro.scoring import LinearPreference
from repro.service import (
    DurableTopKService,
    EngineBackend,
    QueryRequest,
    WorkloadGenerator,
    WorkloadSpec,
)
from repro.service.request import QueryRejected, QueryResponse, RejectionReason

KEYS = {
    "key-acme": Tenant("acme", rate=10_000.0, burst=10_000.0, max_inflight=256),
    "key-bob": Tenant("bob", rate=10_000.0, burst=10_000.0, max_inflight=256),
}


class ManualService:
    """A service stub whose futures the test resolves by hand."""

    def __init__(self) -> None:
        self.submitted: list[tuple[QueryRequest, Future]] = []
        self.lock = threading.Lock()

    def submit(self, request: QueryRequest) -> Future:
        future: Future = Future()
        with self.lock:
            self.submitted.append((request, future))
        return future

    def resolve_all(self) -> None:
        with self.lock:
            pending = list(self.submitted)
        for request, future in pending:
            if not future.done():
                future.set_result(
                    QueryResponse(
                        request=request,
                        error=QueryRejected(RejectionReason.TIMEOUT, "manual"),
                    )
                )


def wait_for_submissions(service: ManualService, count: int, timeout: float = 5.0) -> None:
    deadline = time.time() + timeout
    while len(service.submitted) < count and time.time() < deadline:
        time.sleep(0.005)
    assert len(service.submitted) >= count


def make_gateway(service, keys=None, **kwargs) -> DurableTopKGateway:
    gateway = DurableTopKGateway(
        service,
        keys if keys is not None else dict(KEYS),
        registry=MetricsRegistry(),
        **kwargs,
    )
    return gateway.start()


def sample_request(seed: int = 0, algorithm: str = "t-hop") -> QueryRequest:
    return QueryRequest(
        LinearPreference([0.6 + 0.01 * seed, 0.4]), k=5, tau=30, algorithm=algorithm
    )


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_split_and_coalesced_reads_decode_identically(self):
        frames = [{"op": "ping", "id": i, "pad": "x" * (7 * i)} for i in range(5)]
        wire = b"".join(encode_frame(frame) for frame in frames)

        coalesced = FrameDecoder()
        assert coalesced.feed(wire) == frames

        bytewise = FrameDecoder()
        out: list[dict] = []
        for i in range(len(wire)):
            out.extend(bytewise.feed(wire[i : i + 1]))
        assert out == frames

        lumpy = FrameDecoder()
        out = []
        for start in range(0, len(wire), 13):
            out.extend(lumpy.feed(wire[start : start + 13]))
        assert out == frames

    def test_oversized_frame_rejected_from_header_alone(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(FrameTooLarge):
            # Header only: the decoder must refuse before any body bytes.
            decoder.feed(struct.pack(">I", 1 << 20))

    def test_socket_split_reads(self):
        service = ManualService()
        gateway = make_gateway(service)
        try:
            client = GatewayClient("127.0.0.1", gateway.port)
            frame = encode_frame({"op": "auth", "key": "key-acme"})
            # Drip the auth frame through three writes; TCP may deliver
            # them separately and the server must buffer across reads.
            for part in (frame[:3], frame[3:11], frame[11:]):
                client._sock.sendall(part)
                time.sleep(0.01)
            hello = client.recv()
            assert hello == {"op": "hello", "id": None, "tenant": "acme"}
            client.close()
        finally:
            gateway.close()

    def test_oversized_frame_on_socket_errors_and_disconnects(self):
        service = ManualService()
        gateway = make_gateway(service, max_frame_bytes=4096)
        try:
            client = GatewayClient("127.0.0.1", gateway.port, key="key-acme")
            client._sock.sendall(struct.pack(">I", 1 << 24))
            error = client.recv()
            assert error["code"] == "frame_too_large"
            with pytest.raises(GatewayError):
                client.recv()
            client.close()
        finally:
            gateway.close()


# ----------------------------------------------------------------------
# Auth fast path
# ----------------------------------------------------------------------
class TestAuth:
    def test_unknown_key_refused(self):
        gateway = make_gateway(ManualService())
        try:
            with pytest.raises(GatewayError) as info:
                GatewayClient("127.0.0.1", gateway.port, key="who-dis")
            assert info.value.code == "auth_failed"
        finally:
            gateway.close()

    def test_query_before_auth_refused(self):
        gateway = make_gateway(ManualService())
        try:
            client = GatewayClient("127.0.0.1", gateway.port)
            client.submit(sample_request())
            answer = client.result()
            assert not answer.ok
            assert answer.error_code == "auth_required"
            client.close()
        finally:
            gateway.close()

    def test_revocation_applies_to_live_connection(self):
        service = ManualService()
        registry = ApiKeyRegistry(dict(KEYS))
        gateway = make_gateway(service, keys=registry)
        try:
            client = GatewayClient("127.0.0.1", gateway.port, key="key-acme")
            client.submit(sample_request())
            wait_for_submissions(service, 1)
            service.resolve_all()
            assert client.result().error_code == "timeout"
            # Revoke mid-connection: the *next* request must fail — the
            # gateway re-resolves the hashed key per request, so revoked
            # tenants cannot coast on an open connection.
            assert registry.revoke("key-acme")
            client.submit(sample_request())
            answer = client.result()
            assert not answer.ok
            assert answer.error_code == "auth_failed"
            client.close()
        finally:
            gateway.close()

    def test_registry_refresh_without_restart(self):
        service = ManualService()
        registry = ApiKeyRegistry(dict(KEYS))
        gateway = make_gateway(service, keys=registry)
        try:
            with pytest.raises(GatewayError):
                GatewayClient("127.0.0.1", gateway.port, key="key-new")
            registry.add("key-new", Tenant("newcorp"))
            client = GatewayClient("127.0.0.1", gateway.port, key="key-new")
            assert client.tenant == "newcorp"
            client.close()
        finally:
            gateway.close()


# ----------------------------------------------------------------------
# Per-tenant admission
# ----------------------------------------------------------------------
class TestAdmission:
    def test_rate_limit_fairness_between_tenants(self):
        """A hammering tenant is limited; a polite one is untouched."""
        service = ManualService()
        keys = {
            "key-greedy": Tenant("greedy", rate=0.001, burst=3.0),
            "key-polite": Tenant("polite", rate=10_000.0, burst=100.0),
        }
        gateway = make_gateway(service, keys=keys)
        try:
            greedy = GatewayClient("127.0.0.1", gateway.port, key="key-greedy")
            polite = GatewayClient("127.0.0.1", gateway.port, key="key-polite")
            for i in range(20):
                greedy.submit(sample_request(i))
                polite.submit(sample_request(i))
            # With burst=3 and ~zero refill, exactly 3 greedy requests
            # reach the service; every polite request does (3 + 20).
            deadline = time.time() + 5.0
            while len(service.submitted) < 23 and time.time() < deadline:
                time.sleep(0.005)
            assert len(service.submitted) == 23
            service.resolve_all()
            greedy_codes = [greedy.result().error_code for _ in range(20)]
            assert greedy_codes.count("rate_limited") == 17
            assert greedy_codes.count("timeout") == 3
            polite_codes = [polite.result().error_code for _ in range(20)]
            assert polite_codes == ["timeout"] * 20
            greedy.close()
            polite.close()
        finally:
            gateway.close()

    def test_queue_quota_bounds_inflight_per_tenant(self):
        service = ManualService()
        keys = {"key-q": Tenant("quota", rate=1e6, burst=1e6, max_inflight=2)}
        gateway = make_gateway(service, keys=keys)
        try:
            client = GatewayClient("127.0.0.1", gateway.port, key="key-q")
            for i in range(3):
                client.submit(sample_request(i))
            # Third request must bounce: two are in flight, quota is 2.
            answer = client.result()
            assert answer.error_code == "queue_full"
            wait_for_submissions(service, 2)
            assert len(service.submitted) == 2
            service.resolve_all()
            for _ in range(2):
                assert client.result().error_code == "timeout"
            # Quota released on completion: a fourth request is admitted.
            client.submit(sample_request(9))
            wait_for_submissions(service, 3)
            service.resolve_all()
            assert client.result().error_code == "timeout"
            client.close()
        finally:
            gateway.close()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_inflight_completes_and_new_connections_refused(self):
        service = ManualService()
        gateway = make_gateway(service)
        client = GatewayClient("127.0.0.1", gateway.port, key="key-acme")
        client.submit(sample_request())
        deadline = time.time() + 5.0
        while not service.submitted and time.time() < deadline:
            time.sleep(0.005)
        assert service.submitted

        closer = threading.Thread(target=gateway.close)
        closer.start()
        try:
            # The drain must wait for the in-flight request...
            time.sleep(0.1)
            assert closer.is_alive()
            service.resolve_all()
            # ...and its response must still be delivered.
            assert client.result().error_code == "timeout"
            closer.join(timeout=10.0)
            assert not closer.is_alive()
            with pytest.raises(OSError):
                GatewayClient("127.0.0.1", gateway.port)
        finally:
            service.resolve_all()
            closer.join(timeout=10.0)
            client.close()

    def test_query_during_drain_rejected_shutdown(self):
        service = ManualService()
        gateway = make_gateway(service)
        client = GatewayClient("127.0.0.1", gateway.port, key="key-acme")
        client.submit(sample_request(0))
        closer = threading.Thread(target=gateway.close)
        try:
            deadline = time.time() + 5.0
            while not service.submitted and time.time() < deadline:
                time.sleep(0.005)
            closer.start()
            time.sleep(0.1)
            client.submit(sample_request(1))
            answer = client.result()
            assert answer.error_code == "shutdown"
        finally:
            service.resolve_all()
            closer.join(timeout=10.0)
            client.close()


# ----------------------------------------------------------------------
# Wire equivalence against the real service
# ----------------------------------------------------------------------
class TestWireEquivalence:
    def test_randomized_workload_byte_identical(self, small_ind):
        spec = WorkloadSpec(
            n_preferences=8,
            d=small_ind.d,
            k_choices=(3, 5, 10),
            tau_fractions=(0.05, 0.15),
            interval_fractions=(0.3, 0.8),
            algorithms=("t-hop", "s-hop", "t-base"),
            future_fraction=0.25,
            seed=23,
        )
        requests = WorkloadGenerator(spec, small_ind.n).requests(60)
        reference = DurableTopKEngine(small_ind)
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=2
        ) as service:
            gateway = make_gateway(service)
            try:
                clients = [
                    GatewayClient("127.0.0.1", gateway.port, key="key-acme"),
                    GatewayClient("127.0.0.1", gateway.port, key="key-bob"),
                ]
                for i, request in enumerate(requests):
                    wire = clients[i % 2].query(request)
                    assert wire.ok, wire.error_message
                    expected = reference.query(
                        request.as_query(), request.scorer, algorithm=request.algorithm
                    )
                    assert wire.identical_to(expected), (
                        f"wire answer diverged for request {i}: {request}"
                    )
                for client in clients:
                    client.close()
            finally:
                gateway.close()

    def test_pipelined_out_of_order_matched_by_id(self, small_ind):
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=2
        ) as service:
            gateway = make_gateway(service)
            try:
                client = GatewayClient("127.0.0.1", gateway.port, key="key-acme")
                requests = {
                    client.submit(sample_request(i)): sample_request(i)
                    for i in range(12)
                }
                reference = DurableTopKEngine(small_ind)
                for _ in range(12):
                    wire = client.result()
                    request = requests.pop(wire.id)
                    expected = reference.query(
                        request.as_query(), request.scorer, algorithm=request.algorithm
                    )
                    assert wire.identical_to(expected)
                assert not requests
                client.close()
            finally:
                gateway.close()

    def test_cache_tier_tag_crosses_the_wire(self, small_ind):
        from repro.cache import SemanticAnswerCache

        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)),
            workers=1,
            cache=SemanticAnswerCache(),
        ) as service:
            gateway = make_gateway(service)
            try:
                client = GatewayClient("127.0.0.1", gateway.port, key="key-acme")
                request = sample_request()
                first = client.query(request)
                second = client.query(request)
                assert first.ok and second.ok
                assert second.cache == "exact"
                assert second.identical_to(
                    DurableTopKEngine(small_ind).query(
                        request.as_query(), request.scorer, algorithm=request.algorithm
                    )
                )
                client.close()
            finally:
                gateway.close()


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_per_tenant_counters_and_connection_gauge(self, small_ind):
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=1
        ) as service:
            gateway = make_gateway(service)
            registry = gateway.registry
            try:
                client = GatewayClient("127.0.0.1", gateway.port, key="key-acme")
                for i in range(4):
                    assert client.query(sample_request(i)).ok
                assert registry.gauge("gateway.connections").value == 1
                assert (
                    registry.counter(
                        "gateway.requests", tenant="acme", outcome="ok"
                    ).value
                    == 4
                )
                assert registry.counter("gateway.bytes_in", tenant="acme").value > 0
                assert registry.counter("gateway.bytes_out", tenant="acme").value > 0
                client.close()
                deadline = time.time() + 5.0
                while (
                    registry.gauge("gateway.connections").value > 0
                    and time.time() < deadline
                ):
                    time.sleep(0.01)
                assert registry.gauge("gateway.connections").value == 0
            finally:
                gateway.close()

    def test_gateway_request_span_joins_trace_tree(self, small_ind):
        from repro.obs import TRACES, disable, enable
        from repro.obs.trace import reset_for_tests

        reset_for_tests()
        enable()
        try:
            with DurableTopKService(
                EngineBackend(DurableTopKEngine(small_ind)), workers=1
            ) as service:
                gateway = make_gateway(service)
                try:
                    client = GatewayClient("127.0.0.1", gateway.port, key="key-acme")
                    assert client.query(sample_request()).ok
                    client.close()
                finally:
                    gateway.close()
            roots = [
                trace.root.name
                for trace in TRACES.slowest(50)
                if trace.root is not None
            ]
            assert "gateway.request" in roots
            trace = next(
                trace
                for trace in TRACES.slowest(50)
                if trace.root is not None and trace.root.name == "gateway.request"
            )
            assert trace.root.attrs["tenant"] == "acme"
            assert trace.root.attrs["outcome"] == "ok"
            assert any(span.name == "gateway.service" for span in trace.spans)
        finally:
            disable()
            reset_for_tests()
