"""Unit tests for the max segment tree."""

import numpy as np
import pytest

from repro.index.segment_tree import MaxSegmentTree


def test_basic_range_max():
    st = MaxSegmentTree([1.0, 5.0, 3.0, 2.0])
    assert st.range_max(0, 3) == 5.0
    assert st.range_max(2, 3) == 3.0
    assert st.range_argmax(0, 3) == 1


def test_tie_breaks_to_later_index():
    st = MaxSegmentTree([9.0, 4.0, 9.0, 9.0, 1.0])
    assert st.range_argmax(0, 4) == 3
    assert st.range_argmax(0, 2) == 2
    assert st.range_argmax(0, 0) == 0


def test_empty_tree():
    st = MaxSegmentTree([])
    assert len(st) == 0
    assert st.range_max_with_argmax(0, 10) == (float("-inf"), -1)


def test_single_element():
    st = MaxSegmentTree([7.5])
    assert st.range_max(0, 0) == 7.5
    assert st.range_argmax(-3, 12) == 0  # clamped


def test_out_of_range_is_clamped():
    st = MaxSegmentTree([1.0, 2.0, 3.0])
    assert st.range_max(-10, 100) == 3.0
    assert st.range_max(5, 9) == float("-inf")
    assert st.range_argmax(2, 1) == -1


def test_update_propagates():
    st = MaxSegmentTree([1.0, 2.0, 3.0, 4.0])
    st.update(0, 10.0)
    assert st.range_argmax(0, 3) == 0
    st.update(0, 0.0)
    assert st.range_argmax(0, 3) == 3
    assert st.value_at(0) == 0.0


def test_update_out_of_range_raises():
    st = MaxSegmentTree([1.0])
    with pytest.raises(IndexError):
        st.update(1, 2.0)
    with pytest.raises(IndexError):
        st.value_at(-1)


def test_non_power_of_two_sizes():
    for n in (1, 2, 3, 5, 7, 13, 100, 257):
        values = [float((i * 7919) % 1000) for i in range(n)]
        st = MaxSegmentTree(values)
        assert st.range_max(0, n - 1) == max(values)


def test_matches_naive_randomised():
    rng = np.random.default_rng(1)
    values = rng.random(317)
    st = MaxSegmentTree(values)
    for _ in range(300):
        lo, hi = sorted(rng.integers(0, 317, 2))
        lo, hi = int(lo), int(hi)
        window = values[lo : hi + 1]
        assert st.range_max(lo, hi) == pytest.approx(window.max())
        # Tie-break convention: later index wins.
        expected_arg = lo + int(np.flatnonzero(window == window.max()).max())
        assert st.range_argmax(lo, hi) == expected_arg


def test_matches_naive_with_duplicates():
    rng = np.random.default_rng(2)
    values = rng.integers(0, 5, 200).astype(float)
    st = MaxSegmentTree(values)
    for _ in range(200):
        lo, hi = sorted(rng.integers(0, 200, 2))
        lo, hi = int(lo), int(hi)
        window = values[lo : hi + 1]
        expected_arg = lo + int(np.flatnonzero(window == window.max()).max())
        assert st.range_argmax(lo, hi) == expected_arg
