"""Randomised interleavings of appends/seals/compactions/queries.

The equivalence gate of the ingest pipeline: at *every* step of a seeded
random schedule, the LiveDataset's answers (top-k membership via
durability, the durable set itself, and max-durability) must be exactly
equal to a from-scratch offline rebuild of the frozen prefix — including
query windows that straddle the tail/segment boundary and look-ahead
durability that resolves across a seal boundary. The same discipline is
applied to the paged LiveMiniDB, with mid-schedule crash-and-reopen
events thrown in.
"""

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine
from repro.core.query import Direction, DurableTopKQuery
from repro.core.reference import brute_force_durable_topk
from repro.ingest import LiveDataset
from repro.minidb import LiveMiniDB
from repro.minidb.procedures import t_base_procedure, t_hop_procedure
from repro.scoring import LinearPreference


def check_equivalence(live: LiveDataset, scorer, rng, boundary: int | None) -> None:
    """One full cross-check of the live dataset against an offline rebuild."""
    n = live.n
    if n < 3:
        return
    frozen = live.freeze()
    assert frozen.n == n
    engine = DurableTopKEngine(frozen, skyband_k_max=None)
    scores = scorer.scores(frozen.values)

    k = int(rng.integers(1, 4))
    tau = int(rng.integers(1, max(2, n // 2)))
    # Half the intervals are forced to straddle the sealed/tail boundary.
    if boundary is not None and 0 < boundary < n - 1 and rng.random() < 0.5:
        lo = int(rng.integers(0, boundary))
        hi = int(rng.integers(boundary, n))
    else:
        lo = int(rng.integers(0, n))
        hi = int(rng.integers(lo, n))
    direction = Direction.FUTURE if rng.random() < 0.4 else Direction.PAST
    query = DurableTopKQuery(k=k, tau=tau, interval=(lo, hi), direction=direction)
    algorithm = "t-base" if rng.random() < 0.5 else "t-hop"

    got = live.query(query, scorer, algorithm=algorithm, with_durations=True)
    want = engine.query(query, scorer, algorithm=algorithm, with_durations=True)
    assert got.ids == want.ids, (n, k, tau, lo, hi, direction, algorithm)
    assert got.durations == want.durations, (n, k, tau, lo, hi, direction)
    if direction is Direction.PAST:
        # Independent oracle, not just the engine.
        assert got.ids == brute_force_durable_topk(scores, k, lo, hi, tau)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_live_dataset_random_interleaving(seed):
    rng = np.random.default_rng(seed)
    scorer = LinearPreference(np.abs(rng.normal(size=2)) + 0.1)
    live = LiveDataset(d=2, seal_rows=10_000, compact_fanout=2)
    # Plenty of score ties stress the canonical tie-breaking.
    pool = rng.random((16, 2)).round(1)

    for _ in range(60):
        op = rng.random()
        if op < 0.55:
            count = int(rng.integers(1, 40))
            rows = pool[rng.integers(0, len(pool), size=count)]
            if rng.random() < 0.5:
                live.extend(rows)
            else:
                for row in rows:
                    live.append(row)
        elif op < 0.70:
            live.seal()
        elif op < 0.80:
            live.compact(force=bool(rng.random() < 0.3))
        else:
            check_equivalence(live, scorer, rng, boundary=live._state.base)
    live.seal()
    check_equivalence(live, scorer, rng, boundary=None)


def test_lookahead_resolves_across_seal_boundary():
    """A record whose look-ahead window is cut by a seal must be judged
    over the full window once the post-seal rows exist."""
    rng = np.random.default_rng(99)
    scorer = LinearPreference([1.0])
    live = LiveDataset(d=1, seal_rows=10_000)
    live.extend(rng.random((100, 1)))
    live.seal()  # records near t=99 have look-ahead windows crossing here
    live.extend(rng.random((60, 1)))
    engine = DurableTopKEngine(live.freeze(), skyband_k_max=None)
    query = DurableTopKQuery(k=1, tau=40, interval=(60, 120), direction=Direction.FUTURE)
    got = live.query(query, scorer, with_durations=True)
    want = engine.query(query, scorer, algorithm="t-hop", with_durations=True)
    assert got.ids == want.ids
    assert got.durations == want.durations


@pytest.mark.parametrize("seed", [11, 12])
def test_live_minidb_random_interleaving_with_crashes(tmp_path, seed):
    """Appends, seals, queries and crash-reopens against the paged store.

    The shadow array holds every row the WAL has flushed; after each
    reopen the store must hold exactly the shadow (sealed segments are
    never lost, the torn tail is dropped)."""
    rng = np.random.default_rng(seed)
    u = np.array([0.7, 0.3])
    directory = tmp_path / f"db-{seed}"
    store = LiveMiniDB(directory, d=2, seal_rows=10_000, buffer_pages=16)
    shadow: list[np.ndarray] = []

    for _ in range(40):
        op = rng.random()
        if op < 0.5:
            rows = rng.random((int(rng.integers(1, 60)), 2))
            for row in rows:
                store.append(row)
                shadow.append(row)
            store.flush()
        elif op < 0.65:
            store.seal()
        elif op < 0.85 and len(shadow) >= 3:
            scores = np.asarray(shadow) @ u
            n = len(shadow)
            k = int(rng.integers(1, 4))
            tau = int(rng.integers(1, max(2, n // 2)))
            lo = int(rng.integers(0, n))
            hi = int(rng.integers(lo, n))
            procedure = t_hop_procedure if rng.random() < 0.5 else t_base_procedure
            report = procedure(store, u, k, tau, lo, hi)
            assert report.ids == brute_force_durable_topk(scores, k, lo, hi, tau)
        else:
            # Crash: abandon the handle (no close/flush of pending state),
            # optionally tear the WAL tail, then recover.
            store.wal._file.flush()
            if rng.random() < 0.5:
                with open(directory / "wal.log", "ab") as f:
                    f.write(bytes(rng.integers(0, 256, size=int(rng.integers(1, 19)), dtype=np.uint8)))
            del store
            store = LiveMiniDB(directory)
            assert store.n == len(shadow)
            if shadow:
                scores = np.asarray(shadow) @ u
                got = store.topk(u, 3, 0, len(shadow) - 1)
                ids = np.arange(len(shadow))
                order = np.lexsort((ids, scores))[::-1][:3]
                assert got == [int(i) for i in ids[order]]
    store.close()
