"""Byte-identity of batched query execution across every layer.

The tentpole contract of ``query_batch`` is *not* "approximately the
same answers, faster" — it is byte-identity with a serial ``query``
loop: same ids, same durations, same per-query :class:`QueryStats`
(and, for MiniDB, the same logical/physical page counts). These
randomized property tests pin that contract for the vectorised window
kernel, the engine, the MiniDB batch procedures, the live dataset
(including tail-straddling windows and FUTURE-direction queries) and
the multi-process shard coordinator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BatchPlan, clone_result
from repro.core.engine import DurableTopKEngine
from repro.core.query import Direction, DurableTopKQuery
from repro.data import independent_uniform
from repro.index.range_topk import ScoreArrayTopKIndex
from repro.index.topk import BatchTopKMemo, batched_window_topk
from repro.ingest import LiveDataset
from repro.minidb import MiniDB
from repro.minidb.procedures import (
    t_base_batch_procedure,
    t_base_procedure,
    t_hop_batch_procedure,
    t_hop_procedure,
)
from repro.scoring import LinearPreference
from repro.service.request import QueryRequest
from repro.shard.coordinator import ShardCoordinator


@pytest.fixture(scope="module")
def scorer():
    return LinearPreference([0.55, 0.45])


def random_queries(rng, n, count, future_fraction=0.3, tau_max=60):
    """Random (query, algorithm) pairs, interval widths down to one row."""
    queries, algorithms = [], []
    for _ in range(count):
        k = int(rng.integers(1, 8))
        tau = int(rng.integers(1, tau_max))
        lo = int(rng.integers(0, max(1, n - 50)))
        hi = int(lo + rng.integers(0, 49))
        direction = (
            Direction.FUTURE if rng.random() < future_fraction else Direction.PAST
        )
        queries.append(
            DurableTopKQuery(k=k, tau=tau, interval=(lo, hi), direction=direction)
        )
        algorithms.append(str(rng.choice(["t-hop", "t-base", "s-hop", "auto"])))
    return queries, algorithms


# ----------------------------------------------------------------------
# The vectorised kernel
# ----------------------------------------------------------------------
class TestBatchedWindowKernel:
    def test_matches_serial_topk_on_random_windows(self):
        rng = np.random.default_rng(0)
        scores = rng.random(800)
        index = ScoreArrayTopKIndex(scores)
        windows = [
            (int(lo), int(lo + rng.integers(0, 90)))
            for lo in rng.integers(0, 750, size=64)
        ]
        # Clamping edge cases: negative lo, hi past the end, full range.
        windows += [(-7, 25), (780, 900), (0, 799)]
        for k in (1, 2, 5, 11):
            batched = batched_window_topk(scores, k, windows)
            serial = [index.topk(k, lo, hi) for lo, hi in windows]
            assert batched == serial, k

    def test_tie_heavy_scores_keep_canonical_order(self):
        """Ties must break toward larger id, exactly as the heap does."""
        rng = np.random.default_rng(3)
        scores = rng.integers(0, 4, size=300).astype(float)
        index = ScoreArrayTopKIndex(scores)
        windows = [(int(lo), int(lo + w)) for lo in range(0, 280, 7) for w in (0, 3, 40)]
        for k in (1, 3, 6):
            assert batched_window_topk(scores, k, windows) == [
                index.topk(k, lo, hi) for lo, hi in windows
            ]

    def test_degenerate_inputs(self):
        scores = np.array([0.4, 0.9, 0.1])
        assert batched_window_topk(scores, 3, []) == []
        assert batched_window_topk(scores, 0, [(0, 2)]) == [[]]
        assert batched_window_topk(scores, 2, [(2, 1), (5, 9)]) == [[], []]
        assert batched_window_topk(np.array([]), 2, [(0, 1)]) == [[]]

    def test_memo_primes_and_replays(self):
        scores = np.random.default_rng(1).random(200)
        plain = ScoreArrayTopKIndex(scores)
        memo = BatchTopKMemo(ScoreArrayTopKIndex(scores))
        memo.prime(3, [(0, 50), (40, 90)])
        assert memo.topk(3, 0, 50) == plain.topk(3, 0, 50)
        assert memo.topk(3, 40, 90) == plain.topk(3, 40, 90)
        assert memo.top1(10, 60) == plain.top1(10, 60)
        assert memo.n == plain.n


# ----------------------------------------------------------------------
# Batch planning
# ----------------------------------------------------------------------
class TestBatchPlan:
    def test_duplicates_map_to_first_occurrence(self):
        q = DurableTopKQuery(k=3, tau=10, interval=(5, 50))
        twin = DurableTopKQuery(k=3, tau=10, interval=(5, 50))
        other = DurableTopKQuery(k=4, tau=10, interval=(5, 50))
        plan = BatchPlan([(0, q, "t-hop"), (1, twin, "t-hop"), (2, other, "t-hop")], 100)
        assert plan.duplicates == {1: 0}
        assert [e.position for e in plan.unique] != []
        assert len(plan) == 3

    def test_equal_resolved_intervals_dedupe(self):
        """Raw intervals differing only past the clamp are one query."""
        a = DurableTopKQuery(k=2, tau=5, interval=(0, 99))
        b = DurableTopKQuery(k=2, tau=5, interval=None)
        plan = BatchPlan([(0, a, "t-hop"), (1, b, "t-hop")], 100)
        assert plan.duplicates == {1: 0}

    def test_clone_result_is_independent(self):
        engine = DurableTopKEngine(independent_uniform(120, 2, seed=9))
        scorer = LinearPreference([0.5, 0.5])
        query = DurableTopKQuery(k=3, tau=15, interval=(10, 100))
        result = engine.query(query, scorer, algorithm="t-hop", with_durations=True)
        copy = clone_result(result)
        assert copy.ids == result.ids and copy.ids is not result.ids
        assert copy.stats.as_dict() == result.stats.as_dict()
        assert copy.durations == result.durations
        copy.ids.append(-1)
        copy.stats.durability_topk_queries += 1
        assert copy.ids != result.ids
        assert copy.stats.as_dict() != result.stats.as_dict()


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class TestEngineBatchEquivalence:
    def test_random_batches_match_serial(self, small_ind, scorer):
        engine = DurableTopKEngine(small_ind)
        rng = np.random.default_rng(11)
        queries, algorithms = random_queries(rng, small_ind.n, 36)
        queries += queries[:6]  # force duplicates through the dedupe path
        algorithms += algorithms[:6]
        batch = engine.query_batch(
            queries, scorer, algorithm=algorithms, with_durations=True
        )
        for query, name, got in zip(queries, algorithms, batch):
            want = engine.query(query, scorer, algorithm=name, with_durations=True)
            assert got.ids == want.ids, (query, name)
            assert got.stats.as_dict() == want.stats.as_dict(), (query, name)
            assert got.durations == want.durations, (query, name)
            assert got.algorithm == want.algorithm

    def test_batch_through_session_and_broadcast_algorithm(self, small_ind, scorer):
        engine = DurableTopKEngine(small_ind)
        rng = np.random.default_rng(13)
        queries, _ = random_queries(rng, small_ind.n, 12, future_fraction=0.0)
        with engine.session(scorer) as session:
            batch = session.query_batch(queries, algorithm="t-hop")
        for query, got in zip(queries, batch):
            want = engine.query(query, scorer, algorithm="t-hop")
            assert got.ids == want.ids
            assert got.stats.as_dict() == want.stats.as_dict()

    def test_future_only_batch(self, small_ind, scorer):
        engine = DurableTopKEngine(small_ind)
        rng = np.random.default_rng(17)
        queries, algorithms = random_queries(
            rng, small_ind.n, 10, future_fraction=1.0
        )
        batch = engine.query_batch(
            queries, scorer, algorithm=algorithms, with_durations=True
        )
        for query, name, got in zip(queries, algorithms, batch):
            want = engine.query(query, scorer, algorithm=name, with_durations=True)
            assert got.ids == want.ids
            assert got.durations == want.durations
            assert got.stats.as_dict() == want.stats.as_dict()

    def test_algorithm_list_length_mismatch_raises(self, small_ind, scorer):
        engine = DurableTopKEngine(small_ind)
        query = DurableTopKQuery(k=3, tau=10)
        with pytest.raises(ValueError, match="algorithms for"):
            engine.query_batch([query, query], scorer, algorithm=["t-hop"])

    def test_empty_batch(self, small_ind, scorer):
        assert DurableTopKEngine(small_ind).query_batch([], scorer) == []


# ----------------------------------------------------------------------
# MiniDB stored procedures
# ----------------------------------------------------------------------
class TestMiniDBBatchEquivalence:
    PAIRS = (
        (t_hop_procedure, t_hop_batch_procedure),
        (t_base_procedure, t_base_batch_procedure),
    )

    def test_batch_reports_match_serial_including_pages(self, small_ind):
        u = np.array([0.55, 0.45])
        rng = np.random.default_rng(19)
        queries = [
            (
                int(rng.integers(1, 6)),
                int(rng.integers(0, 50)),
                int(rng.integers(0, small_ind.n - 60)),
                int(rng.integers(0, 49)),
            )
            for _ in range(16)
        ]
        queries = [(k, tau, lo, lo + w) for k, tau, lo, w in queries]
        queries += queries[:4]  # duplicates execute once, clone their report
        with MiniDB(small_ind, buffer_pages=16, block_rows=64) as db:
            for procedure, batch_procedure in self.PAIRS:
                reports = batch_procedure(db, u, queries, cold=True)
                for (k, tau, lo, hi), got in zip(queries, reports):
                    want = procedure(db, u, k, tau, lo, hi, cold=True)
                    assert got.ids == want.ids, (k, tau, lo, hi)
                    assert got.topk_queries == want.topk_queries
                    assert got.logical_reads == want.logical_reads
                    assert got.physical_reads == want.physical_reads

    def test_cloned_duplicate_reports_are_independent(self, small_ind):
        u = np.array([0.55, 0.45])
        with MiniDB(small_ind, buffer_pages=16, block_rows=64) as db:
            twin = (3, 20, 50, 200)
            first, second = t_hop_batch_procedure(db, u, [twin, twin], cold=True)
            assert first.ids == second.ids and first.ids is not second.ids


# ----------------------------------------------------------------------
# Live dataset (segments + mutable tail)
# ----------------------------------------------------------------------
class TestLiveBatchEquivalence:
    def make_live(self, rng, n=400, seal_every=90):
        live = LiveDataset(d=2, seal_rows=10_000)
        for i, row in enumerate(rng.random((n, 2))):
            live.append(row)
            if (i + 1) % seal_every == 0:
                live.seal()
        return live

    def test_batch_matches_serial_over_one_snapshot(self, scorer):
        rng = np.random.default_rng(23)
        live = self.make_live(rng)
        try:
            snap = live.snapshot()
            queries, algorithms = random_queries(rng, snap.n, 24)
            algorithms = [
                "t-hop" if name in ("s-hop", "auto") else name for name in algorithms
            ]
            # Tail-straddling windows: the interval ends in the mutable
            # tail while tau reaches back across sealed segments.
            queries += [
                DurableTopKQuery(k=3, tau=150, interval=(snap.n - 40, snap.n - 1)),
                DurableTopKQuery(
                    k=2,
                    tau=120,
                    interval=(snap.n - 30, snap.n - 1),
                    direction=Direction.FUTURE,
                ),
            ]
            algorithms += ["t-hop", "t-base"]
            queries += queries[:5]
            algorithms += algorithms[:5]
            batch = live.query_batch(
                queries, scorer, algorithm=algorithms, with_durations=True,
                snapshot=snap,
            )
            for query, name, got in zip(queries, algorithms, batch):
                want = live.query(
                    query, scorer, algorithm=name, with_durations=True, snapshot=snap
                )
                assert got.ids == want.ids, (query, name)
                assert got.stats.as_dict() == want.stats.as_dict(), (query, name)
                assert got.durations == want.durations
                assert got.extra["snapshot_n"] == want.extra["snapshot_n"]
                assert got.extra["snapshot_version"] == want.extra["snapshot_version"]
        finally:
            live.close()

    def test_index_only_algorithms_enforced(self, scorer):
        rng = np.random.default_rng(29)
        live = self.make_live(rng, n=120, seal_every=60)
        try:
            with pytest.raises(ValueError, match="freeze"):
                live.query_batch(
                    [DurableTopKQuery(k=2, tau=10)], scorer, algorithm="s-hop"
                )
        finally:
            live.close()


# ----------------------------------------------------------------------
# Shard coordinator (multi-process scatter-gather)
# ----------------------------------------------------------------------
class TestShardedBatchEquivalence:
    def test_batch_matches_serial_scatter(self, scorer):
        data = independent_uniform(420, 2, seed=31)
        rng = np.random.default_rng(31)
        queries, algorithms = random_queries(rng, data.n, 12, future_fraction=0.25)
        algorithms = [
            "t-hop" if name == "auto" else name for name in algorithms
        ]
        requests = [
            QueryRequest(
                scorer=scorer,
                k=query.k,
                tau=query.tau,
                interval=query.interval,
                direction=query.direction,
                algorithm=name,
            )
            for query, name in zip(queries, algorithms)
        ]
        requests += requests[:3]
        with ShardCoordinator(data, n_shards=3) as coordinator:
            batch = coordinator.query_batch(requests, with_durations=True)
            for request, got in zip(requests, batch):
                want = coordinator.query(request, with_durations=True)
                assert got.ids == want.ids, request
                assert got.stats.as_dict() == want.stats.as_dict(), request
                assert got.durations == want.durations
                assert got.extra["shard_fanout"] == want.extra["shard_fanout"]
                assert got.extra["shards"] == want.extra["shards"]

    def test_mixed_preferences_rejected(self, scorer):
        data = independent_uniform(100, 2, seed=37)
        other = LinearPreference([0.2, 0.8])
        requests = [
            QueryRequest(scorer=scorer, k=2, tau=10, algorithm="t-hop"),
            QueryRequest(scorer=other, k=2, tau=10, algorithm="t-hop"),
        ]
        with ShardCoordinator(data, n_shards=2) as coordinator:
            with pytest.raises(ValueError, match="one preference"):
                coordinator.query_batch(requests)

    def test_empty_batch(self, scorer):
        data = independent_uniform(80, 2, seed=41)
        with ShardCoordinator(data, n_shards=2) as coordinator:
            assert coordinator.query_batch([]) == []
