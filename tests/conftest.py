"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.record import Dataset
from repro.data import anticorrelated, generate_nba, generate_network, independent_uniform
from repro.scoring import LinearPreference


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_ind() -> Dataset:
    """600 independent uniform 2-D records."""
    return independent_uniform(600, 2, seed=42)


@pytest.fixture(scope="session")
def small_anti() -> Dataset:
    """400 anti-correlated 2-D records (large skybands)."""
    return anticorrelated(400, 2, seed=43)


@pytest.fixture(scope="session")
def small_nba() -> Dataset:
    """2000 synthetic NBA box scores (15 attributes, many ties)."""
    return generate_nba(2000, seed=5)


@pytest.fixture(scope="session")
def small_network() -> Dataset:
    """1500 synthetic network records (37 attributes)."""
    return generate_network(1500, seed=6)


@pytest.fixture(scope="session")
def linear_2d() -> LinearPreference:
    return LinearPreference([0.7, 0.3])


@pytest.fixture()
def tie_heavy_dataset() -> Dataset:
    """Small-integer attributes: scores collide constantly."""
    rng = np.random.default_rng(99)
    return Dataset(rng.integers(0, 4, size=(300, 2)).astype(float), name="ties")
