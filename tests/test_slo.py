"""Tests for SLO burn-rate monitoring (`repro.obs.slo`) and load shedding.

The burn-rate fixtures hand-place events on a fake timeline and assert
the exact fast/slow rates (bad_fraction / budget per window), the
multi-window burning verdict (fast alone reacts, both together page),
the gauge export, and the service integration: below-normal-priority
requests are shed with :attr:`RejectionReason.SHED` while the fast
window burns, while normal-priority traffic keeps being served.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.engine import DurableTopKEngine
from repro.data import independent_uniform
from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.slo import SLO, SLOMonitor, default_slos
from repro.scoring import LinearPreference
from repro.service import (
    DurableTopKService,
    EngineBackend,
    MetricsCollector,
    QueryRequest,
    QueryResponse,
    RejectionReason,
    shed_low_priority,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def latency_slo(**overrides) -> SLO:
    """The hand-computed fixture SLO: 5% budget, 5 s/60 s windows."""
    kwargs = dict(
        name="latency",
        objective=0.1,
        unit="s",
        budget=0.05,
        fast_window=5.0,
        slow_window=60.0,
        fast_burn=14.0,
        slow_burn=6.0,
    )
    kwargs.update(overrides)
    return SLO(**kwargs)


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
class TestSLODeclaration:
    def test_budget_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            SLO(name="x", budget=0.0)
        with pytest.raises(ValueError):
            SLO(name="x", budget=1.5)

    def test_windows_must_nest(self):
        with pytest.raises(ValueError):
            SLO(name="x", fast_window=10.0, slow_window=5.0)
        with pytest.raises(ValueError):
            SLO(name="x", fast_window=0.0)

    def test_default_slos_cover_the_serving_stack(self):
        slos = {s.name: s for s in default_slos()}
        assert set(slos) == {"latency", "rejections", "staleness"}
        assert slos["latency"].objective == 0.25
        assert slos["rejections"].budget == 0.01
        assert slos["staleness"].objective == 2000.0


# ----------------------------------------------------------------------
# Burn-rate arithmetic (hand-computed fixtures)
# ----------------------------------------------------------------------
class TestBurnRates:
    def test_hand_computed_two_window_rates(self):
        """4 events in the fast window (1 bad), 10 overall (1 bad).

        fast: 1/4 bad / 0.05 budget = 5.0; slow: 1/10 / 0.05 = 2.0.
        """
        clock = FakeClock()
        monitor = SLOMonitor([latency_slo()], clock=clock)
        for _ in range(6):
            monitor.observe("latency", 0.01, t=1.0)  # good, slow window only
        monitor.observe("latency", 0.5, t=6.0)  # bad, in both windows at t=10
        for t in (7.0, 8.0, 9.0):
            monitor.observe("latency", 0.01, t=t)
        fast, slow = monitor.burn_rates("latency", t=10.0)
        assert fast == pytest.approx(5.0)
        assert slow == pytest.approx(2.0)

    def test_observe_is_strictly_greater_than_objective(self):
        monitor = SLOMonitor([latency_slo()], clock=FakeClock())
        monitor.observe("latency", 0.1, t=1.0)  # == objective: good
        monitor.observe("latency", 0.1000001, t=1.0)  # > objective: bad
        fast, _ = monitor.burn_rates("latency", t=2.0)
        assert fast == pytest.approx((1 / 2) / 0.05)

    def test_empty_windows_burn_nothing(self):
        monitor = SLOMonitor([latency_slo()], clock=FakeClock())
        assert monitor.burn_rates("latency", t=100.0) == (0.0, 0.0)
        assert not monitor.burning("latency")
        assert not monitor.fast_burning()

    def test_unknown_slo_names_are_ignored(self):
        monitor = SLOMonitor([latency_slo()], clock=FakeClock())
        monitor.observe("nope", 1.0)
        monitor.record("nope", bad=True)
        assert monitor.burn_rates("latency", t=1.0) == (0.0, 0.0)

    def test_events_age_out_of_the_slow_window(self):
        monitor = SLOMonitor([latency_slo()], clock=FakeClock())
        monitor.observe("latency", 0.5, t=0.0)  # bad
        # The next add prunes anything past the slow horizon.
        monitor.observe("latency", 0.01, t=61.0)
        status = monitor.status(t=61.0)["latency"]
        assert status["events"] == 1
        assert status["bad"] == 0

    def test_fast_spike_alone_does_not_page(self):
        """A 5 s spike trips the fast window but not the slow one.

        fast: all 10 events bad -> 1.0/0.05 = 20 >= 14. slow: 10 bad of
        110 -> 0.0909/0.05 = 1.82 < 6. So `fast_burning` (the shed
        signal) fires while `burning` (the page) does not.
        """
        clock = FakeClock(60.0)
        monitor = SLOMonitor([latency_slo()], clock=clock)
        for i in range(100):
            monitor.observe("latency", 0.01, t=0.5 + i * 0.5)  # good history
        for i in range(10):
            monitor.observe("latency", 0.5, t=56.0 + i * 0.4)  # bad spike
        fast, slow = monitor.burn_rates("latency", t=60.0)
        assert fast == pytest.approx(20.0)
        assert slow == pytest.approx((10 / 110) / 0.05)
        assert monitor.fast_burning(t=60.0)
        assert not monitor.burning("latency", t=60.0)

    def test_sustained_burn_trips_both_windows(self):
        monitor = SLOMonitor([latency_slo()], clock=FakeClock(60.0))
        for i in range(120):
            monitor.observe("latency", 0.5, t=i * 0.5)
        fast, slow = monitor.burn_rates("latency", t=60.0)
        assert fast == pytest.approx(20.0)
        assert slow == pytest.approx(20.0)
        assert monitor.burning("latency", t=60.0)

    def test_burn_hooks_fire_on_transitions_only(self):
        clock = FakeClock(10.0)
        monitor = SLOMonitor([latency_slo()], clock=clock)
        flips: list[tuple[str, bool]] = []
        monitor.add_burn_hook(lambda slo, burning: flips.append((slo.name, burning)))

        for i in range(20):
            monitor.observe("latency", 0.5, t=5.0 + i * 0.25)
        monitor.status(t=10.0)
        monitor.status(t=10.0)  # steady state: no second callback
        clock.t = 200.0
        monitor.status()  # windows emptied -> flips back off
        assert flips == [("latency", True), ("latency", False)]

    def test_status_publishes_gauges_to_bound_registry(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor([latency_slo()], registry=registry, clock=FakeClock(10.0))
        for i in range(20):
            monitor.observe("latency", 0.5, t=5.0 + i * 0.25)
        monitor.status(t=10.0)
        gauges = {
            (series.name, tuple(series.labels)): series.value
            for series in registry.collect(kind="gauge", prefix="slo.")
        }
        assert gauges[
            ("slo.burn_rate", (("slo", "latency"), ("window", "fast")))
        ] == pytest.approx(20.0)
        assert gauges[("slo.burning", (("slo", "latency"),))] == 1.0
        text = render_prometheus(registry)
        assert "slo_burn_rate" in text and 'slo="latency"' in text

    def test_reset_drops_all_events(self):
        monitor = SLOMonitor([latency_slo()], clock=FakeClock(1.0))
        monitor.observe("latency", 0.5, t=1.0)
        monitor.reset()
        assert monitor.burn_rates("latency", t=1.0) == (0.0, 0.0)


# ----------------------------------------------------------------------
# MetricsCollector integration
# ----------------------------------------------------------------------
class TestCollectorIntegration:
    def _request(self, priority: int = 0) -> QueryRequest:
        return QueryRequest(
            scorer=LinearPreference([0.5, 0.5]), k=3, tau=30, priority=priority
        )

    def test_responses_feed_latency_and_rejection_slos(self):
        clock = FakeClock(1.0)
        collector = MetricsCollector(slos=SLOMonitor(clock=clock))
        collector.record_response(
            QueryResponse(request=self._request(), total_seconds=0.5)  # > 0.25
        )
        collector.record_response(
            QueryResponse(request=self._request(), total_seconds=0.01)
        )
        collector.record_rejection(RejectionReason.QUEUE_FULL)
        snap = collector.snapshot()
        assert snap.slo["latency"]["events"] == 2
        assert snap.slo["latency"]["bad"] == 1
        assert snap.slo["rejections"]["events"] == 3
        assert snap.slo["rejections"]["bad"] == 1
        assert "slo" in snap.as_dict()
        report = snap.report()
        assert "slo latency" in report and "slo rejections" in report

    def test_staleness_rides_the_response_extra(self):
        collector = MetricsCollector(slos=SLOMonitor(clock=FakeClock(1.0)))
        stale = SimpleNamespace(extra={"staleness_rows": 5000.0})
        collector.record_response(
            QueryResponse(request=self._request(), result=stale, total_seconds=0.01)
        )
        assert collector.snapshot().slo["staleness"]["bad"] == 1

    def test_reset_clears_slo_state_too(self):
        collector = MetricsCollector(slos=SLOMonitor(clock=FakeClock(1.0)))
        collector.record_rejection(RejectionReason.QUEUE_FULL)
        collector.reset()
        assert collector.snapshot().slo["rejections"]["events"] == 0

    def test_collector_without_slos_reports_none(self):
        collector = MetricsCollector()
        snap = collector.snapshot()
        assert snap.slo == {}
        assert "slo" not in snap.as_dict()
        assert "slo " not in snap.report()


# ----------------------------------------------------------------------
# Degradation: shedding under fast burn
# ----------------------------------------------------------------------
def _burning_monitor(clock: FakeClock) -> SLOMonitor:
    """A monitor whose latency fast window is on fire at ``clock.t``."""
    monitor = SLOMonitor(clock=clock)
    for i in range(20):
        monitor.observe("latency", 10.0, t=clock.t - 4.0 + i * 0.2)
    assert monitor.fast_burning()
    return monitor


class TestShedding:
    def _request(self, priority: int) -> QueryRequest:
        return QueryRequest(
            scorer=LinearPreference([0.5, 0.5]),
            k=3,
            tau=30,
            algorithm="t-hop",
            priority=priority,
        )

    def test_policy_only_sheds_low_priority_under_burn(self):
        clock = FakeClock(100.0)
        monitor = _burning_monitor(clock)
        assert shed_low_priority(self._request(-1), monitor) is RejectionReason.SHED
        assert shed_low_priority(self._request(0), monitor) is None
        calm = SLOMonitor(clock=clock)
        assert shed_low_priority(self._request(-1), calm) is None

    def test_service_sheds_then_recovers(self):
        clock = FakeClock(100.0)
        collector = MetricsCollector(slos=_burning_monitor(clock))
        data = independent_uniform(300, 2, seed=1)
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(data)), workers=2, metrics=collector
        ) as service:
            shed = service.query(self._request(-1))
            assert not shed.ok
            assert shed.error.reason is RejectionReason.SHED
            served = service.query(self._request(0))
            assert served.ok
            # Burn subsides (windows age out) -> low priority flows again.
            clock.t = 500.0
            recovered = service.query(self._request(-1))
            assert recovered.ok
        assert collector.snapshot().rejected.get("shed") == 1

    def test_degradation_none_disables_shedding(self):
        clock = FakeClock(100.0)
        collector = MetricsCollector(slos=_burning_monitor(clock))
        data = independent_uniform(300, 2, seed=1)
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(data)),
            workers=2,
            metrics=collector,
            degradation=None,
        ) as service:
            assert service.query(self._request(-1)).ok
