"""Tests for the streaming durable top-k monitor."""

import numpy as np
import pytest

from repro.core.reference import brute_force_durable_topk, brute_force_topk
from repro.core.streaming import StreamingDurableMonitor


def run_stream(scores, k, tau, lookahead=False):
    monitor = StreamingDurableMonitor(k, tau, track_lookahead=lookahead)
    durable = []
    resolutions = []
    for s in scores:
        is_durable, resolved = monitor.append(s)
        if is_durable:
            durable.append(monitor.n - 1)
        resolutions.extend(resolved)
    resolutions.extend(monitor.finish())
    return monitor, durable, resolutions


def offline_lookahead(scores, k, tau):
    """Oracle: mirror of the offline FUTURE direction."""
    rev = np.asarray(scores)[::-1]
    n = len(rev)
    ids = brute_force_durable_topk(rev, k, 0, n - 1, tau)
    return sorted(n - 1 - t for t in ids)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingDurableMonitor(0, 5)
        with pytest.raises(ValueError):
            StreamingDurableMonitor(1, 0)


class TestLookback:
    def test_doc_example(self):
        monitor = StreamingDurableMonitor(k=1, tau=2)
        flags = [monitor.append(s)[0] for s in (5.0, 3.0, 6.0, 4.0)]
        assert flags == [True, False, True, False]
        assert monitor.durable_ids == [0, 2]

    @pytest.mark.parametrize("k,tau", [(1, 5), (2, 10), (5, 25), (3, 1)])
    def test_matches_offline_oracle(self, k, tau):
        rng = np.random.default_rng(k * 100 + tau)
        scores = rng.random(400)
        _, durable, _ = run_stream(scores, k, tau)
        assert durable == brute_force_durable_topk(scores, k, 0, 399, tau)

    @pytest.mark.parametrize("k,tau", [(1, 7), (3, 12)])
    def test_matches_offline_with_ties(self, k, tau):
        rng = np.random.default_rng(9)
        scores = rng.integers(0, 5, 300).astype(float)
        _, durable, _ = run_stream(scores, k, tau)
        assert durable == brute_force_durable_topk(scores, k, 0, 299, tau)

    def test_window_topk_matches_oracle(self):
        rng = np.random.default_rng(10)
        scores = rng.random(200)
        monitor = StreamingDurableMonitor(k=4, tau=30)
        for i, s in enumerate(scores):
            monitor.append(s)
            if i % 17 == 0:
                expected = brute_force_topk(scores[: i + 1], 4, i - 30, i)
                assert monitor.window_topk() == expected, i

    def test_monotone_increasing_all_durable(self):
        _, durable, _ = run_stream(np.arange(100, dtype=float), 1, 10)
        assert durable == list(range(100))

    def test_monotone_decreasing_only_first(self):
        _, durable, _ = run_stream(np.arange(100, 0, -1, dtype=float), 1, 100)
        assert durable == [0]


class TestLookahead:
    @pytest.mark.parametrize("k,tau", [(1, 5), (2, 10), (4, 20)])
    def test_matches_offline_future_direction(self, k, tau):
        rng = np.random.default_rng(k * 7 + tau)
        scores = rng.random(300)
        _, _, resolutions = run_stream(scores, k, tau, lookahead=True)
        survivors = sorted(r.t for r in resolutions if r.durable)
        assert survivors == offline_lookahead(scores, k, tau)

    def test_lookahead_with_ties_matches_future_direction(self):
        rng = np.random.default_rng(11)
        scores = rng.integers(0, 4, 250).astype(float)
        _, _, resolutions = run_stream(scores, 2, 9, lookahead=True)
        survivors = sorted(r.t for r in resolutions if r.durable)
        assert survivors == offline_lookahead(scores, 2, 9)

    def test_every_record_resolved_exactly_once(self):
        rng = np.random.default_rng(12)
        scores = rng.random(150)
        _, _, resolutions = run_stream(scores, 2, 20, lookahead=True)
        assert sorted(r.t for r in resolutions) == list(range(150))

    def test_defeat_decided_at_the_kth_blow(self):
        # Candidate 0 (score 5) beaten by arrivals 1 and 2 with k=2.
        monitor = StreamingDurableMonitor(k=2, tau=10, track_lookahead=True)
        monitor.append(5.0)
        _, r1 = monitor.append(6.0)
        assert r1 == []
        _, r2 = monitor.append(7.0)
        assert len(r2) == 1
        assert r2[0].t == 0
        assert not r2[0].durable
        assert r2[0].decided_at == 2

    def test_survival_decided_when_window_completes(self):
        monitor = StreamingDurableMonitor(k=1, tau=3, track_lookahead=True)
        monitor.append(9.0)
        for score in (1.0,):
            _, res = monitor.append(score)
            assert res == []
        monitor.append(2.0)  # defeats t=1 (1.0 < 2.0) — fine
        _, res = monitor.append(3.0)  # t=3 completes [0, 3] for the peak
        survived = [r for r in res if r.durable]
        assert len(survived) == 1
        assert survived[0].t == 0
        assert survived[0].decided_at == 3

    def test_finish_resolves_clipped_windows_as_durable(self):
        # Scores (3, 1, 2): record 1 is beaten by record 2 mid-stream;
        # records 0 and 2 are still pending at end-of-stream and resolve
        # durable under the clipped-window semantics.
        monitor = StreamingDurableMonitor(k=1, tau=100, track_lookahead=True)
        mid: list = []
        for s in (3.0, 1.0, 2.0):
            _, res = monitor.append(s)
            mid.extend(res)
        assert [(r.t, r.durable) for r in mid] == [(1, False)]
        leftovers = monitor.finish()
        assert sorted(r.t for r in leftovers) == [0, 2]
        assert all(r.durable for r in leftovers)
        # Mirrors the offline FUTURE answer on the same stream.
        assert offline_lookahead(np.array([3.0, 1.0, 2.0]), 1, 100) == [0, 2]


class TestEngineCrossCheck:
    def test_streaming_equals_engine_future(self):
        from repro.core.engine import DurableTopKEngine
        from repro.core.query import Direction, DurableTopKQuery
        from repro.core.record import Dataset
        from repro.scoring import LinearPreference

        rng = np.random.default_rng(13)
        values = rng.random((300, 1))
        data = Dataset(values)
        engine = DurableTopKEngine(data)
        offline = engine.query(
            DurableTopKQuery(k=3, tau=25, direction=Direction.FUTURE),
            LinearPreference([1.0]),
            algorithm="t-hop",
        )
        _, _, resolutions = run_stream(values[:, 0], 3, 25, lookahead=True)
        survivors = sorted(r.t for r in resolutions if r.durable)
        assert survivors == offline.ids
