"""Unit tests for the priority search tree."""

import numpy as np
import pytest

from repro.index.priority_search_tree import PrioritySearchTree


def naive_3sided(points, x1, x2, y0):
    return sorted(p for x, y, p in points if x1 <= x <= x2 and y >= y0)


def test_empty_tree():
    pst = PrioritySearchTree([])
    assert len(pst) == 0
    assert pst.query_3sided(0, 100, -10) == []


def test_single_point():
    pst = PrioritySearchTree([(5, 3, "a")])
    assert pst.query_3sided(0, 10, 3) == ["a"]
    assert pst.query_3sided(0, 10, 4) == []
    assert pst.query_3sided(6, 10, 0) == []


def test_inverted_x_range_is_empty():
    pst = PrioritySearchTree([(1, 1, "a")])
    assert pst.query_3sided(5, 2, 0) == []


def test_boundaries_inclusive():
    pst = PrioritySearchTree([(1, 5, "a"), (3, 5, "b")])
    assert sorted(pst.query_3sided(1, 3, 5)) == ["a", "b"]


def test_duplicate_coordinates():
    pts = [(2, 2, i) for i in range(5)]
    pst = PrioritySearchTree(pts)
    assert sorted(pst.query_3sided(2, 2, 2)) == [0, 1, 2, 3, 4]
    assert pst.query_3sided(2, 2, 3) == []


def test_count_matches_query():
    rng = np.random.default_rng(0)
    pts = [(int(x), int(y), i) for i, (x, y) in enumerate(rng.integers(0, 50, (100, 2)))]
    pst = PrioritySearchTree(pts)
    assert pst.count_3sided(10, 30, 25) == len(pst.query_3sided(10, 30, 25))


@pytest.mark.parametrize("n", [1, 2, 3, 10, 64, 257])
def test_matches_naive_randomised(n):
    rng = np.random.default_rng(n)
    pts = [
        (float(x), float(y), i)
        for i, (x, y) in enumerate(rng.integers(0, max(4, n // 2), (n, 2)))
    ]
    pst = PrioritySearchTree(pts)
    for _ in range(100):
        x1, x2 = sorted(rng.integers(-2, max(4, n // 2) + 2, 2))
        y0 = float(rng.integers(-2, max(4, n // 2) + 2))
        assert sorted(pst.query_3sided(float(x1), float(x2), y0)) == naive_3sided(
            pts, x1, x2, y0
        )


def test_all_reported_when_y0_very_low():
    rng = np.random.default_rng(7)
    pts = [(float(x), float(y), i) for i, (x, y) in enumerate(rng.random((50, 2)))]
    pst = PrioritySearchTree(pts)
    assert sorted(pst.query_3sided(-1, 2, -1)) == list(range(50))
