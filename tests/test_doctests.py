"""Run every module's docstring examples as tests.

Docs that drift from the code are worse than no docs; this keeps the
inline examples honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


@pytest.mark.parametrize("module_name", sorted(_iter_modules()))
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module_name}"
