"""Seeded equivalence: MiniDB procedures vs the in-memory reference.

`t_hop_procedure` and `t_base_procedure` answer through page storage and
the block-skyline index table; the in-memory engine answers through the
preference-bound top-k index; `brute_force_durable_topk` answers from the
definition. All three must return the identical durable id list on every
randomized ``u``/``k``/``tau``/interval combination.
"""

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine
from repro.core.query import DurableTopKQuery
from repro.core.record import Dataset
from repro.core.reference import brute_force_durable_topk
from repro.minidb import MiniDB, t_base_procedure, t_hop_procedure
from repro.scoring import LinearPreference

N = 2500
D = 3


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(11)
    dataset = Dataset(rng.random((N, D)), name="equiv-test")
    db = MiniDB(dataset, buffer_pages=24, block_rows=64, fanout=4)
    engine = DurableTopKEngine(dataset)
    yield db, engine, dataset
    db.close()


def random_cases(n_cases: int = 18):
    rng = np.random.default_rng(29)
    for _ in range(n_cases):
        u = rng.random(D) + 0.05  # strictly positive weights
        u /= u.sum()
        k = int(rng.integers(1, 13))
        # tau >= 1: DurableTopKQuery rejects tau=0 (procedures cover the
        # tau=0 edge separately in test_minidb.py / test_edge_intervals).
        tau = int(rng.integers(1, N // 2))
        lo, hi = np.sort(rng.integers(0, N, 2))
        yield u, k, tau, int(lo), int(hi)


@pytest.mark.parametrize("case", list(random_cases()), ids=lambda c: f"k={c[1]},tau={c[2]},I=[{c[3]},{c[4]}]")
def test_procedures_match_each_other_and_reference(setup, case):
    db, engine, dataset = setup
    u, k, tau, lo, hi = case
    hop = t_hop_procedure(db, u, k, tau, lo, hi)
    base = t_base_procedure(db, u, k, tau, lo, hi)
    assert hop.ids == base.ids

    scores = dataset.values @ u
    assert hop.ids == brute_force_durable_topk(scores, k, lo, hi, tau)

    in_memory = engine.query(
        DurableTopKQuery(k=k, tau=tau, interval=(lo, hi)),
        LinearPreference(u),
        algorithm="t-hop",
    )
    assert hop.ids == in_memory.ids


def test_edge_intervals_match_reference(setup):
    db, engine, dataset = setup
    u = np.array([0.2, 0.3, 0.5])
    scores = dataset.values @ u
    for k, tau, lo, hi in ((3, 0, 0, 99), (2, 100, 0, 0), (5, N, 0, N - 1), (4, 7, N - 1, N - 1)):
        hop = t_hop_procedure(db, u, k, tau, lo, hi)
        base = t_base_procedure(db, u, k, tau, lo, hi)
        expected = brute_force_durable_topk(scores, k, lo, hi, tau)
        assert hop.ids == base.ids == expected
