"""Property-based tests (hypothesis) on core invariants.

These generate adversarial inputs — tiny datasets, heavy ties, degenerate
parameters — and assert the library-wide invariants: algorithm equivalence,
complexity-bound compliance, and data-structure correctness against naive
models.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import BlockingIntervals
from repro.core.engine import DurableTopKEngine
from repro.core.query import DurableTopKQuery
from repro.core.record import Dataset
from repro.core.reference import brute_force_durable_topk, brute_force_topk
from repro.index.fenwick import FenwickTree
from repro.index.range_topk import ScoreArrayTopKIndex
from repro.index.segment_tree import MaxSegmentTree
from repro.index.skyline import kskyband_indices, pareto_dominates, skyline_indices
from repro.scoring import LinearPreference

# Score pools: floats (usually distinct) and small ints (heavy ties).
float_scores = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=120
)
int_scores = st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=120)


@st.composite
def durable_query_case(draw, scores_strategy=float_scores):
    scores = np.asarray(draw(scores_strategy), dtype=float)
    n = len(scores)
    k = draw(st.integers(min_value=1, max_value=8))
    tau = draw(st.integers(min_value=1, max_value=max(1, 2 * n)))
    lo = draw(st.integers(min_value=0, max_value=n - 1))
    hi = draw(st.integers(min_value=lo, max_value=n - 1))
    return scores, k, tau, lo, hi


class TestAlgorithmEquivalenceProperties:
    @given(case=durable_query_case())
    @settings(max_examples=60, deadline=None)
    def test_all_algorithms_match_oracle_float(self, case):
        self._check(*case)

    @given(case=durable_query_case(int_scores))
    @settings(max_examples=60, deadline=None)
    def test_all_algorithms_match_oracle_ties(self, case):
        self._check(*case)

    @staticmethod
    def _check(scores, k, tau, lo, hi):
        # 1-D dataset whose only attribute *is* the score.
        data = Dataset(scores[:, None], name="prop")
        scorer = LinearPreference([1.0])
        expected = brute_force_durable_topk(scores, k, lo, hi, tau)
        engine = DurableTopKEngine(data, skyband_k_max=8)
        algorithms = ["t-base", "t-hop", "s-base", "s-hop"]
        if k <= 8:
            algorithms.append("s-band")
        for name in algorithms:
            res = engine.query(
                DurableTopKQuery(k=k, tau=tau, interval=(lo, hi)), scorer, algorithm=name
            )
            assert res.ids == expected, (name, k, tau, lo, hi, scores.tolist())

    @given(case=durable_query_case())
    @settings(max_examples=40, deadline=None)
    def test_hop_query_bound_holds(self, case):
        """Lemma 1/3: top-k queries <= 2|S| + k*ceil(|I|/tau) + k."""
        import math

        scores, k, tau, lo, hi = case
        data = Dataset(scores[:, None], name="prop")
        scorer = LinearPreference([1.0])
        engine = DurableTopKEngine(data, skyband_k_max=None)
        bound_extra = k * math.ceil((hi - lo + 1) / tau) + k
        for name in ("t-hop", "s-hop"):
            res = engine.query(
                DurableTopKQuery(k=k, tau=tau, interval=(lo, hi)), scorer, algorithm=name
            )
            assert res.stats.durability_topk_queries <= 2 * len(res.ids) + bound_extra


class TestStructureProperties:
    @given(
        values=st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=1, max_size=200),
        queries=st.lists(st.tuples(st.integers(0, 199), st.integers(0, 199)), max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_segment_tree_matches_numpy(self, values, queries):
        st_tree = MaxSegmentTree(values)
        arr = np.asarray(values)
        for a, b in queries:
            lo, hi = min(a, b), max(a, b)
            hi = min(hi, len(values) - 1)
            if lo > hi:
                continue
            assert st_tree.range_max(lo, hi) == arr[lo : hi + 1].max()

    @given(
        adds=st.lists(st.integers(0, 99), max_size=60),
        probes=st.lists(st.integers(0, 99), max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_fenwick_matches_counter(self, adds, probes):
        ft = FenwickTree(100)
        naive = np.zeros(100, dtype=int)
        for a in adds:
            ft.add(a)
            naive[a] += 1
        for p in probes:
            assert ft.prefix_sum(p) == int(naive[: p + 1].sum())

    @given(
        lefts=st.lists(st.integers(0, 80), max_size=40),
        tau=st.integers(1, 30),
        probes=st.lists(st.integers(0, 99), max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_blocking_matches_interval_stabbing(self, lefts, tau, probes):
        blocks = BlockingIntervals(100, tau)
        distinct = set()
        for left in lefts:
            blocks.add(left)
            distinct.add(left)
        for t in probes:
            naive = sum(1 for left in distinct if left <= t <= left + tau)
            assert blocks.count_at(t) == naive

    @given(
        scores=st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=150),
        k=st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_range_topk_matches_oracle(self, scores, k):
        arr = np.asarray(scores)
        index = ScoreArrayTopKIndex(arr)
        n = len(arr)
        assert index.topk(k, 0, n - 1) == brute_force_topk(arr, k, 0, n - 1)

    @given(
        pts=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=1, max_size=80
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_skyline_members_not_dominated(self, pts):
        arr = np.asarray(pts, dtype=float)
        sky = set(skyline_indices(arr).tolist())
        for i in range(len(arr)):
            dominated = any(
                pareto_dominates(arr[j], arr[i]) for j in range(len(arr)) if j != i
            )
            assert (i in sky) == (not dominated)

    @given(
        pts=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=60
        ),
        k=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_kskyband_nested(self, pts, k):
        arr = np.asarray(pts, dtype=float)
        smaller = set(kskyband_indices(arr, k).tolist())
        larger = set(kskyband_indices(arr, k + 1).tolist())
        assert smaller <= larger


class TestStreamingProperties:
    @given(case=durable_query_case())
    @settings(max_examples=40, deadline=None)
    def test_streaming_lookback_matches_oracle(self, case):
        from repro.core.streaming import StreamingDurableMonitor

        scores, k, tau, _, _ = case
        monitor = StreamingDurableMonitor(k, tau)
        for s in scores:
            monitor.append(s)
        n = len(scores)
        assert monitor.durable_ids == brute_force_durable_topk(scores, k, 0, n - 1, tau)

    @given(case=durable_query_case(int_scores))
    @settings(max_examples=40, deadline=None)
    def test_streaming_lookahead_matches_reversed_oracle(self, case):
        from repro.core.streaming import StreamingDurableMonitor

        scores, k, tau, _, _ = case
        monitor = StreamingDurableMonitor(k, tau, track_lookahead=True)
        resolutions = []
        for s in scores:
            resolutions.extend(monitor.append(s)[1])
        resolutions.extend(monitor.finish())
        n = len(scores)
        survivors = sorted(r.t for r in resolutions if r.durable)
        rev = brute_force_durable_topk(scores[::-1], k, 0, n - 1, tau)
        assert survivors == sorted(n - 1 - t for t in rev)
        # Exactly one resolution per record.
        assert sorted(r.t for r in resolutions) == list(range(n))


class TestSemanticProperties:
    @given(case=durable_query_case())
    @settings(max_examples=40, deadline=None)
    def test_durable_set_antitone_in_tau(self, case):
        scores, k, tau, lo, hi = case
        bigger = set(brute_force_durable_topk(scores, k, lo, hi, tau))
        smaller = set(brute_force_durable_topk(scores, k, lo, hi, tau + 5))
        assert smaller <= bigger

    @given(case=durable_query_case())
    @settings(max_examples=40, deadline=None)
    def test_durable_set_monotone_in_k(self, case):
        scores, k, tau, lo, hi = case
        smaller = set(brute_force_durable_topk(scores, k, lo, hi, tau))
        bigger = set(brute_force_durable_topk(scores, k + 1, lo, hi, tau))
        assert smaller <= bigger

    @given(scores=float_scores)
    @settings(max_examples=30, deadline=None)
    def test_global_argmax_always_durable(self, scores):
        arr = np.asarray(scores)
        n = len(arr)
        # Canonical winner: max score, latest arrival among ties.
        best = n - 1 - int(np.argmax(arr[::-1]))
        out = brute_force_durable_topk(arr, 1, 0, n - 1, n)
        assert best in out
