"""Tests for the MiniDB storage engine and its stored procedures."""

import numpy as np
import pytest

from repro.core.record import Dataset
from repro.core.reference import brute_force_durable_topk, brute_force_topk
from repro.minidb import (
    BufferPool,
    HeapTable,
    MiniDB,
    Pager,
    t_base_procedure,
    t_hop_procedure,
)


class TestPager:
    def test_page_roundtrip(self):
        with Pager(page_size=256) as pager:
            pid = pager.allocate()
            pager.write_page(pid, b"hello")
            data = pager.read_page(pid)
            assert data[:5] == b"hello"
            assert len(data) == 256

    def test_short_writes_zero_padded(self):
        with Pager(page_size=128) as pager:
            pager.write_page(0, b"x")
            assert pager.read_page(0)[1:] == b"\x00" * 127

    def test_oversized_write_rejected(self):
        with Pager(page_size=64) as pager:
            with pytest.raises(ValueError):
                pager.write_page(0, b"y" * 65)

    def test_read_unallocated_rejected(self):
        with Pager() as pager:
            with pytest.raises(IndexError):
                pager.read_page(0)

    def test_counters(self):
        with Pager(page_size=64) as pager:
            pager.write_page(0, b"a")
            pager.write_page(1, b"b")
            pager.read_page(0)
            assert pager.physical_writes == 2
            assert pager.physical_reads == 1

    def test_tiny_page_size_rejected(self):
        with pytest.raises(ValueError):
            Pager(page_size=16)


class TestBufferPool:
    def test_caches_repeated_reads(self):
        with Pager(page_size=64) as pager:
            pager.write_page(0, b"a")
            pool = BufferPool(pager, capacity=2)
            pool.get(0)
            pool.get(0)
            assert pool.logical_reads == 2
            assert pool.physical_reads == 1
            assert pool.hit_rate == 0.5

    def test_lru_eviction(self):
        with Pager(page_size=64) as pager:
            for i in range(3):
                pager.write_page(i, bytes([i]))
            pool = BufferPool(pager, capacity=2)
            pool.get(0)
            pool.get(1)
            pool.get(2)  # evicts 0
            pool.get(0)  # miss again
            assert pool.physical_reads == 4

    def test_reset_and_clear(self):
        with Pager(page_size=64) as pager:
            pager.write_page(0, b"a")
            pool = BufferPool(pager, capacity=2)
            pool.get(0)
            pool.reset_counters()
            assert pool.logical_reads == 0
            pool.clear()
            pool.get(0)
            assert pool.physical_reads == 1

    def test_capacity_validation(self):
        with Pager() as pager:
            with pytest.raises(ValueError):
                BufferPool(pager, capacity=0)


class TestHeapTable:
    @pytest.fixture()
    def loaded(self):
        pager = Pager(page_size=512)
        pool = BufferPool(pager, capacity=8)
        rng = np.random.default_rng(1)
        values = rng.random((100, 3))
        table = HeapTable.from_values(values, pager, pool)
        yield table, values
        pager.close()

    def test_row_roundtrip(self, loaded):
        table, values = loaded
        for row_id in (0, 1, 50, 99):
            assert np.allclose(table.read_row(row_id), values[row_id])

    def test_read_rows_range(self, loaded):
        table, values = loaded
        out = table.read_rows(10, 40)
        assert np.allclose(out, values[10:41])

    def test_read_rows_clamps(self, loaded):
        table, values = loaded
        assert np.allclose(table.read_rows(-5, 3), values[:4])
        assert table.read_rows(200, 300).shape == (0, 3)

    def test_out_of_range_row(self, loaded):
        table, _ = loaded
        with pytest.raises(IndexError):
            table.read_row(100)

    def test_tuple_header_reduces_density(self):
        pager = Pager(page_size=512)
        pool = BufferPool(pager, capacity=4)
        values = np.ones((10, 2))
        dense = HeapTable.from_values(values, pager, pool, tuple_header_bytes=0)
        padded_pager = Pager(page_size=512)
        padded = HeapTable.from_values(
            values, padded_pager, BufferPool(padded_pager, capacity=4), tuple_header_bytes=48
        )
        assert dense.rows_per_page > padded.rows_per_page
        pager.close()
        padded_pager.close()

    def test_row_too_wide_rejected(self):
        pager = Pager(page_size=64)
        pool = BufferPool(pager, capacity=2)
        with pytest.raises(ValueError):
            HeapTable(pager, pool, d=64)
        pager.close()


class TestBlockIndexTopK:
    @pytest.fixture(scope="class")
    def db(self):
        rng = np.random.default_rng(2)
        data = Dataset(rng.random((3000, 2)), name="minidb-test")
        db = MiniDB(data, buffer_pages=32, block_rows=64, fanout=4)
        yield db
        db.close()

    def test_matches_brute_force(self, db):
        rng = np.random.default_rng(3)
        scores_u = np.array([0.3, 0.7])
        scores = db.dataset.values @ scores_u
        for _ in range(60):
            lo, hi = sorted(rng.integers(0, 3000, 2))
            k = int(rng.integers(1, 12))
            assert db.topk(scores_u, k, int(lo), int(hi)) == brute_force_topk(
                scores, k, int(lo), int(hi)
            )

    def test_ub_cache_gives_same_answers(self, db):
        u = np.array([0.5, 0.5])
        scores = db.dataset.values @ u
        cache: dict = {}
        for lo, hi, k in ((0, 2999, 5), (100, 900, 3), (2000, 2500, 8)):
            assert db.topk(u, k, lo, hi, ub_cache=cache) == brute_force_topk(scores, k, lo, hi)

    def test_session_gives_same_answers_and_accounting(self, db):
        """A session changes neither answers nor page accounting."""
        u = np.array([0.2, 0.8])
        scores = db.dataset.values @ u
        windows = ((0, 2999, 5), (100, 900, 3), (2000, 2500, 8), (1500, 2400, 5))
        ub_cache: dict = {}  # the seed-era caching baseline
        db.reset_io(cold=True)
        plain = [db.topk(u, k, lo, hi, ub_cache=ub_cache) for lo, hi, k in windows]
        plain_io = db.io_stats()
        session = db.session(u)
        db.reset_io(cold=True)
        cached = [db.topk(u, k, lo, hi, session=session) for lo, hi, k in windows]
        session_io = db.io_stats()
        assert plain == cached
        for (lo, hi, k), ids in zip(windows, plain):
            assert ids == brute_force_topk(scores, k, lo, hi)
        # The session's extra caches replay their page reads on every hit,
        # so logical/physical accounting is identical to ub-cache-only.
        assert session_io == plain_io

    def test_large_k_finalization(self, db):
        """Regression for the O(n^2) finalization: a large ``k`` collects
        thousands of candidates and must still match brute force."""
        u = np.array([0.6, 0.4])
        scores = db.dataset.values @ u
        for k in (500, 1000, 2500):
            assert db.topk(u, k, 0, 2999) == brute_force_topk(scores, k, 0, 2999)

    def test_session_bound_to_one_preference(self, db):
        session = db.session(np.array([0.5, 0.5]))
        other = np.array([0.9, 0.1])
        with pytest.raises(ValueError):
            db.topk(other, 5, 0, 100, session=session)
        with pytest.raises(ValueError):
            db.score_of(other, 7, session=session)

    def test_session_score_of_matches_plain(self, db):
        u = np.array([0.45, 0.55])
        session = db.session(u)
        for row in (0, 63, 64, 1234, 2999):
            assert db.score_of(u, row, session=session) == pytest.approx(
                db.score_of(u, row)
            )

    def test_empty_and_degenerate(self, db):
        u = np.array([1.0, 0.0])
        assert db.topk(u, 0, 0, 100) == []
        assert db.topk(u, 5, 500, 400) == []
        assert db.topk(u, 5, -10, -1) == []

    def test_pages_counted(self, db):
        db.reset_io(cold=True)
        db.topk(np.array([0.9, 0.1]), 5, 0, 2999)
        stats = db.io_stats()
        assert stats["logical_reads"] > 0
        assert stats["physical_reads"] > 0


class TestStoredProcedures:
    @pytest.fixture(scope="class")
    def db(self):
        rng = np.random.default_rng(4)
        data = Dataset(rng.random((4000, 2)), name="proc-test")
        db = MiniDB(data, buffer_pages=16, block_rows=64)
        yield db
        db.close()

    @pytest.mark.parametrize("k,tau", [(1, 100), (5, 400), (10, 2000)])
    def test_procedures_match_oracle(self, db, k, tau):
        u = np.array([0.6, 0.4])
        scores = db.dataset.values @ u
        expected = brute_force_durable_topk(scores, k, 1000, 3999, tau)
        hop = t_hop_procedure(db, u, k, tau, 1000, 3999)
        base = t_base_procedure(db, u, k, tau, 1000, 3999)
        assert hop.ids == expected
        assert base.ids == expected

    def test_hop_reads_fewer_pages_on_selective_query(self, db):
        u = np.array([0.5, 0.5])
        hop = t_hop_procedure(db, u, 5, 2000, 0, 3999)
        base = t_base_procedure(db, u, 5, 2000, 0, 3999)
        assert hop.logical_reads < base.logical_reads

    def test_report_dict(self, db):
        u = np.array([0.5, 0.5])
        rep = t_hop_procedure(db, u, 2, 500, 1000, 2000)
        d = rep.as_dict()
        assert d["algorithm"] == "t-hop"
        assert d["answer_size"] == len(rep.ids)
        assert d["physical_reads"] >= 0

    @pytest.mark.parametrize("proc", [t_hop_procedure, t_base_procedure])
    def test_empty_interval_returns_empty_report(self, db, proc):
        """``lo > hi`` answers with an empty report, like the in-memory
        engine's empty-window semantics — not an error."""
        rep = proc(db, np.array([1.0, 0.0]), 1, 10, 100, 50)
        assert rep.ids == []
        assert rep.topk_queries == 0
        assert rep.logical_reads == 0 and rep.physical_reads == 0

    @pytest.mark.parametrize("proc", [t_hop_procedure, t_base_procedure])
    def test_interval_beyond_data_is_empty(self, db, proc):
        rep = proc(db, np.array([1.0, 0.0]), 2, 10, 4000, 5000)
        assert rep.ids == []

    @pytest.mark.parametrize("proc", [t_hop_procedure, t_base_procedure])
    @pytest.mark.parametrize("k,tau", [(0, 10), (-1, 10), (3, -1)])
    def test_unsatisfiable_parameters_rejected(self, db, proc, k, tau):
        with pytest.raises(ValueError):
            proc(db, np.array([1.0, 0.0]), k, tau, 0, 100)

    @pytest.mark.parametrize("proc", [t_hop_procedure, t_base_procedure])
    def test_tau_zero_makes_every_record_durable(self, db, proc):
        """With ``tau = 0`` every window holds only its own record."""
        u = np.array([0.3, 0.7])
        scores = db.dataset.values @ u
        expected = brute_force_durable_topk(scores, 3, 3900, 3999, 0)
        rep = proc(db, u, 3, 0, 3900, 3999)
        assert rep.ids == expected == list(range(3900, 4000))

    def test_storage_accounting(self, db):
        assert db.storage_pages() > 0
        assert db.storage_bytes() == db.storage_pages() * db.pager.page_size
        assert db.n == 4000
