"""Tests for the concurrent serving layer (`repro.service`).

The headline test is concurrency equivalence: N client threads hammering
mixed preferences through the service must produce results byte-identical
to serial execution — ids *and* statistics, including the MiniDB page
accounting (possible because session cache hits replay their page reads
and the procedures scope upper-bound caches per invocation).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine, durable_topk
from repro.core.session import QuerySession
from repro.minidb import MiniDB, t_base_procedure, t_hop_procedure
from repro.scoring import LinearPreference
from repro.service import (
    DurableTopKService,
    EngineBackend,
    LockedEngineService,
    MetricsCollector,
    MiniDBBackend,
    QueryRequest,
    QueryResponse,
    RejectionReason,
    SessionPool,
    WorkloadGenerator,
    WorkloadSpec,
    percentile,
    preference_key,
    run_closed_loop,
    run_open_loop,
    run_pipelined,
    zipfian_probabilities,
)


# ----------------------------------------------------------------------
# Concurrency equivalence (the satellite requirement)
# ----------------------------------------------------------------------
class TestConcurrencyEquivalence:
    def test_engine_backend_matches_serial(self, small_ind):
        """Concurrent mixed-preference traffic == serial durable_topk."""
        spec = WorkloadSpec(
            n_preferences=10,
            d=small_ind.d,
            k_choices=(3, 5, 10),
            tau_fractions=(0.05, 0.15),
            interval_fractions=(0.3, 0.8),
            algorithms=("t-hop", "s-hop", "t-base"),
            future_fraction=0.25,
            seed=11,
        )
        stream = WorkloadGenerator(spec, small_ind.n).requests(80)
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=6, pool_capacity=10
        ) as service:
            responses = run_closed_loop(service.query, stream, clients=8)
        for request, response in zip(stream, responses):
            assert response.ok
            expected = durable_topk(
                small_ind,
                request.scorer,
                request.k,
                request.tau,
                interval=request.interval,
                direction=request.direction,
                algorithm=request.algorithm,
            )
            assert response.result.ids == expected.ids
            assert response.result.stats.as_dict() == expected.stats.as_dict()

    def test_minidb_backend_matches_serial_including_pages(self, small_ind):
        """MiniDB responses carry serial page counts, even served warm."""
        spec = WorkloadSpec(
            n_preferences=6,
            d=small_ind.d,
            k_choices=(3, 5),
            tau_fractions=(0.05, 0.15),
            interval_fractions=(0.3, 0.6),
            algorithms=("t-hop", "t-base"),
            seed=13,
        )
        stream = WorkloadGenerator(spec, small_ind.n).requests(48)
        procedures = {"t-hop": t_hop_procedure, "t-base": t_base_procedure}
        with MiniDB(small_ind, buffer_pages=16, block_rows=64) as db:
            with DurableTopKService(
                MiniDBBackend(db), workers=4, pool_capacity=6
            ) as service:
                responses = run_closed_loop(service.query, stream, clients=6)
                assert service.metrics.snapshot().pool_hit_rate > 0.5
            for request, response in zip(stream, responses):
                assert response.ok
                lo, hi = request.interval
                expected = procedures[request.algorithm](
                    db, request.scorer.u, request.k, request.tau, lo, hi, cold=True
                )
                assert response.result.ids == expected.ids
                assert response.result.extra["topk_queries"] == expected.topk_queries
                assert response.result.extra["logical_reads"] == expected.logical_reads
                assert (
                    response.result.extra["physical_reads"] == expected.physical_reads
                )
                assert response.result.stats.pages_read == expected.logical_reads

    def test_pipelined_driver_equivalent_too(self, small_ind):
        """Deep queues + batching change nothing about the answers."""
        spec = WorkloadSpec(
            n_preferences=4, d=small_ind.d, algorithms=("t-hop",), seed=17
        )
        stream = WorkloadGenerator(spec, small_ind.n).requests(60)
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)),
            workers=3,
            max_batch=8,
            pool_capacity=4,
        ) as service:
            responses = run_pipelined(service.submit, stream, clients=5)
        batched = [r for r in responses if r.batch_size > 1]
        assert batched, "pipelined driving should produce at least one real batch"
        for request, response in zip(stream, responses):
            expected = durable_topk(
                small_ind,
                request.scorer,
                request.k,
                request.tau,
                interval=request.interval,
                algorithm=request.algorithm,
            )
            assert response.result.ids == expected.ids

    def test_concurrent_first_touch_builds_once(self, small_ind):
        """Hammering one cold preference from many threads builds one index."""
        engine = DurableTopKEngine(small_ind)
        builds = 0
        build_lock = threading.Lock()

        import repro.core.engine as engine_module

        real_build = engine_module.build_topk_index

        def counting_build(*args, **kwargs):
            nonlocal builds
            with build_lock:
                builds += 1
            return real_build(*args, **kwargs)

        engine_module.build_topk_index = counting_build
        try:
            scorer = LinearPreference([0.5, 0.5])
            barrier = threading.Barrier(6)
            results = []

            def hammer():
                barrier.wait()
                results.append(engine._bound_index(scorer))

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            engine_module.build_topk_index = real_build
        assert builds == 1
        assert all(r is results[0] for r in results)


# ----------------------------------------------------------------------
# Admission control and lifecycle
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def _request(self, scorer, **kw):
        return QueryRequest(scorer=scorer, k=3, tau=20, algorithm="t-hop", **kw)

    def test_queue_full_rejection(self, small_ind, linear_2d):
        backend = EngineBackend(DurableTopKEngine(small_ind))
        service = DurableTopKService(backend, workers=1, max_queue=2)
        # Stall the single worker with a slow batch so the queue backs up.
        gate = threading.Event()
        original_execute_batch = backend.execute_batch

        def slow_execute_batch(session, requests):
            gate.wait(timeout=10)
            return original_execute_batch(session, requests)

        backend.execute_batch = slow_execute_batch
        try:
            # Structurally distinct requests (tau varies): identical ones
            # would ride the first one's flight via cross-batch
            # single-flight instead of occupying queue slots.
            futures = [
                QueryRequest(scorer=linear_2d, k=3, tau=20 + i, algorithm="t-hop")
                for i in range(8)
            ]
            futures = [service.submit(r) for r in futures]
            gate.set()
            responses = [f.result() for f in futures]
        finally:
            service.close()
        rejected = [r for r in responses if not r.ok]
        served = [r for r in responses if r.ok]
        assert rejected, "overflowing a 2-slot queue must reject"
        assert all(
            r.error.reason is RejectionReason.QUEUE_FULL for r in rejected
        )
        assert served, "admitted requests must still be answered"
        snap = service.metrics.snapshot()
        assert snap.completed == len(served), "rejections must not count as completed"
        assert snap.rejected_total == len(rejected)

    def test_timeout_rejection(self, small_ind, linear_2d):
        backend = EngineBackend(DurableTopKEngine(small_ind))
        service = DurableTopKService(backend, workers=1)
        gate = threading.Event()
        original_execute_batch = backend.execute_batch

        def slow_execute_batch(session, requests):
            gate.wait(timeout=10)
            return original_execute_batch(session, requests)

        backend.execute_batch = slow_execute_batch
        try:
            blocker = service.submit(self._request(linear_2d))
            time.sleep(0.05)  # the worker takes the blocker's batch and stalls
            # A different structure (tau) so it queues behind the blocker
            # instead of joining its flight (a flight follower would be
            # served from the leader's answer, never timeout-rejected).
            expired = service.submit(
                QueryRequest(
                    scorer=linear_2d, k=3, tau=21, algorithm="t-hop", timeout=0.01
                )
            )
            time.sleep(0.05)
            gate.set()
            assert blocker.result().ok
            response = expired.result()
        finally:
            service.close()
        assert not response.ok
        assert response.error.reason is RejectionReason.TIMEOUT

    def test_single_flight_coalesces_identical_queries(self, small_ind, linear_2d):
        """Identical in-flight queries execute once; every waiter answers.

        A blocker stalls the lone worker so six byte-identical requests
        pile into one batch behind it; single-flight must hand all six
        the one answer (as independent result objects) while the backend
        sees exactly one query per execute_batch call."""
        backend = EngineBackend(DurableTopKEngine(small_ind))
        service = DurableTopKService(backend, workers=1, max_batch=16)
        gate = threading.Event()
        executed: list[int] = []
        original_execute_batch = backend.execute_batch

        def gated_execute_batch(session, requests):
            gate.wait(timeout=10)
            executed.append(len(requests))
            return original_execute_batch(session, requests)

        backend.execute_batch = gated_execute_batch
        try:
            blocker = service.submit(self._request(linear_2d))
            time.sleep(0.05)  # let the worker take the blocker's batch
            twins = [service.submit(self._request(linear_2d)) for _ in range(6)]
            gate.set()
            responses = [f.result(timeout=10) for f in twins]
            assert blocker.result(timeout=10).ok
        finally:
            service.close()
        assert all(r.ok for r in responses)
        first = responses[0].result
        for response in responses[1:]:
            assert response.result.ids == first.ids
            assert response.result.stats.as_dict() == first.stats.as_dict()
            assert response.result is not first  # an independent copy
        # Every backend call saw exactly one unique query...
        assert executed and all(count == 1 for count in executed)
        # ...and at least the five trailing twins rode the leader's answer.
        assert service.metrics.snapshot().coalesced >= 5

    def test_unbuildable_session_fails_futures_not_workers(self, small_ind, linear_2d):
        """A scorer the backend cannot open a session for (wrong d) must
        surface on the request's future — and the worker must survive to
        serve the next request (regression: the factory exception used to
        kill the worker thread and hang the future forever)."""
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=1
        ) as service:
            bad = service.submit(
                QueryRequest(scorer=LinearPreference([1.0]), k=3, tau=10)
            )
            with pytest.raises(ValueError, match="weights but data"):
                bad.result(timeout=10)
            good = service.query(self._request(linear_2d))
            assert good.ok

    def test_shutdown_rejects_new_submits(self, small_ind, linear_2d):
        service = DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=1
        )
        service.close()
        response = service.submit(self._request(linear_2d)).result()
        assert response.error.reason is RejectionReason.SHUTDOWN
        metrics = service.metrics.snapshot()
        assert metrics.rejected[RejectionReason.SHUTDOWN.value] == 1

    def test_close_is_idempotent_and_drains(self, small_ind, linear_2d):
        service = DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=2
        )
        futures = [service.submit(self._request(linear_2d)) for _ in range(10)]
        service.close()
        service.close()
        assert all(f.result().ok for f in futures)


# ----------------------------------------------------------------------
# Session pool
# ----------------------------------------------------------------------
class TestSessionPool:
    def test_hit_miss_and_eviction_closes(self):
        pool = SessionPool(capacity=2)
        made = []

        def factory():
            made.append(QuerySession(np.array([1.0])))
            return made[-1]

        s1, hit = pool.checkout("a", factory)
        assert not hit
        pool.checkin("a", s1)
        s1_again, hit = pool.checkout("a", factory)
        assert hit and s1_again is s1
        pool.checkin("a", s1_again)
        for key in ("b", "c"):  # overflow capacity 2 -> evict LRU ("a")
            s, _ = pool.checkout(key, factory)
            pool.checkin(key, s)
        assert s1.closed
        assert pool.evictions == 1
        assert len(pool) == 2
        assert 0 < pool.hit_rate < 1

    def test_close_closes_idle_sessions(self):
        pool = SessionPool(capacity=4)
        session = QuerySession()
        pool.checkin("k", session)
        pool.close()
        assert session.closed
        with pytest.raises(RuntimeError):
            pool.checkout("k", QuerySession)


# ----------------------------------------------------------------------
# Sessions as context managers (satellite)
# ----------------------------------------------------------------------
class TestSessionContextManagers:
    def test_engine_session_context_manager(self, small_ind, linear_2d):
        engine = DurableTopKEngine(small_ind)
        with engine.session(linear_2d) as session:
            result = session.query(
                QueryRequest(scorer=linear_2d, k=3, tau=10).as_query(),
                algorithm="t-hop",
            )
            assert result.ids
        assert session.closed
        with pytest.raises(RuntimeError):
            session.query(
                QueryRequest(scorer=linear_2d, k=3, tau=10).as_query(),
                algorithm="t-hop",
            )
        with pytest.raises(RuntimeError):
            session.__enter__()

    def test_minidb_session_context_manager(self, small_ind):
        u = np.array([0.4, 0.6])
        with MiniDB(small_ind) as db:
            with db.session(u) as session:
                ids = db.topk(u, 5, 0, small_ind.n - 1, session=session)
                assert len(ids) == 5
                assert session.points  # caches populated
            assert session.closed and not session.points
            with pytest.raises(RuntimeError):
                t_hop_procedure(db, u, 3, 10, session=session)

    def test_close_is_idempotent(self):
        session = QuerySession(np.array([1.0, 2.0]))
        session.close()
        session.close()
        assert session.closed


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------
class TestWorkload:
    def test_zipfian_probabilities(self):
        p = zipfian_probabilities(10, 1.0)
        assert p.shape == (10,)
        assert p[0] > p[-1]
        assert np.isclose(p.sum(), 1.0)
        with pytest.raises(ValueError):
            zipfian_probabilities(0)

    def test_generator_is_deterministic_and_in_bounds(self):
        spec = WorkloadSpec(n_preferences=5, d=3, seed=42)
        a = WorkloadGenerator(spec, 1000).requests(50)
        b = WorkloadGenerator(spec, 1000).requests(50)
        for ra, rb in zip(a, b):
            assert ra.k == rb.k and ra.tau == rb.tau and ra.interval == rb.interval
            assert preference_key(ra.scorer) == preference_key(rb.scorer)
            lo, hi = ra.interval
            assert 0 <= lo <= hi < 1000
            assert ra.k >= 1 and ra.tau >= 1

    def test_generator_reuses_scorer_objects(self):
        gen = WorkloadGenerator(WorkloadSpec(n_preferences=3, seed=1), 500)
        keys = {preference_key(r.scorer) for r in gen.requests(60)}
        assert keys <= {preference_key(s) for s in gen.scorers}

    def test_open_loop_driver(self, small_ind):
        spec = WorkloadSpec(n_preferences=3, d=small_ind.d, algorithms=("t-hop",), seed=3)
        stream = WorkloadGenerator(spec, small_ind.n).requests(20)
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=2, pool_capacity=4
        ) as service:
            responses = run_open_loop(service.submit, stream, rate=2000.0, seed=3)
        assert len(responses) == 20
        assert all(r.ok for r in responses)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_percentile_matches_numpy(self):
        rng = np.random.default_rng(0)
        samples = list(rng.random(101))
        for q in (50, 95, 99):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q))
            )
        assert percentile([], 95) == 0.0
        assert percentile([3.0], 99) == 3.0

    def test_percentile_small_samples_interpolate(self):
        """p99 of <100 samples must interpolate, not return the max.

        Nearest-rank percentile degrades on small sample sets: any
        q > 100 * (n-1)/n lands on the maximum, so every short smoke
        run would report p99 == worst-case latency. Linear interpolation
        (numpy's default) is the contract."""
        rng = np.random.default_rng(7)
        for size in (5, 20, 50, 99):
            samples = list(rng.random(size) * 100.0)
            for q in (90, 95, 99):
                expected = float(np.percentile(samples, q))
                got = percentile(samples, q)
                assert got == pytest.approx(expected), (size, q)
            assert percentile(samples, 99) < max(samples)
            assert percentile(samples, 0) == min(samples)
            assert percentile(samples, 100) == max(samples)

    def test_percentile_clamps_out_of_range_q(self):
        samples = [1.0, 2.0, 3.0]
        assert percentile(samples, -5) == 1.0
        assert percentile(samples, 250) == 3.0

    def test_collector_accumulates_shard_fanout_from_extras(self, linear_2d):
        from repro.core.query import DurableTopKResult

        metrics = MetricsCollector()
        request = QueryRequest(scorer=linear_2d, k=3, tau=10)
        for shards in ([0], [0, 1], [1, 2], [0, 1]):
            result = DurableTopKResult(
                ids=[],
                query=request.as_query(),
                algorithm="t-hop",
                extra={"shards": shards, "shard_fanout": len(shards)},
            )
            metrics.record_response(
                QueryResponse(request=request, result=result, total_seconds=0.001)
            )
        snap = metrics.snapshot()
        assert snap.fanout == {1: 1, 2: 3}
        assert snap.shard_queries == {0: 3, 1: 3, 2: 1}
        assert snap.mean_fanout == pytest.approx(7 / 4)
        assert snap.as_dict()["mean_fanout"] == pytest.approx(1.75)

    def test_snapshot_and_report(self, small_ind, linear_2d):
        metrics = MetricsCollector()
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=2, metrics=metrics
        ) as service:
            for _ in range(5):
                assert service.query(
                    QueryRequest(scorer=linear_2d, k=3, tau=15, algorithm="t-hop")
                ).ok
            snap = metrics.snapshot()
        assert snap.submitted == snap.completed == 5
        assert snap.rejected_total == 0
        assert snap.throughput > 0
        assert snap.latency_p99 >= snap.latency_p95 >= snap.latency_p50 > 0
        report = snap.report("test")
        assert "p95" in report and "hit rate" in report
        assert snap.as_dict()["latency_ms"]["p95"] >= 0

    def test_locked_baseline_shares_surface(self, small_ind, linear_2d):
        with LockedEngineService(DurableTopKEngine(small_ind)) as naive:
            response = naive.query(
                QueryRequest(scorer=linear_2d, k=3, tau=15, algorithm="t-hop")
            )
            assert response.ok and response.result.ids
            assert naive.metrics.snapshot().completed == 1
