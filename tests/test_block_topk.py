"""Tests for the appendable block-decomposition top-k index."""

import numpy as np
import pytest

from repro.core.reference import brute_force_topk
from repro.index.block_topk import BlockTopKIndex


class TestConstruction:
    def test_empty(self):
        index = BlockTopKIndex()
        assert index.n == 0
        assert index.top1(0, 10) is None
        assert index.topk(3, 0, 10) == []

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockTopKIndex(block_size=0)

    def test_nan_rejected(self):
        index = BlockTopKIndex()
        with pytest.raises(ValueError):
            index.append(float("nan"))

    def test_append_returns_ids(self):
        index = BlockTopKIndex()
        assert [index.append(s) for s in (1.0, 2.0, 3.0)] == [0, 1, 2]
        assert index.score(1) == 2.0


class TestQueries:
    @pytest.mark.parametrize("block_size", [1, 3, 8, 64, 1000])
    def test_matches_brute_force(self, block_size):
        rng = np.random.default_rng(block_size)
        scores = rng.random(500)
        index = BlockTopKIndex(scores, block_size=block_size)
        for _ in range(120):
            lo, hi = sorted(rng.integers(0, 500, 2))
            k = int(rng.integers(1, 12))
            assert index.topk(k, int(lo), int(hi)) == brute_force_topk(
                scores, k, int(lo), int(hi)
            ), (block_size, lo, hi, k)

    def test_ties_canonical_order(self):
        scores = np.array([5.0, 5.0, 1.0, 5.0])
        index = BlockTopKIndex(scores, block_size=2)
        assert index.topk(3, 0, 3) == [3, 1, 0]

    def test_matches_brute_force_with_heavy_ties(self):
        rng = np.random.default_rng(5)
        scores = rng.integers(0, 4, 300).astype(float)
        index = BlockTopKIndex(scores, block_size=16)
        for _ in range(100):
            lo, hi = sorted(rng.integers(0, 300, 2))
            k = int(rng.integers(1, 8))
            assert index.topk(k, int(lo), int(hi)) == brute_force_topk(
                scores, k, int(lo), int(hi)
            )

    def test_clamping(self):
        index = BlockTopKIndex([1.0, 2.0], block_size=4)
        assert index.topk(5, -10, 50) == [1, 0]
        assert index.top1(5, 9) is None


class TestAppendInteraction:
    def test_queries_after_appends(self):
        rng = np.random.default_rng(6)
        index = BlockTopKIndex(block_size=8)
        scores: list[float] = []
        for i in range(300):
            s = float(rng.random())
            index.append(s)
            scores.append(s)
            if i % 37 == 0:
                arr = np.array(scores)
                lo = max(0, i - 50)
                assert index.topk(5, lo, i) == brute_force_topk(arr, 5, lo, i)

    def test_block_max_consistency_under_growth(self):
        index = BlockTopKIndex(block_size=4)
        for s in (1.0, 9.0, 2.0, 3.0, 8.0):
            index.append(s)
        assert index.top1(0, 4) == 1
        assert index.top1(4, 4) == 4


class TestAsDurableBuildingBlock:
    def test_thop_over_block_index(self):
        """The block index can replace the segment-tree block wholesale."""
        from repro.core.algorithms.base import AlgorithmContext, get_algorithm
        from repro.core.query import QueryStats
        from repro.core.record import Dataset
        from repro.core.reference import brute_force_durable_topk
        from repro.index.topk import CountingTopKIndex
        from repro.scoring import LinearPreference

        rng = np.random.default_rng(7)
        values = rng.random((400, 2))
        data = Dataset(values)
        scorer = LinearPreference([0.4, 0.6])
        scores = scorer.scores(values)
        stats = QueryStats()
        index = CountingTopKIndex(BlockTopKIndex(scores, block_size=32), stats)
        ctx = AlgorithmContext(
            dataset=data, index=index, scorer=scorer, k=3, tau=50, lo=0, hi=399, stats=stats
        )
        ids = get_algorithm("t-hop").run(ctx)
        assert ids == brute_force_durable_topk(scores, 3, 0, 399, 50)
