"""Tests for the semantic answer cache (`repro.cache`).

The headline property is the one that makes a cache admissible at all:
a cached service must be *indistinguishable* from an uncached one —
every served answer byte-identical (ids, durations, stats) to a fresh
recompute, at every epoch of a live, randomly interleaved ingest
schedule. Everything else (LRU bounds, admission estimates, tier
counters, single-flight fates) is mechanism in service of that.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.cache import InFlightRegistry, SemanticAnswerCache, WindowMemo
from repro.core.engine import DurableTopKEngine
from repro.core.query import DurableTopKResult
from repro.ingest import LiveDataset
from repro.obs import MetricsRegistry
from repro.scoring import LinearPreference
from repro.service import (
    DurableTopKService,
    EngineBackend,
    LiveBackend,
    MetricsCollector,
    QueryRequest,
    SessionPool,
    WorkloadGenerator,
    WorkloadSpec,
)


# ----------------------------------------------------------------------
# WindowMemo: the seeded tier
# ----------------------------------------------------------------------
class FakeIndex:
    """Scores == ids; counts every call so memo hits are observable."""

    def __init__(self, n: int = 100) -> None:
        self._n = n
        self.topk_calls = 0
        self.top1_calls = 0
        self.batch_calls = 0

    @property
    def n(self) -> int:
        return self._n

    def score(self, record_id: int) -> float:
        return float(record_id)

    def top1(self, lo: int, hi: int) -> int | None:
        self.top1_calls += 1
        hi = min(hi, self._n - 1)
        return hi if hi >= lo else None

    def topk(self, k: int, lo: int, hi: int) -> list[int]:
        self.topk_calls += 1
        hi = min(hi, self._n - 1)
        return list(range(hi, max(lo, hi - k + 1) - 1, -1))

    def topk_batch(self, k: int, windows) -> list[list[int]]:
        self.batch_calls += 1
        return [self.topk(k, lo, hi) for lo, hi in windows]


class TestWindowMemo:
    def test_memoises_and_delegates(self):
        inner = FakeIndex()
        memo = WindowMemo().bind(inner, version=0)
        assert memo.n == inner.n
        assert memo.score(7) == 7.0
        first = memo.topk(3, 10, 20)
        again = memo.topk(3, 10, 20)
        assert first == again == inner.topk(3, 10, 20)
        assert inner.topk_calls == 2  # one memoised call + the direct call
        assert memo.top1(0, 50) == memo.top1(0, 50) == 50
        assert inner.top1_calls == 1
        assert memo.hits == 2

    def test_rebind_same_version_seeds_across_batches(self):
        inner = FakeIndex()
        memo = WindowMemo().bind(inner, version=5)
        memo.topk(3, 10, 20)
        assert memo.seeds == 0
        memo.bind(inner, version=5)  # next batch, same epoch
        memo.topk(3, 10, 20)  # cross-batch reuse: a seed
        memo.topk(3, 10, 20)  # same batch again: a plain hit
        assert memo.seeds == 1
        assert memo.hits == 2
        assert inner.topk_calls == 1

    def test_rebind_new_version_invalidates_everything(self):
        inner = FakeIndex()
        memo = WindowMemo().bind(inner, version=1)
        memo.topk(3, 10, 20)
        memo.top1(0, 50)
        assert memo.entries == 2
        memo.bind(FakeIndex(), version=2)
        assert memo.entries == 0
        assert memo.invalidations == 1
        memo.topk(3, 10, 20)
        assert memo.seeds == 0  # nothing survives an epoch change

    def test_clear_empties_but_keeps_binding(self):
        inner = FakeIndex()
        memo = WindowMemo().bind(inner, version=3)
        memo.topk(2, 0, 10)
        memo.clear()
        assert memo.entries == 0
        assert memo.topk(2, 0, 10) == inner.topk(2, 0, 10)  # still usable

    def test_lru_bound(self):
        memo = WindowMemo(max_entries=4).bind(FakeIndex(), version=0)
        for lo in range(6):
            memo.topk(2, lo, lo + 10)
        assert len(memo._topk) == 4
        assert memo.evictions == 2

    def test_prime_skips_memoised_windows(self):
        inner = FakeIndex()
        memo = WindowMemo().bind(inner, version=0)
        direct = memo.topk(3, 10, 20)
        calls_before = inner.topk_calls
        memo.prime(3, [(10, 20), (30, 40)])
        assert inner.batch_calls == 1
        assert inner.topk_calls == calls_before + 1  # only the fresh window
        assert memo.topk(3, 10, 20) == direct
        assert memo.topk(3, 30, 40) == inner.topk(3, 30, 40)


# ----------------------------------------------------------------------
# SemanticAnswerCache: the exact tier
# ----------------------------------------------------------------------
def _request(k=3, tau=10, interval=(0, 99), algorithm="t-hop", weights=(0.7, 0.3)):
    return QueryRequest(
        scorer=LinearPreference(list(weights)),
        k=k,
        tau=tau,
        interval=interval,
        algorithm=algorithm,
    )


def _result(request, ids):
    return DurableTopKResult(
        ids=list(ids), query=request.as_query(), algorithm=request.algorithm
    )


class TestSemanticAnswerCache:
    def test_hit_is_an_independent_clone(self):
        cache = SemanticAnswerCache(registry=MetricsRegistry())
        request = _request()
        assert cache.get(request, version=0) is None
        assert cache.put(request, 0, _result(request, [1, 2, 3]))
        served = cache.get(request, version=0)
        assert served.ids == [1, 2, 3]
        served.ids.append(99)  # a caller mutating its response...
        assert cache.get(request, version=0).ids == [1, 2, 3]  # ...changes nothing
        assert cache.hits == 2 and cache.misses == 1

    def test_every_structural_field_is_part_of_the_key(self):
        cache = SemanticAnswerCache(registry=MetricsRegistry())
        base = _request()
        cache.put(base, 0, _result(base, [1]))
        variants = [
            (base, 1),  # another epoch
            (_request(k=5), 0),
            (_request(tau=11), 0),
            (_request(interval=(0, 98)), 0),
            (_request(algorithm="t-base"), 0),
            (_request(weights=(0.5, 0.5)), 0),
        ]
        for request, version in variants:
            assert cache.get(request, version) is None
        assert cache.get(base, 0) is not None
        # Preference identity is the weight content, not the object.
        twin = _request()
        assert twin.scorer is not base.scorer
        assert cache.get(twin, 0).ids == [1]

    def test_byte_lru_eviction(self):
        registry = MetricsRegistry()
        # ~148 bytes/entry (120 overhead + 8 * 3-4 ids): room for ~3.
        cache = SemanticAnswerCache(
            capacity_bytes=3 * 152, max_entry_bytes=1000, registry=registry
        )
        requests = [_request(tau=10 + i) for i in range(5)]
        for i, request in enumerate(requests):
            cache.put(request, 0, _result(request, range(i + 1)))
        assert cache.evictions > 0
        assert cache.bytes <= cache.capacity_bytes
        assert cache.get(requests[0], 0) is None  # coldest went first
        assert cache.get(requests[-1], 0) is not None
        assert registry.counter("cache.evictions").value == cache.evictions
        assert registry.gauge("cache.bytes").value == cache.bytes

    def test_admission_refuses_oversized_answers(self):
        cache = SemanticAnswerCache(
            capacity_bytes=10_000, max_entry_bytes=200, registry=MetricsRegistry()
        )
        # Lemma 4 estimate k|I|/(tau+1): 10 * 10_000 / 2 = 50_000 ids.
        huge = _request(k=10, tau=1, interval=(0, 9_999))
        assert not cache.put(huge, 0, _result(huge, [1]))
        assert cache.admission_rejected == 1
        assert len(cache) == 0
        # The estimate alone decides: a small actual answer is still refused.
        assert cache.estimate_bytes(huge) > cache.max_entry_bytes

    def test_stats_shape(self):
        cache = SemanticAnswerCache(registry=MetricsRegistry())
        request = _request()
        cache.put(request, 0, _result(request, [4]))
        cache.get(request, 0)
        cache.get(request, 1)
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["fills"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["bytes"] == cache.bytes > 0


# ----------------------------------------------------------------------
# InFlightRegistry: cross-batch single-flight membership
# ----------------------------------------------------------------------
class TestInFlightRegistry:
    def test_open_join_settle(self):
        registry = InFlightRegistry()
        assert not registry.join("key", "early")  # nothing open yet
        flight = registry.open("key")
        assert flight is not None
        assert registry.open("key") is None  # one leader per key
        assert registry.join("key", "a") and registry.join("key", "b")
        assert registry.settle(flight) == ["a", "b"]
        assert len(registry) == 0
        assert not registry.join("key", "late")  # settled flights are gone

    def test_drain_sweeps_everything(self):
        registry = InFlightRegistry()
        f1, f2 = registry.open("x"), registry.open("y")
        registry.join("y", "w")
        drained = dict(
            (flight.key, followers) for flight, followers in registry.drain()
        )
        assert drained == {"x": [], "y": ["w"]}
        assert registry.settle(f1) == [] and registry.settle(f2) == []


# ----------------------------------------------------------------------
# Service integration: exact tier, in-flight tier, metrics
# ----------------------------------------------------------------------
class GatedBackend(EngineBackend):
    """EngineBackend whose executions block until released."""

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self.gate = threading.Event()
        self.executing = threading.Event()

    def execute_batch(self, session, requests):
        self.executing.set()
        self.gate.wait(timeout=10)
        return super().execute_batch(session, requests)


class TestServiceIntegration:
    def test_exact_hit_skips_the_queue(self, small_ind, linear_2d):
        cache = SemanticAnswerCache()
        request = QueryRequest(
            scorer=linear_2d, k=3, tau=30, interval=(0, 400), algorithm="t-hop"
        )
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=2, cache=cache
        ) as service:
            cold = service.query(request)
            warm = service.query(request)
        assert cold.ok and warm.ok
        assert "cache" not in cold.extra
        assert warm.extra["cache"] == "exact"
        assert warm.batch_size == 0  # never entered a batch
        assert warm.result.ids == cold.result.ids
        assert warm.result.stats.as_dict() == cold.result.stats.as_dict()
        assert warm.result.durations == cold.result.durations
        assert cache.stats()["hits"] == 1

    def test_followers_join_an_open_flight_across_batches(self, small_ind, linear_2d):
        backend = GatedBackend(DurableTopKEngine(small_ind))
        request = QueryRequest(
            scorer=linear_2d, k=3, tau=30, interval=(0, 400), algorithm="t-hop"
        )
        with DurableTopKService(backend, workers=1, max_batch=1) as service:
            leader = service.submit(request)
            assert backend.executing.wait(timeout=10)  # leader is mid-execution
            followers = [service.submit(request) for _ in range(3)]
            backend.gate.set()
            outcomes = [leader.result(timeout=10)] + [
                f.result(timeout=10) for f in followers
            ]
            snapshot = service.metrics.snapshot()
        for response in outcomes:
            assert response.ok
            assert response.result.ids == outcomes[0].result.ids
        assert all(r.extra.get("cache") == "inflight" for r in outcomes[1:])
        assert snapshot.coalesced_inflight == 3
        assert snapshot.coalesced == snapshot.coalesced_batch + 3

    def test_followers_inherit_the_leaders_timeout(self, small_ind, linear_2d):
        """A follower's fate is the leader's: here, a TIMEOUT rejection.

        The leader expires while queued behind a held batch; its joined
        follower (structurally identical, no timeout of its own) must be
        rejected with it rather than hang or silently execute.
        """
        backend = GatedBackend(DurableTopKEngine(small_ind))
        leader_request = QueryRequest(
            scorer=linear_2d,
            k=3,
            tau=30,
            interval=(0, 400),
            algorithm="t-hop",
            timeout=0.05,
        )
        follower_request = QueryRequest(
            scorer=linear_2d, k=3, tau=30, interval=(0, 400), algorithm="t-hop"
        )
        blocker = QueryRequest(
            scorer=linear_2d, k=3, tau=31, interval=(0, 400), algorithm="t-hop"
        )
        with DurableTopKService(backend, workers=1, max_batch=1) as service:
            held = service.submit(blocker)
            assert backend.executing.wait(timeout=10)
            leader = service.submit(leader_request)
            follower = service.submit(follower_request)  # joins the flight
            time.sleep(0.1)  # let the leader's deadline pass while queued
            backend.gate.set()
            assert held.result(timeout=10).ok
            for future in (leader, follower):
                response = future.result(timeout=10)
                assert not response.ok
                assert response.error.reason.value == "timeout"
            assert follower.result().extra.get("cache") == "inflight"

    def test_cache_stats_ride_the_metrics_snapshot(self, small_ind, linear_2d):
        cache = SemanticAnswerCache()
        request = QueryRequest(
            scorer=linear_2d, k=3, tau=30, interval=(0, 400), algorithm="t-hop"
        )
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), workers=2, cache=cache
        ) as service:
            service.query(request)
            service.query(request)
            snapshot = service.metrics.snapshot()
        assert snapshot.extra["cache"]["hits"] == 1
        assert "answer cache: hit rate" in snapshot.report()
        assert snapshot.as_dict()["extra"]["cache"]["entries"] == 1


# ----------------------------------------------------------------------
# Equivalence: cached service == fresh recompute, statically and live
# ----------------------------------------------------------------------
class TestCachedServiceEquivalence:
    def test_static_workload_byte_identical(self, small_ind):
        spec = WorkloadSpec(
            n_preferences=6,
            d=small_ind.d,
            k_choices=(3, 5),
            tau_fractions=(0.05, 0.15),
            interval_fractions=(0.3, 0.6),
            algorithms=("t-hop", "t-base"),
            seed=23,
            shapes_per_preference=4,
            shape_zipf_s=1.2,
        )
        stream = WorkloadGenerator(spec, small_ind.n).requests(120)
        cache = SemanticAnswerCache()
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)),
            workers=3,
            max_batch=8,
            cache=cache,
        ) as service:
            # First pass fills (duplicates ride batches and flights);
            # the second pass hits the now-warm exact tier.
            futures = [service.submit(request) for request in stream]
            responses = [future.result() for future in futures]
            futures = [service.submit(request) for request in stream]
            responses += [future.result() for future in futures]
        assert cache.stats()["hits"] > 0  # the repeats actually hit
        reference = DurableTopKEngine(small_ind)
        for request, response in zip(stream + stream, responses):
            assert response.ok
            expected = reference.query(
                request.as_query(), request.scorer, request.algorithm
            )
            assert response.result.ids == expected.ids
            assert response.result.durations == expected.durations
            assert response.result.stats.as_dict() == expected.stats.as_dict()

    @pytest.mark.parametrize("seed", [31, 32, 33])
    def test_random_ingest_interleaving_never_stale(self, seed):
        """Appends/seals/compactions racing cached queries: every response
        must equal a fresh engine over the frozen prefix its snapshot
        version pins — the cache can shortcut work, never time."""
        rng = np.random.default_rng(seed)
        shadow: list[np.ndarray] = []

        live = LiveDataset(d=2, seal_rows=64, compact_fanout=2)
        first = rng.random((120, 2))
        live.extend(first)
        shadow.extend(first)

        scorers = [LinearPreference(np.abs(rng.normal(size=2)) + 0.1) for _ in range(3)]
        # A small catalogue of shapes that repeat, so exact hits occur
        # between epochs and are then invalidated by the next append.
        catalogue = [
            QueryRequest(
                scorer=scorers[int(rng.integers(len(scorers)))],
                k=int(rng.integers(1, 4)),
                tau=int(rng.integers(2, 40)),
                interval=(int(lo), int(lo + rng.integers(5, 60))),
                algorithm="t-hop" if rng.random() < 0.5 else "t-base",
            )
            for lo in rng.integers(0, 60, size=6)
        ]

        cache = SemanticAnswerCache()
        engines: dict[int, DurableTopKEngine] = {}
        with DurableTopKService(
            LiveBackend(live), workers=2, max_batch=4, cache=cache
        ) as service:
            for _ in range(70):
                op = rng.random()
                if op < 0.30:
                    rows = rng.random((int(rng.integers(1, 30)), 2))
                    live.extend(rows)
                    shadow.extend(rows)
                elif op < 0.40:
                    live.seal()
                elif op < 0.50:
                    live.compact(force=bool(rng.random() < 0.3))
                else:
                    request = catalogue[int(rng.integers(len(catalogue)))]
                    response = service.query(request)
                    assert response.ok
                    n_snap = response.result.extra["snapshot_n"]
                    engine = engines.get(n_snap)
                    if engine is None:
                        from repro.core.record import Dataset

                        engine = engines[n_snap] = DurableTopKEngine(
                            Dataset(np.asarray(shadow[:n_snap]), name=f"pfx-{n_snap}")
                        )
                    expected = engine.query(
                        request.as_query(), request.scorer, request.algorithm
                    )
                    assert response.result.ids == expected.ids, (seed, n_snap)
                    assert response.result.durations == expected.durations
            # With ingest quiesced, a repeat is an exact hit at this epoch.
            repeat = catalogue[0]
            service.query(repeat)
            settled = service.query(repeat)
            assert settled.extra.get("cache") == "exact"
        assert cache.stats()["hits"] > 0
        live.close()


# ----------------------------------------------------------------------
# Satellites: pool sizing/churn, coalesced accounting split
# ----------------------------------------------------------------------
class TestPoolSizing:
    def test_default_capacity_covers_documented_workload(self):
        assert SessionPool().capacity == 128

    def test_stats_expose_churn(self, small_ind, linear_2d):
        pool = SessionPool(capacity=1)
        engine = DurableTopKEngine(small_ind)
        other = LinearPreference([0.2, 0.8])
        for scorer in (linear_2d, other, linear_2d, other):
            session, _ = pool.checkout(
                (tuple(scorer.u),), lambda s=scorer: engine.session(s)
            )
            pool.checkin((tuple(scorer.u),), session)
        stats = pool.stats()
        assert stats["checkins"] == 4
        assert stats["evictions"] == 3  # every swap evicts under capacity 1
        assert stats["churn"] == 0.75
        pool.close()

    def test_service_constructor_exposes_capacity(self, small_ind):
        with DurableTopKService(
            EngineBackend(DurableTopKEngine(small_ind)), pool_capacity=7
        ) as service:
            assert service.pool.capacity == 7


class TestCoalescedAccountingSplit:
    def test_modes_are_counted_separately(self):
        collector = MetricsCollector(registry=MetricsRegistry())
        collector.record_coalesced(2, mode="batch")
        collector.record_coalesced(3, mode="inflight")
        snapshot = collector.snapshot()
        assert snapshot.coalesced_batch == 2
        assert snapshot.coalesced_inflight == 3
        assert snapshot.coalesced == 5
        assert snapshot.as_dict()["coalesced_batch"] == 2
        assert snapshot.as_dict()["coalesced_inflight"] == 3
        assert "5 coalesced (2 batch, 3 in-flight)" in snapshot.report()
