"""Tests for the experiment harness, report formatting, and figure/table
definitions (at toy scale — benchmarks run them at full scale)."""

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine
from repro.core.record import Dataset
from repro.experiments.harness import (
    AlgorithmRow,
    default_parameters,
    run_algorithm_suite,
    run_sweep,
)
from repro.experiments.report import format_series, format_sweep, format_table


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(31)
    return Dataset(rng.random((1_200, 2)), name="harness-test")


class TestDefaults:
    def test_default_parameters(self):
        params = default_parameters(1000)
        assert params["k"] == 10
        assert params["tau"] == 100
        assert params["interval"] == (500, 999)


class TestRunAlgorithmSuite:
    def test_rows_for_each_algorithm(self, dataset):
        rows = run_algorithm_suite(dataset, algorithms=["t-hop", "s-hop"], n_preferences=2)
        assert set(rows) == {"t-hop", "s-hop"}
        for row in rows.values():
            assert isinstance(row, AlgorithmRow)
            assert row.runs == 2
            assert row.mean_ms > 0
            assert row.mean_answer_size > 0

    def test_agreement_enforced(self, dataset, monkeypatch):
        # Sabotage one algorithm: the harness must catch the mismatch.
        from repro.core.algorithms import score_hop

        original = score_hop.ScoreHop.run

        def broken(self, ctx):
            out = original(self, ctx)
            return out[:-1] if out else out

        monkeypatch.setattr(score_hop.ScoreHop, "run", broken)
        with pytest.raises(AssertionError, match="disagreement"):
            run_algorithm_suite(dataset, algorithms=["t-hop", "s-hop"], n_preferences=1)

    def test_row_as_dict(self, dataset):
        rows = run_algorithm_suite(dataset, algorithms=["t-hop"], n_preferences=1)
        d = rows["t-hop"].as_dict()
        assert d["algorithm"] == "t-hop"
        assert "mean_ms" in d and "topk_queries" in d

    def test_engine_reuse(self, dataset):
        engine = DurableTopKEngine(dataset, skyband_k_max=4)
        rows = run_algorithm_suite(
            dataset, algorithms=["t-hop"], n_preferences=1, engine=engine
        )
        assert rows["t-hop"].runs == 1


class TestRunSweep:
    def test_tau_sweep_structure(self, dataset):
        sweep = run_sweep(
            dataset,
            "tau_fraction",
            [0.05, 0.25],
            algorithms=["t-hop", "s-base"],
            n_preferences=1,
        )
        assert sweep.parameter_values() == [0.05, 0.25]
        series = sweep.series("mean_topk_queries")
        assert len(series["t-hop"]) == 2
        # More selective query, fewer top-k queries.
        assert series["t-hop"][1] < series["t-hop"][0]

    def test_k_sweep(self, dataset):
        sweep = run_sweep(dataset, "k", [2, 6], algorithms=["t-hop"], n_preferences=1)
        answers = sweep.series("mean_answer_size")["t-hop"]
        assert answers[1] > answers[0]

    def test_unknown_parameter(self, dataset):
        with pytest.raises(ValueError):
            run_sweep(dataset, "zoom", [1], algorithms=["t-hop"])


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": 22}, {"a": 333, "bb": 4}])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_format_series(self):
        text = format_series("x", [1, 2], {"algo": [0.5, 1.5]}, title="T")
        assert "T" in text
        assert "0.50" in text and "1.50" in text

    def test_format_sweep(self, dataset):
        sweep = run_sweep(dataset, "k", [2], algorithms=["t-hop"], n_preferences=1)
        text = format_sweep(sweep, metric="mean_ms")
        assert "t-hop" in text


class TestFigureDefinitionsToyScale:
    def test_figure8_smoke(self):
        from repro.data import nba_variant, generate_nba
        from repro.experiments.figures import figure8_vary_tau

        data = nba_variant(generate_nba(1_500, seed=1), 2)
        fig = figure8_vary_tau(data, n_preferences=1)
        assert "Figure 8" in fig.report
        assert fig.data["sweep"].parameter_values()

    def test_figure12_smoke(self):
        from repro.experiments.figures import figure12_scalability

        fig = figure12_scalability("ind", sizes=[800, 1_600], n_preferences=1)
        assert "IND" in fig.report

    def test_table6_smoke(self):
        from repro.experiments.tables import table6_dbms_datasets

        fig = table6_dbms_datasets(nba_n=1_500, syn_n=3_000)
        assert "Table VI" in fig.report
        assert len(fig.data["rows"]) == 3
