"""Unit tests for the durable k-skyband duration index."""

import numpy as np
import pytest

from repro.core.record import Dataset
from repro.core.reference import brute_force_durable_topk
from repro.index.kskyband import DurableSkybandIndex, dominator_times
from repro.index.skyline import pareto_dominates
from repro.scoring import LinearPreference


def naive_dominator_times(values, k_max):
    n = len(values)
    out = np.full((n, k_max), -1, dtype=np.int64)
    for i in range(n):
        doms = [j for j in range(i - 1, -1, -1) if pareto_dominates(values[j], values[i])]
        for slot, j in enumerate(doms[:k_max]):
            out[i, slot] = j
    return out


class TestDominatorTimes:
    def test_matches_naive(self):
        rng = np.random.default_rng(31)
        values = rng.random((150, 2))
        assert dominator_times(values, 4).tolist() == naive_dominator_times(values, 4).tolist()

    def test_small_block_sizes_agree(self):
        rng = np.random.default_rng(32)
        values = rng.random((120, 3))
        a = dominator_times(values, 3, block=5)
        b = dominator_times(values, 3, block=1000)
        assert a.tolist() == b.tolist()

    def test_increasing_chain_has_no_dominators(self):
        values = np.array([[float(i), float(i)] for i in range(10)])
        times = dominator_times(values, 2)
        assert (times == -1).all()

    def test_decreasing_chain_all_dominated(self):
        values = np.array([[float(10 - i), float(10 - i)] for i in range(10)])
        times = dominator_times(values, 2)
        # Record i's most recent dominator is i - 1.
        assert times[5, 0] == 4
        assert times[5, 1] == 3
        assert times[0, 0] == -1


class TestDurableSkybandIndex:
    @pytest.fixture(scope="class")
    def dataset(self):
        rng = np.random.default_rng(33)
        return Dataset(rng.random((300, 2)), name="skyband-test")

    @pytest.fixture(scope="class")
    def index(self, dataset):
        return DurableSkybandIndex(dataset, k_max=5)

    def test_kmax_rounded_to_power_of_two(self, index):
        assert index.k_max == 8
        assert index.levels == [1, 2, 4, 8]

    def test_level_for(self, index):
        assert index.level_for(1) == 1
        assert index.level_for(3) == 4
        assert index.level_for(8) == 8
        with pytest.raises(ValueError):
            index.level_for(9)
        with pytest.raises(ValueError):
            index.level_for(0)

    def test_invalid_kmax(self, dataset):
        with pytest.raises(ValueError):
            DurableSkybandIndex(dataset, k_max=0)

    def test_durations_monotone_in_k(self, index):
        # A larger k can only extend a record's stay in the skyband.
        for smaller, larger in ((1, 2), (2, 4), (4, 8)):
            assert (index.durations(larger) >= index.durations(smaller)).all()

    def test_duration_definition(self, dataset, index):
        """tau_p must be the largest tau keeping p in its window k-skyband."""
        values = dataset.values
        k = 2
        tau_table = index.durations(k)
        rng = np.random.default_rng(34)
        for t in rng.integers(1, 300, 25):
            t = int(t)
            tau_p = int(tau_table[t])
            dominators = [
                j for j in range(t - 1, -1, -1) if pareto_dominates(values[j], values[t])
            ]
            if len(dominators) < k:
                assert tau_p == len(dataset)
            else:
                kth = dominators[k - 1]
                assert tau_p == t - kth - 1

    def test_candidates_superset_of_answers(self, dataset, index):
        scorer = LinearPreference([0.5, 0.5])
        scores = scorer.scores(dataset.values)
        for k, tau in ((1, 30), (2, 50), (4, 20)):
            answers = set(brute_force_durable_topk(scores, k, 50, 280, tau))
            candidates = set(index.candidates(k, 50, 280, tau))
            assert answers <= candidates

    def test_candidates_respect_interval(self, index):
        cands = index.candidates(2, 100, 150, 10)
        assert all(100 <= t <= 150 for t in cands)

    def test_candidate_count(self, index):
        assert index.candidate_count(2, 0, 299, 5) == len(index.candidates(2, 0, 299, 5))
