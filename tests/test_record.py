"""Unit tests for the Record/Dataset model."""

import numpy as np
import pytest

from repro.core.record import Dataset, Record


class TestDatasetConstruction:
    def test_basic(self):
        data = Dataset(np.ones((5, 3)), name="x")
        assert data.n == 5
        assert data.d == 3
        assert len(data) == 5
        assert data.attribute_names == ["x0", "x1", "x2"]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            Dataset(np.ones(5))

    def test_rejects_nan(self):
        values = np.ones((3, 2))
        values[1, 0] = np.nan
        with pytest.raises(ValueError):
            Dataset(values)

    def test_rejects_inf(self):
        values = np.ones((3, 2))
        values[2, 1] = np.inf
        with pytest.raises(ValueError):
            Dataset(values)

    def test_length_mismatches(self):
        with pytest.raises(ValueError):
            Dataset(np.ones((3, 2)), timestamps=[1, 2])
        with pytest.raises(ValueError):
            Dataset(np.ones((3, 2)), labels=["a"])
        with pytest.raises(ValueError):
            Dataset(np.ones((3, 2)), attribute_names=["only-one"])

    def test_from_records_sorts_by_timestamp(self):
        rows = [(2010, [1.0]), (1995, [2.0]), (2005, [3.0])]
        data = Dataset.from_records(rows)
        assert data.timestamps == [1995, 2005, 2010]
        assert data.values[:, 0].tolist() == [2.0, 3.0, 1.0]

    def test_from_records_stable_on_ties(self):
        rows = [(2000, [1.0]), (2000, [2.0]), (1999, [3.0])]
        data = Dataset.from_records(rows, labels=["a", "b", "c"])
        assert data.labels == ["c", "a", "b"]


class TestRecordAccess:
    def test_record_fields(self):
        data = Dataset(
            np.array([[1.0, 2.0], [3.0, 4.0]]),
            timestamps=["t0", "t1"],
            labels=["A", "B"],
        )
        rec = data.record(1)
        assert isinstance(rec, Record)
        assert rec.t == 1
        assert rec.values == (3.0, 4.0)
        assert rec[0] == 3.0
        assert rec.d == 2
        assert rec.timestamp == "t1"
        assert rec.label == "B"

    def test_record_out_of_range(self):
        data = Dataset(np.ones((2, 1)))
        with pytest.raises(IndexError):
            data.record(2)
        with pytest.raises(IndexError):
            data.record(-1)

    def test_records_bulk(self):
        data = Dataset(np.arange(10, dtype=float).reshape(5, 2))
        recs = data.records([0, 4])
        assert [r.t for r in recs] == [0, 4]


class TestViews:
    def test_select_attributes_by_index(self):
        data = Dataset(np.arange(12, dtype=float).reshape(4, 3), attribute_names=["a", "b", "c"])
        sub = data.select_attributes([2, 0])
        assert sub.attribute_names == ["c", "a"]
        assert sub.values[:, 0].tolist() == data.values[:, 2].tolist()

    def test_select_attributes_by_name(self):
        data = Dataset(np.arange(12, dtype=float).reshape(4, 3), attribute_names=["a", "b", "c"])
        sub = data.select_attributes(["b"])
        assert sub.d == 1

    def test_select_unknown_name(self):
        data = Dataset(np.ones((2, 2)), attribute_names=["a", "b"])
        with pytest.raises(KeyError):
            data.select_attributes(["z"])

    def test_select_empty(self):
        data = Dataset(np.ones((2, 2)))
        with pytest.raises(ValueError):
            data.select_attributes([])

    def test_prefix(self):
        data = Dataset(np.arange(10, dtype=float).reshape(5, 2))
        assert data.prefix(3).n == 3
        with pytest.raises(ValueError):
            data.prefix(0)
        with pytest.raises(ValueError):
            data.prefix(6)

    def test_reversed_roundtrip(self):
        data = Dataset(np.arange(8, dtype=float).reshape(4, 2), timestamps=[1, 2, 3, 4])
        rev = data.reversed()
        assert rev.values[0].tolist() == data.values[-1].tolist()
        assert rev.timestamps == [4, 3, 2, 1]
        back = rev.reversed()
        assert back.values.tolist() == data.values.tolist()

    def test_reversed_is_cached(self):
        data = Dataset(np.ones((3, 1)))
        assert data.reversed() is data.reversed()


class TestCache:
    def test_cache_roundtrip(self):
        data = Dataset(np.ones((2, 2)))
        assert not data.has_cached("k")
        assert data.get_cached("k") is None
        data.set_cached("k", 42)
        assert data.has_cached("k")
        assert data.get_cached("k") == 42
