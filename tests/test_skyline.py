"""Unit tests for skyline and k-skyband computation."""

import numpy as np
import pytest

from repro.index.skyline import (
    dominator_counts,
    kskyband_indices,
    pareto_dominates,
    skyline_indices,
)


def naive_dominator_counts(points: np.ndarray) -> np.ndarray:
    n = len(points)
    counts = np.zeros(n, dtype=int)
    for i in range(n):
        for j in range(n):
            if i != j and pareto_dominates(points[j], points[i]):
                counts[i] += 1
    return counts


class TestParetoDominates:
    def test_strict_domination(self):
        assert pareto_dominates(np.array([2.0, 2.0]), np.array([1.0, 1.0]))

    def test_weak_domination(self):
        assert pareto_dominates(np.array([2.0, 1.0]), np.array([1.0, 1.0]))

    def test_equal_points_do_not_dominate(self):
        assert not pareto_dominates(np.array([1.0, 1.0]), np.array([1.0, 1.0]))

    def test_incomparable(self):
        assert not pareto_dominates(np.array([2.0, 0.0]), np.array([0.0, 2.0]))
        assert not pareto_dominates(np.array([0.0, 2.0]), np.array([2.0, 0.0]))


class TestSkyline:
    def test_simple_2d(self):
        pts = np.array([[1.0, 4.0], [3.0, 3.0], [2.0, 2.0], [0.5, 0.5]])
        assert skyline_indices(pts).tolist() == [0, 1]

    def test_empty(self):
        assert skyline_indices(np.zeros((0, 2))).tolist() == []

    def test_single_point(self):
        assert skyline_indices(np.array([[1.0, 1.0]])).tolist() == [0]

    def test_all_identical_points_all_kept(self):
        pts = np.ones((5, 2))
        assert skyline_indices(pts).tolist() == [0, 1, 2, 3, 4]

    def test_chain_keeps_only_top(self):
        pts = np.array([[float(i), float(i)] for i in range(10)])
        assert skyline_indices(pts).tolist() == [9]

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            skyline_indices(np.array([1.0, 2.0]))

    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_matches_naive_random(self, d):
        rng = np.random.default_rng(d)
        pts = rng.random((120, d))
        expected = np.nonzero(naive_dominator_counts(pts) == 0)[0]
        assert skyline_indices(pts).tolist() == expected.tolist()

    def test_2d_with_ties_matches_naive(self):
        rng = np.random.default_rng(8)
        pts = rng.integers(0, 5, (100, 2)).astype(float)
        expected = np.nonzero(naive_dominator_counts(pts) == 0)[0]
        assert skyline_indices(pts).tolist() == expected.tolist()


class TestKSkyband:
    def test_k1_is_skyline(self):
        rng = np.random.default_rng(9)
        pts = rng.random((80, 3))
        assert kskyband_indices(pts, 1).tolist() == skyline_indices(pts).tolist()

    def test_k_grows_monotonically(self):
        rng = np.random.default_rng(10)
        pts = rng.random((100, 2))
        prev: set[int] = set()
        for k in (1, 2, 4, 8):
            band = set(kskyband_indices(pts, k).tolist())
            assert prev <= band
            prev = band

    def test_large_k_includes_everything(self):
        rng = np.random.default_rng(11)
        pts = rng.random((50, 2))
        assert kskyband_indices(pts, 50).tolist() == list(range(50))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kskyband_indices(np.ones((3, 2)), 0)

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_matches_naive(self, k):
        rng = np.random.default_rng(12 + k)
        pts = rng.random((90, 2))
        expected = np.nonzero(naive_dominator_counts(pts) < k)[0]
        assert kskyband_indices(pts, k).tolist() == expected.tolist()


class TestDominatorCounts:
    def test_matches_naive(self):
        rng = np.random.default_rng(13)
        pts = rng.random((70, 3))
        assert dominator_counts(pts).tolist() == naive_dominator_counts(pts).tolist()

    def test_cap_limits_counts(self):
        pts = np.array([[float(i)] * 2 for i in range(20)])
        counts = dominator_counts(pts, cap=3)
        assert counts.max() == 3
        assert counts[-1] == 0

    def test_small_blocks_agree(self):
        rng = np.random.default_rng(14)
        pts = rng.random((65, 2))
        assert (
            dominator_counts(pts, block=7).tolist()
            == dominator_counts(pts, block=1000).tolist()
        )
