"""Tests for timestamp <-> arrival-index conversion."""

import numpy as np
import pytest

from repro.core.record import Dataset
from repro.core.timeline import Timeline


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Timeline([])

    def test_decreasing_rejected(self):
        with pytest.raises(ValueError):
            Timeline([3, 2, 1])

    def test_equal_timestamps_allowed(self):
        tl = Timeline([1, 1, 2, 2])
        assert len(tl) == 4

    def test_for_dataset_requires_timestamps(self):
        data = Dataset(np.ones((3, 1)))
        with pytest.raises(ValueError):
            Timeline.for_dataset(data)

    def test_for_dataset(self):
        data = Dataset(np.ones((3, 1)), timestamps=[10, 20, 30])
        tl = Timeline.for_dataset(data)
        assert tl.timestamp_of(1) == 20


class TestLookups:
    @pytest.fixture()
    def tl(self):
        return Timeline([10, 20, 20, 30, 50])

    def test_first_at_or_after(self, tl):
        assert tl.first_at_or_after(5) == 0
        assert tl.first_at_or_after(20) == 1
        assert tl.first_at_or_after(21) == 3
        assert tl.first_at_or_after(51) is None

    def test_last_at_or_before(self, tl):
        assert tl.last_at_or_before(9) is None
        assert tl.last_at_or_before(20) == 2
        assert tl.last_at_or_before(100) == 4

    def test_interval_for(self, tl):
        assert tl.interval_for(20, 30) == (1, 3)
        assert tl.interval_for(0, 100) == (0, 4)
        with pytest.raises(ValueError):
            tl.interval_for(31, 49)
        with pytest.raises(ValueError):
            tl.interval_for(30, 20)


class TestTauConversion:
    def test_tau_for_span_numeric(self):
        # One record per time unit -> span of 5 units ~ 5 slots back.
        tl = Timeline(list(range(100)))
        assert tl.tau_for_span(5) == 5
        assert tl.tau_for_span(5, at=50) == 5

    def test_tau_for_span_uneven_rates(self):
        # Dense burst at the end: the same span covers more records there.
        stamps = list(range(0, 100, 10)) + [100 + i / 10 for i in range(50)]
        tl = Timeline(stamps)
        sparse = tl.tau_for_span(20, at=5)
        dense = tl.tau_for_span(20, at=len(stamps) - 1)
        assert dense > sparse

    def test_tau_at_least_one(self):
        tl = Timeline([0, 100])
        assert tl.tau_for_span(1) == 1

    def test_median_tau_robust(self):
        stamps = list(range(0, 1000, 10))
        tl = Timeline(stamps)
        assert tl.median_tau_for_span(100) == pytest.approx(10, abs=1)
        with pytest.raises(ValueError):
            tl.median_tau_for_span(100, samples=0)

    def test_datetime_spans(self):
        from datetime import datetime, timedelta

        stamps = [datetime(2020, 1, 1) + timedelta(days=i) for i in range(365)]
        tl = Timeline(stamps)
        assert tl.tau_for_span(timedelta(days=30)) == 30


class TestEndToEnd:
    def test_calendar_window_query(self):
        """'Best of the trailing 30 days' via Timeline + engine."""
        from repro.core.engine import DurableTopKEngine
        from repro.core.query import DurableTopKQuery
        from repro.core.reference import brute_force_durable_topk
        from repro.scoring import LinearPreference

        rng = np.random.default_rng(3)
        n = 400
        data = Dataset(rng.random((n, 1)), timestamps=list(range(0, 4 * n, 4)))
        tl = Timeline.for_dataset(data)
        tau = tl.tau_for_span(120)  # 120 time units = 30 records
        assert tau == 30
        engine = DurableTopKEngine(data)
        scorer = LinearPreference([1.0])
        res = engine.query(DurableTopKQuery(k=1, tau=tau), scorer, algorithm="t-hop")
        assert res.ids == brute_force_durable_topk(scorer.scores(data.values), 1, 0, n - 1, tau)
