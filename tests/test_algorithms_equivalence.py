"""Integration tests: all five algorithms against the brute-force oracle.

This is the central correctness suite — every algorithm must return the
exact durable top-k set on every dataset shape, parameter corner and index
block.
"""

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine
from repro.core.query import DurableTopKQuery
from repro.core.reference import brute_force_durable_topk
from repro.scoring import CosinePreference, LinearPreference, MonotonePreference

ALL = ["t-base", "t-hop", "s-base", "s-band", "s-hop"]
NO_BAND = ["t-base", "t-hop", "s-base", "s-hop"]


def check_all(dataset, scorer, k, tau, interval=None, algorithms=ALL, index_method="score_array"):
    engine = DurableTopKEngine(dataset, index_method=index_method, skyband_k_max=max(16, k))
    lo, hi = DurableTopKQuery(k=k, tau=tau, interval=interval).resolve_interval(dataset.n)
    expected = brute_force_durable_topk(scorer.scores(dataset.values), k, lo, hi, tau)
    for name in algorithms:
        result = engine.query(
            DurableTopKQuery(k=k, tau=tau, interval=interval), scorer, algorithm=name
        )
        assert result.ids == expected, (
            f"{name} on {dataset.name} (k={k}, tau={tau}, I={interval}): "
            f"{len(result.ids)} vs expected {len(expected)}"
        )
    return expected


@pytest.mark.parametrize("k", [1, 2, 5, 10])
def test_ind_data_all_algorithms(small_ind, linear_2d, k):
    check_all(small_ind, linear_2d, k=k, tau=60)


@pytest.mark.parametrize("tau", [1, 5, 50, 200, 599, 1000])
def test_tau_extremes(small_ind, linear_2d, tau):
    check_all(small_ind, linear_2d, k=3, tau=tau)


def test_anti_data(small_anti, linear_2d):
    check_all(small_anti, linear_2d, k=4, tau=40)


def test_anti_data_large_k(small_anti, linear_2d):
    check_all(small_anti, linear_2d, k=16, tau=80)


def test_k_at_least_window_size(small_ind, linear_2d):
    # Every record durable: k >= number of records in any window.
    expected = check_all(small_ind, linear_2d, k=16, tau=12)
    assert expected  # non-trivial


def test_interval_subranges(small_ind, linear_2d):
    check_all(small_ind, linear_2d, k=3, tau=50, interval=(100, 400))
    check_all(small_ind, linear_2d, k=3, tau=50, interval=(0, 50))
    check_all(small_ind, linear_2d, k=3, tau=50, interval=(550, 599))


def test_single_point_interval(small_ind, linear_2d):
    check_all(small_ind, linear_2d, k=2, tau=30, interval=(300, 300))


def test_interval_at_history_start(small_ind, linear_2d):
    # Windows clipped at time 0: records with partial history.
    check_all(small_ind, linear_2d, k=2, tau=100, interval=(0, 120))


def test_nba_monotone_combination(small_nba):
    scorer = MonotonePreference(np.ones(15) / 15.0)
    check_all(small_nba, scorer, k=5, tau=150)


def test_nba_two_attrs_heavy_ties(small_nba):
    data = small_nba.select_attributes(["points", "assists"])
    scorer = LinearPreference([0.9, 0.1])
    check_all(data, scorer, k=3, tau=100)


def test_tie_heavy_all_algorithms(tie_heavy_dataset):
    scorer = LinearPreference([1.0, 1.0])
    check_all(tie_heavy_dataset, scorer, k=3, tau=25)


def test_tie_heavy_k1_zero_weight(tie_heavy_dataset):
    # A zero weight: monotone but not strictly — S-Band must refuse (a
    # tied-but-dominated record can be durable yet miss the k-skyband).
    scorer = LinearPreference([1.0, 0.0])
    check_all(tie_heavy_dataset, scorer, k=1, tau=40, algorithms=NO_BAND)
    engine = DurableTopKEngine(tie_heavy_dataset, skyband_k_max=4)
    with pytest.raises(ValueError, match="strictly monotone"):
        engine.query(DurableTopKQuery(k=1, tau=40), scorer, algorithm="s-band")


def test_constant_scores_everything_durable_up_to_k(tie_heavy_dataset):
    scorer = LinearPreference([0.0, 0.0])  # all scores identical
    expected = check_all(tie_heavy_dataset, scorer, k=1, tau=50, algorithms=NO_BAND)
    # With all-equal scores nothing is *strictly* better: all durable.
    assert expected == list(range(tie_heavy_dataset.n))


def test_network_high_dimensional(small_network):
    rng = np.random.default_rng(77)
    scorer = LinearPreference(rng.random(37))
    check_all(small_network, scorer, k=5, tau=120)


def test_cosine_scorer_non_monotone(small_ind):
    scorer = CosinePreference([0.4, 0.6])
    check_all(small_ind, scorer, k=4, tau=70, algorithms=NO_BAND)


def test_negative_weights_non_monotone(small_ind):
    scorer = LinearPreference([1.0, -0.5])
    check_all(small_ind, scorer, k=3, tau=60, algorithms=NO_BAND)


def test_skyline_tree_index_block(small_ind, linear_2d):
    check_all(small_ind, linear_2d, k=4, tau=80, index_method="skyline_tree")


def test_skyline_tree_index_block_nba(small_nba):
    data = small_nba.select_attributes(["points", "assists", "rebounds"])
    scorer = LinearPreference([0.5, 0.3, 0.2])
    check_all(data, scorer, k=6, tau=200, index_method="skyline_tree")


def test_randomised_parameter_grid(small_ind):
    rng = np.random.default_rng(88)
    for _ in range(15):
        k = int(rng.integers(1, 12))
        tau = int(rng.integers(1, 300))
        lo = int(rng.integers(0, 500))
        hi = int(rng.integers(lo, 600))
        u = rng.random(2)
        check_all(small_ind, LinearPreference(u), k=k, tau=tau, interval=(lo, hi))


def test_future_direction_all_algorithms(small_ind, linear_2d):
    """Every algorithm agrees in the look-ahead direction too."""
    from repro.core.query import Direction

    engine = DurableTopKEngine(small_ind, skyband_k_max=8)
    results = engine.compare(
        DurableTopKQuery(k=3, tau=45, direction=Direction.FUTURE), linear_2d
    )
    assert len(results) == 5
    answers = {tuple(r.ids) for r in results.values()}
    assert len(answers) == 1
    # Cross-check against the reversed oracle.
    rev = brute_force_durable_topk(linear_2d.scores(small_ind.values)[::-1], 3, 0, 599, 45)
    expected = sorted(599 - t for t in rev)
    assert list(next(iter(answers))) == expected


def test_sband_with_skyline_tree_block(small_ind, linear_2d):
    """The offline skyband index composes with the Appendix-A block."""
    check_all(
        small_ind,
        linear_2d,
        k=4,
        tau=70,
        algorithms=["s-band", "s-hop"],
        index_method="skyline_tree",
    )


def test_noblock_ablation_variant_is_exact(small_ind, linear_2d):
    engine = DurableTopKEngine(small_ind)
    expected = brute_force_durable_topk(linear_2d.scores(small_ind.values), 4, 0, 599, 50)
    res = engine.query(DurableTopKQuery(k=4, tau=50), linear_2d, algorithm="s-hop-noblock")
    assert res.ids == expected
    # ... and pays for it: one durability check per record in range.
    assert res.stats.durability_topk_queries >= 0.9 * 600


def test_monotone_duplicated_timeline_blocks():
    # Repeating pattern: stresses hop logic with periodic maxima.
    pattern = np.tile(np.array([1.0, 3.0, 2.0, 5.0, 4.0]), 40)
    data_values = np.column_stack([pattern, pattern[::-1]])
    from repro.core.record import Dataset

    data = Dataset(data_values, name="periodic")
    check_all(data, LinearPreference([1.0, 0.0]), k=2, tau=7, algorithms=NO_BAND)
    check_all(data, LinearPreference([1.0, 0.01]), k=2, tau=7)
