"""Unit tests for the Fenwick tree."""

import numpy as np
import pytest

from repro.index.fenwick import FenwickTree


def test_empty_tree_sums_to_zero():
    ft = FenwickTree(10)
    assert ft.total() == 0
    assert ft.prefix_sum(9) == 0


def test_zero_size_tree_is_valid():
    ft = FenwickTree(0)
    assert ft.total() == 0
    assert len(ft) == 0


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        FenwickTree(-1)


def test_single_add_and_prefix():
    ft = FenwickTree(8)
    ft.add(3)
    assert ft.prefix_sum(2) == 0
    assert ft.prefix_sum(3) == 1
    assert ft.prefix_sum(7) == 1


def test_add_with_delta():
    ft = FenwickTree(4)
    ft.add(1, 5)
    ft.add(1, -2)
    assert ft.prefix_sum(1) == 3


def test_add_out_of_range_raises():
    ft = FenwickTree(4)
    with pytest.raises(IndexError):
        ft.add(4)
    with pytest.raises(IndexError):
        ft.add(-1)


def test_prefix_sum_clamps_out_of_range_indices():
    ft = FenwickTree(4)
    ft.add(0)
    ft.add(3)
    assert ft.prefix_sum(-5) == 0
    assert ft.prefix_sum(100) == 2


def test_range_sum_inclusive_bounds():
    ft = FenwickTree(10)
    for i in range(10):
        ft.add(i)
    assert ft.range_sum(2, 5) == 4
    assert ft.range_sum(0, 9) == 10
    assert ft.range_sum(5, 5) == 1


def test_range_sum_empty_range():
    ft = FenwickTree(10)
    ft.add(5)
    assert ft.range_sum(6, 4) == 0


def test_matches_naive_counts_randomised():
    rng = np.random.default_rng(0)
    n = 200
    ft = FenwickTree(n)
    naive = np.zeros(n, dtype=int)
    for _ in range(500):
        i = int(rng.integers(0, n))
        ft.add(i)
        naive[i] += 1
    for _ in range(200):
        lo, hi = sorted(rng.integers(0, n, 2))
        assert ft.range_sum(int(lo), int(hi)) == int(naive[lo : hi + 1].sum())
