"""Tests for bench telemetry (`resultstore`) and the perf gate (`perf`).

Covers the BENCH_*.json schema (round-trip, validation failures, refusal
to save invalid records, the history trajectory), the regression rule
(noise bands, abs_noise floors, better-direction handling), the
cross-machine guard (portable metrics gate everywhere, machine-bound
ones only on matching fingerprints), promotion, and the CLI: an injected
>=20% slowdown must exit ``perf-gate`` nonzero, a clean re-run must exit
zero.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.experiments.perf import (
    comparable_environments,
    compare_dirs,
    compare_records,
    format_report,
    gate,
    promote,
)
from repro.experiments.resultstore import (
    BenchMetric,
    BenchRecord,
    environment_fingerprint,
    fingerprint_header,
    load_bench_dir,
    load_bench_record,
    save_bench_record,
    validate_bench_payload,
)


def make_record(name="demo", metrics=None, env=None) -> BenchRecord:
    return BenchRecord(
        name=name,
        metrics=metrics
        or [
            BenchMetric("rps", 1000.0, "req/s", "higher", 0.10),
            BenchMetric("p95_ms", 20.0, "ms", "lower", 0.25),
            BenchMetric("incorrect", 0, "", "lower", 0.0, portable=True),
        ],
        environment=env or environment_fingerprint(),
    )


# ----------------------------------------------------------------------
# Schema: round-trip, validation, history
# ----------------------------------------------------------------------
class TestBenchSchema:
    def test_round_trip_through_disk(self, tmp_path):
        record = make_record()
        path = save_bench_record(record, tmp_path)
        assert path.name == "BENCH_demo.json"
        loaded = load_bench_record(path)
        assert loaded.as_dict() == record.as_dict()
        assert loaded.metric("rps").better == "higher"
        assert loaded.metric("nope") is None

    def test_environment_fingerprint_contents(self):
        env = environment_fingerprint()
        for key in ("cpu_count", "python", "platform", "machine", "git_sha"):
            assert env[key]
        header = fingerprint_header(env)
        assert header.startswith("# env: ")
        assert f"cores={env['cpu_count']}" in header
        assert "\n# clocks: " in header

    def test_validation_failures(self):
        good = make_record().as_dict()
        assert validate_bench_payload(good) == []

        assert validate_bench_payload({"name": "x"})  # missing fields

        bad_version = dict(good, schema_version=99)
        assert any("schema_version" in e for e in validate_bench_payload(bad_version))

        nan = dict(good, metrics=[dict(good["metrics"][0], value=float("nan"))])
        assert any("finite" in e for e in validate_bench_payload(nan))

        sideways = dict(good, metrics=[dict(good["metrics"][0], better="sideways")])
        assert any("better" in e for e in validate_bench_payload(sideways))

        doubled = dict(good, metrics=[good["metrics"][0]] * 2)
        assert any("duplicate" in e for e in validate_bench_payload(doubled))

        empty = dict(good, metrics=[])
        assert any("non-empty" in e for e in validate_bench_payload(empty))

    def test_from_dict_rejects_invalid_payloads(self):
        with pytest.raises(ValueError, match="invalid bench record"):
            BenchRecord.from_dict({"name": "x"})

    def test_save_refuses_invalid_records(self, tmp_path):
        bad = make_record(metrics=[BenchMetric("rps", float("nan"))])
        with pytest.raises(ValueError, match="refusing to save"):
            save_bench_record(bad, tmp_path)
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_history_accumulates_while_record_overwrites(self, tmp_path):
        save_bench_record(make_record(), tmp_path)
        save_bench_record(make_record(), tmp_path)
        assert len(list(tmp_path.glob("BENCH_*.json"))) == 1
        lines = (tmp_path / "BENCH_HISTORY.jsonl").read_text().splitlines()
        assert len(lines) == 2
        entry = json.loads(lines[0])
        assert entry["name"] == "demo"
        assert entry["metrics"]["rps"] == 1000.0


# ----------------------------------------------------------------------
# The regression rule
# ----------------------------------------------------------------------
class TestRegressionRule:
    def _delta(self, baseline, current, **metric_overrides):
        kwargs = dict(unit="req/s", better="higher", noise=0.10)
        kwargs.update(metric_overrides)
        base = make_record(metrics=[BenchMetric("m", baseline, **kwargs)])
        curr = make_record(metrics=[BenchMetric("m", current, **kwargs)])
        (delta,) = compare_records(base, curr)
        return delta

    def test_injected_twenty_percent_slowdown_regresses(self):
        delta = self._delta(1000.0, 800.0)  # 20% worse vs 10% band
        assert delta.regressed
        assert gate([delta]) == 1

    def test_movement_inside_the_band_is_noise(self):
        delta = self._delta(1000.0, 950.0)
        assert not delta.regressed and not delta.improved
        assert gate([delta]) == 0

    def test_improvement_is_flagged_not_failed(self):
        delta = self._delta(1000.0, 1300.0)
        assert delta.improved and not delta.regressed

    def test_lower_is_better_flips_the_direction(self):
        delta = self._delta(20.0, 28.0, better="lower", unit="ms", noise=0.25)
        assert delta.regressed  # +40% on a lower-is-better metric
        assert not self._delta(20.0, 14.0, better="lower", noise=0.25).regressed

    def test_abs_noise_floors_near_zero_metrics(self):
        ok = self._delta(0.0, 0.005, better="lower", noise=0.0, abs_noise=0.01)
        assert not ok.regressed
        bad = self._delta(0.0, 0.02, better="lower", noise=0.0, abs_noise=0.01)
        assert bad.regressed


# ----------------------------------------------------------------------
# Cross-machine comparability
# ----------------------------------------------------------------------
class TestComparability:
    def test_python_minor_granularity(self):
        a = environment_fingerprint()
        b = dict(a, python="3.11.999")
        c = dict(a, python="3.999.0")
        assert comparable_environments(a, b)
        assert not comparable_environments(a, c)

    def test_other_machine_downgrades_machine_bound_metrics(self):
        env_a = environment_fingerprint()
        env_b = dict(env_a, cpu_count=int(env_a["cpu_count"]) + 7)
        base = make_record(
            metrics=[
                BenchMetric("rps", 1000.0, "req/s", "higher", 0.10),
                BenchMetric("speedup", 2.0, "x", "higher", 0.10, portable=True),
            ],
            env=env_a,
        )
        curr = make_record(
            metrics=[
                BenchMetric("rps", 100.0, "req/s", "higher", 0.10),  # 10x worse
                BenchMetric("speedup", 1.0, "x", "higher", 0.10, portable=True),
            ],
            env=env_b,
        )
        rps, speedup = compare_records(base, curr)
        assert not rps.gated and not rps.regressed  # informational only
        assert speedup.gated and speedup.regressed  # ratios gate everywhere
        report = format_report([rps, speedup], [], [])
        assert "info (machines differ)" in report
        assert "REGRESSED" in report


# ----------------------------------------------------------------------
# Directory diffing, promotion, CLI
# ----------------------------------------------------------------------
class TestDirsAndCLI:
    def _seed(self, tmp_path, rps):
        baseline, current = tmp_path / "baseline", tmp_path / "current"
        save_bench_record(make_record(), baseline, history=False)
        save_bench_record(
            make_record(
                metrics=[
                    BenchMetric("rps", rps, "req/s", "higher", 0.10),
                    BenchMetric("p95_ms", 20.0, "ms", "lower", 0.25),
                    BenchMetric("incorrect", 0, "", "lower", 0.0, portable=True),
                ]
            ),
            current,
            history=False,
        )
        return baseline, current

    def test_compare_dirs_reports_missing_benches(self, tmp_path):
        baseline, current = self._seed(tmp_path, 1000.0)
        save_bench_record(make_record(name="only_base"), baseline, history=False)
        save_bench_record(make_record(name="only_curr"), current, history=False)
        deltas, missing_current, missing_baseline = compare_dirs(baseline, current)
        assert {d.metric.name for d in deltas} == {"rps", "p95_ms", "incorrect"}
        assert missing_current == ["only_base"]
        assert missing_baseline == ["only_curr"]

    def test_promote_revalidates_and_copies(self, tmp_path):
        baseline, current = self._seed(tmp_path, 900.0)
        assert promote(current, baseline) == ["demo"]
        assert load_bench_dir(baseline)["demo"].metric("rps").value == 900.0
        # A corrupt record never becomes the baseline.
        (current / "BENCH_demo.json").write_text('{"name": "demo"}')
        with pytest.raises(ValueError):
            promote(current, baseline)

    def test_cli_gate_fails_on_injected_regression(self, tmp_path, capsys):
        baseline, current = self._seed(tmp_path, 790.0)  # >20% down
        code = main(
            ["perf-gate", "--baseline", str(baseline), "--current", str(current)]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_cli_gate_passes_clean_run(self, tmp_path, capsys):
        baseline, current = self._seed(tmp_path, 980.0)
        code = main(
            ["perf-gate", "--baseline", str(baseline), "--current", str(current)]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_cli_gate_fails_with_nothing_to_compare(self, tmp_path, capsys):
        code = main(
            [
                "perf-gate",
                "--baseline",
                str(tmp_path / "empty_a"),
                "--current",
                str(tmp_path / "empty_b"),
            ]
        )
        assert code == 1
        assert "no overlapping" in capsys.readouterr().out

    def test_cli_report_never_gates_but_promote_refreshes(self, tmp_path, capsys):
        baseline, current = self._seed(tmp_path, 500.0)  # way regressed
        code = main(
            [
                "perf-report",
                "--baseline",
                str(baseline),
                "--current",
                str(current),
                "--promote",
            ]
        )
        assert code == 0  # report informs; only perf-gate fails builds
        assert "promoted 1 record(s)" in capsys.readouterr().out
        assert load_bench_dir(baseline)["demo"].metric("rps").value == 500.0
        # After promotion the same run gates clean.
        assert (
            main(["perf-gate", "--baseline", str(baseline), "--current", str(current)])
            == 0
        )


# ----------------------------------------------------------------------
# The benches really emit schema-valid telemetry
# ----------------------------------------------------------------------
class TestBenchEmission:
    def test_serve_bench_smoke_emits_valid_bench_json(self, tmp_path, capsys):
        assert main(["serve-bench", "--smoke", "--out", str(tmp_path)]) == 0
        record = load_bench_record(tmp_path / "BENCH_service_throughput.json")
        names = {m.name for m in record.metrics}
        assert {"pooled_rps", "speedup", "incorrect", "rejected"} <= names
        assert (tmp_path / "BENCH_HISTORY.jsonl").exists()
        text = (tmp_path / "service_throughput.txt").read_text()
        assert text.startswith("# env: ")

    def test_figure_run_emits_valid_bench_json(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "fig8",
                "--n",
                "1500",
                "--preferences",
                "1",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        (path,) = tmp_path.glob("BENCH_fig8-*.json")
        record = load_bench_record(path)
        assert any(m.name.endswith("_topk_queries") for m in record.metrics)
        assert any(m.portable for m in record.metrics)
