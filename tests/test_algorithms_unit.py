"""Per-algorithm unit tests: stats accounting and complexity bounds.

Lemma 1 (T-Hop) and Lemma 3 (S-Hop) bound the number of top-k queries by
``O(|S| + k * ceil(|I| / tau))``; these tests assert the bound with an
explicit constant, so a regression that silently destroys the pruning
shows up as a test failure, not just a slow benchmark.
"""

import math

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine
from repro.core.query import DurableTopKQuery
from repro.scoring import LinearPreference


def run(dataset, algorithm, k=5, tau=50, interval=None, scorer=None, **engine_kwargs):
    engine = DurableTopKEngine(dataset, skyband_k_max=16, **engine_kwargs)
    scorer = scorer or LinearPreference(np.ones(dataset.d) / dataset.d)
    return engine.query(
        DurableTopKQuery(k=k, tau=tau, interval=interval), scorer, algorithm=algorithm
    )


def lemma_bound(result) -> float:
    """|S| + k * ceil(|I| / tau), the Lemma 1/3 quantity."""
    q = result.query
    lo, hi = q.interval
    interval_len = hi - lo + 1
    return len(result.ids) + q.k * math.ceil(interval_len / q.tau)


class TestTimeHop:
    def test_query_count_within_lemma1_bound(self, small_ind, linear_2d):
        res = run(small_ind, "t-hop", k=5, tau=50, interval=(0, 599), scorer=linear_2d)
        # Queries = durable hits + false checks; Lemma 1 bounds false
        # checks by |S| + k*ceil(|I|/tau), so total <= 2|S| + k*ceil(...).
        assert res.stats.durability_topk_queries <= len(res.ids) + lemma_bound(res)

    def test_false_checks_accounted(self, small_ind, linear_2d):
        res = run(small_ind, "t-hop", interval=(0, 599), scorer=linear_2d)
        assert res.stats.durability_topk_queries == len(res.ids) + res.stats.false_checks

    def test_hops_reduce_visits(self, small_ind, linear_2d):
        res = run(small_ind, "t-hop", k=2, tau=100, interval=(0, 599), scorer=linear_2d)
        interval_len = 600
        assert res.stats.hops > 0
        assert res.stats.hop_distance > 0
        # Visited records = queries issued; must be far below |I|.
        assert res.stats.topk_queries < interval_len / 2

    def test_no_candidate_queries(self, small_ind, linear_2d):
        res = run(small_ind, "t-hop", scorer=linear_2d)
        assert res.stats.candidate_topk_queries == 0


class TestTimeBaseline:
    def test_incremental_updates_cover_interval(self, small_ind, linear_2d):
        res = run(small_ind, "t-base", k=3, tau=50, interval=(100, 500), scorer=linear_2d)
        # Every non-durable slide is an incremental update; with durables
        # triggering recomputes, updates + recomputes ~= interval length.
        assert res.stats.incremental_updates + res.stats.durability_topk_queries >= 400

    def test_queries_close_to_answer_size(self, small_ind, linear_2d):
        res = run(small_ind, "t-base", k=3, tau=50, interval=(100, 500), scorer=linear_2d)
        # T-Base recomputes only when a durable record expires (plus the
        # initial query and boundary effects).
        assert res.stats.durability_topk_queries <= 2 * len(res.ids) + 2


class TestScoreBaseline:
    def test_no_topk_queries_at_all(self, small_ind, linear_2d):
        res = run(small_ind, "s-base", scorer=linear_2d)
        assert res.stats.topk_queries == 0

    def test_sorts_whole_range(self, small_ind, linear_2d):
        res = run(small_ind, "s-base", tau=50, interval=(100, 500), scorer=linear_2d)
        # Records [lo - tau, hi] = [50, 500] participate in the sort.
        assert res.stats.records_sorted == 451

    def test_blocking_intervals_added_for_every_record(self, small_ind, linear_2d):
        res = run(small_ind, "s-base", tau=50, interval=(100, 500), scorer=linear_2d)
        assert res.stats.blocking_intervals == 451


class TestScoreBand:
    def test_candidate_set_recorded_and_superset(self, small_ind, linear_2d):
        res = run(small_ind, "s-band", k=4, tau=60, scorer=linear_2d)
        assert res.stats.candidate_set_size >= len(res.ids)

    def test_fails_without_skyband_index(self, small_ind, linear_2d):
        engine = DurableTopKEngine(small_ind, skyband_k_max=None)
        with pytest.raises(ValueError, match="DurableSkybandIndex"):
            engine.query(DurableTopKQuery(k=2, tau=30), linear_2d, algorithm="s-band")

    def test_rejects_non_monotone_scorer(self, small_ind):
        from repro.scoring import CosinePreference

        engine = DurableTopKEngine(small_ind, skyband_k_max=8)
        with pytest.raises(ValueError, match="monotone"):
            engine.query(
                DurableTopKQuery(k=2, tau=30),
                CosinePreference([1.0, 1.0]),
                algorithm="s-band",
            )

    def test_candidate_queries_bounded_by_candidates(self, small_ind, linear_2d):
        res = run(small_ind, "s-band", k=4, tau=60, scorer=linear_2d)
        assert res.stats.durability_topk_queries <= res.stats.candidate_set_size


class TestScoreHop:
    def test_query_count_within_lemma3_bound(self, small_ind, linear_2d):
        res = run(small_ind, "s-hop", k=5, tau=50, interval=(0, 599), scorer=linear_2d)
        bound = lemma_bound(res)
        assert res.stats.durability_topk_queries <= len(res.ids) + bound
        # Candidate queries: one per initial partition + two per split;
        # splits happen once per durability check.
        assert res.stats.candidate_topk_queries <= 2 * (
            res.stats.durability_topk_queries + math.ceil(600 / 50)
        )

    def test_false_checks_accounted(self, small_ind, linear_2d):
        res = run(small_ind, "s-hop", interval=(0, 599), scorer=linear_2d)
        assert res.stats.durability_topk_queries == len(res.ids) + res.stats.false_checks

    def test_blocked_skips_happen_on_dense_data(self, small_anti):
        scorer = LinearPreference([0.5, 0.5])
        res = run(small_anti, "s-hop", k=3, tau=60, scorer=scorer)
        assert res.stats.blocked_skips > 0

    def test_durability_checks_fewer_than_thop(self, small_ind, linear_2d):
        """The blocking mechanism makes S-Hop more conservative (Sec IV-D)."""
        hop = run(small_ind, "t-hop", k=8, tau=80, scorer=linear_2d)
        shop = run(small_ind, "s-hop", k=8, tau=80, scorer=linear_2d)
        assert shop.stats.durability_topk_queries <= hop.stats.durability_topk_queries


class TestStatsPlumbing:
    def test_elapsed_recorded(self, small_ind, linear_2d):
        res = run(small_ind, "t-hop", scorer=linear_2d)
        assert res.elapsed_seconds > 0

    def test_stats_dict_roundtrip(self, small_ind, linear_2d):
        res = run(small_ind, "s-hop", scorer=linear_2d)
        d = res.stats.as_dict()
        assert d["topk_queries"] == res.stats.topk_queries
        assert "false_checks" in d

    def test_stats_add(self):
        from repro.core.query import QueryStats

        a = QueryStats(durability_topk_queries=2, hops=1)
        b = QueryStats(durability_topk_queries=3, false_checks=4)
        a.add(b)
        assert a.durability_topk_queries == 5
        assert a.false_checks == 4
        assert a.hops == 1
