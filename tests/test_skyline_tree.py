"""Unit tests for the Appendix-A skyline tree top-k index."""

import numpy as np
import pytest

from repro.core.record import Dataset
from repro.core.reference import brute_force_topk
from repro.index.skyline_tree import SkylineTree
from repro.scoring import CosinePreference, LinearPreference


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(21)
    return Dataset(rng.random((700, 3)), name="tree-test")


@pytest.fixture(scope="module")
def tree(dataset):
    return SkylineTree(dataset, length_threshold=16)


def test_invalid_threshold(dataset):
    with pytest.raises(ValueError):
        SkylineTree(dataset, length_threshold=0)


def test_rejects_non_monotone_scorer(tree):
    with pytest.raises(ValueError):
        tree.bind(CosinePreference([1.0, 1.0, 1.0]))


def test_node_count_is_linear(dataset, tree):
    # ~2 * n / threshold nodes for a leaf threshold of 16.
    assert tree.node_count() <= 4 * (len(dataset) // 16 + 1)


def test_topk_matches_brute_force(dataset, tree):
    rng = np.random.default_rng(22)
    scorer = LinearPreference([0.2, 0.5, 0.3])
    scores = scorer.scores(dataset.values)
    index = tree.bind(scorer)
    for _ in range(150):
        lo, hi = sorted(rng.integers(0, 700, 2))
        k = int(rng.integers(1, 15))
        assert index.topk(k, int(lo), int(hi)) == brute_force_topk(scores, k, int(lo), int(hi))


def test_topk_many_preferences(dataset, tree):
    rng = np.random.default_rng(23)
    for _ in range(10):
        u = rng.random(3)
        scorer = LinearPreference(u)
        scores = scorer.scores(dataset.values)
        index = tree.bind(scorer)
        lo, hi = sorted(rng.integers(0, 700, 2))
        assert index.topk(8, int(lo), int(hi)) == brute_force_topk(scores, 8, int(lo), int(hi))


def test_topk_with_ties(tie_heavy_dataset):
    tree = SkylineTree(tie_heavy_dataset, length_threshold=8)
    scorer = LinearPreference([1.0, 1.0])
    scores = scorer.scores(tie_heavy_dataset.values)
    index = tree.bind(scorer)
    rng = np.random.default_rng(24)
    for _ in range(100):
        lo, hi = sorted(rng.integers(0, 300, 2))
        k = int(rng.integers(1, 10))
        assert index.topk(k, int(lo), int(hi)) == brute_force_topk(scores, k, int(lo), int(hi))


def test_edge_ranges(dataset, tree):
    scorer = LinearPreference([1.0, 0.0, 0.0])
    index = tree.bind(scorer)
    assert index.topk(3, -50, -1) == []
    assert index.topk(3, 700, 900) == []
    assert index.topk(0, 0, 699) == []
    single = index.topk(1, 5, 5)
    assert single == [5]
    assert index.top1(5, 5) == 5


def test_score_memoisation(dataset, tree):
    scorer = LinearPreference([0.4, 0.4, 0.2])
    index = tree.bind(scorer)
    first = index.score(42)
    assert index.score(42) == first
    assert first == pytest.approx(scorer.score_point(dataset.values[42]))


def test_leaf_threshold_one(dataset):
    tree = SkylineTree(dataset.prefix(64), length_threshold=1)
    scorer = LinearPreference([0.3, 0.3, 0.4])
    scores = scorer.scores(dataset.values[:64])
    index = tree.bind(scorer)
    assert index.topk(5, 0, 63) == brute_force_topk(scores, 5, 0, 63)
