"""Tests for the Section V expectation formulas (Lemmas 4 and 5)."""

import numpy as np
import pytest

from repro.analysis.expected import (
    empirical_answer_size,
    expected_answer_size,
    expected_candidate_bound,
    expected_skyband_size,
)
from repro.data.synthetic import random_permutation_scores


class TestExpectedAnswerSize:
    def test_formula(self):
        assert expected_answer_size(10, 1000, 99) == 100.0
        assert expected_answer_size(1, 100, 1) == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_answer_size(0, 10, 5)
        with pytest.raises(ValueError):
            expected_answer_size(1, 10, 0)

    def test_lemma4_on_rpm_data(self):
        """E[|S|] = k|I|/(tau+1): empirical mean within 3 sigma-ish."""
        n, k, tau = 4000, 3, 99
        sizes = [
            empirical_answer_size(random_permutation_scores(n, seed=s), k, tau)
            for s in range(30)
        ]
        expected = expected_answer_size(k, n, tau)
        observed = float(np.mean(sizes))
        assert abs(observed - expected) < 0.15 * expected

    def test_lemma4_distribution_free(self):
        """The RPM expectation is independent of the adversary's values."""
        n, k, tau = 3000, 2, 59
        expected = expected_answer_size(k, n, tau)
        for values in (
            np.arange(n, dtype=float),
            np.arange(n, dtype=float) ** 3,
            np.exp(np.linspace(0, 20, n)),
        ):
            sizes = [
                empirical_answer_size(
                    random_permutation_scores(n, seed=s, values=values), k, tau
                )
                for s in range(20)
            ]
            assert abs(float(np.mean(sizes)) - expected) < 0.2 * expected


class TestExpectedSkybandSize:
    def test_one_dimension_is_k(self):
        assert expected_skyband_size(100, 1, 5) == 5.0

    def test_small_sets_fully_in_band(self):
        assert expected_skyband_size(3, 2, 5) == 3.0

    def test_zero_points(self):
        assert expected_skyband_size(0, 3, 2) == 0.0

    def test_grows_with_dimension(self):
        sizes = [expected_skyband_size(1000, d, 2) for d in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_harmonic_recurrence_d2_k1(self):
        """For k=1, d=2: A(m, 2) = H_m (the harmonic number)."""
        m = 50
        harmonic = float(np.sum(1.0 / np.arange(1, m + 1)))
        assert expected_skyband_size(m, 2, 1) == pytest.approx(harmonic)

    def test_matches_empirical_skyband(self):
        """Expected size tracks measured k-skyband size on random data."""
        from repro.index.skyline import kskyband_indices

        rng = np.random.default_rng(80)
        m, d, k = 400, 2, 3
        measured = np.mean(
            [len(kskyband_indices(rng.random((m, d)), k)) for _ in range(25)]
        )
        predicted = expected_skyband_size(m, d, k)
        assert abs(measured - predicted) < 0.35 * predicted

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_skyband_size(-1, 2, 1)
        with pytest.raises(ValueError):
            expected_skyband_size(5, 0, 1)


class TestCandidateBound:
    def test_shape_in_d(self):
        b2 = expected_candidate_bound(5, 1000, 100, 2)
        b5 = expected_candidate_bound(5, 1000, 100, 5)
        assert b5 > b2

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_candidate_bound(5, 1000, 0, 2)
