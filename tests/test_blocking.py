"""Unit tests for the blocking-interval mechanism."""

import numpy as np
import pytest

from repro.core.blocking import BlockingIntervals


def test_tau_validation():
    with pytest.raises(ValueError):
        BlockingIntervals(10, 0)


def test_single_interval_coverage():
    blocks = BlockingIntervals(20, 5)
    blocks.add(3)
    # [3, 8] covers timestamps 3..8
    for t in range(3, 9):
        assert blocks.count_at(t) == 1, t
    assert blocks.count_at(2) == 0
    assert blocks.count_at(9) == 0


def test_duplicate_add_ignored():
    blocks = BlockingIntervals(10, 2)
    assert blocks.add(4) is True
    assert blocks.add(4) is False
    assert blocks.n_intervals == 1
    assert blocks.count_at(5) == 1
    assert 4 in blocks
    assert 5 not in blocks


def test_is_blocked_threshold():
    blocks = BlockingIntervals(30, 10)
    for left in (0, 2, 4):
        blocks.add(left)
    assert blocks.count_at(5) == 3
    assert blocks.is_blocked(5, 3)
    assert not blocks.is_blocked(5, 4)


def test_figure3_scenario():
    """The Figure 3 example: three staggered intervals, middle covered 3x."""
    blocks = BlockingIntervals(100, 20)
    blocks.add(10)  # [10, 30]
    blocks.add(18)  # [18, 38]
    blocks.add(25)  # [25, 45]
    assert blocks.count_at(26) == 3
    assert blocks.count_at(12) == 1
    assert blocks.count_at(40) == 1
    assert blocks.count_at(50) == 0


def test_matches_naive_stabbing_counts():
    rng = np.random.default_rng(17)
    n, tau = 200, 13
    blocks = BlockingIntervals(n, tau)
    lefts: list[int] = []
    for _ in range(80):
        left = int(rng.integers(0, n))
        if blocks.add(left):
            lefts.append(left)
    for t in range(n):
        naive = sum(1 for left in lefts if left <= t <= left + tau)
        assert blocks.count_at(t) == naive, t
