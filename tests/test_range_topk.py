"""Unit tests for the score-array range top-k building block."""

import numpy as np
import pytest

from repro.core.reference import brute_force_topk
from repro.index.range_topk import ScoreArrayTopKIndex


@pytest.fixture(scope="module")
def scores():
    rng = np.random.default_rng(3)
    return rng.random(500)


@pytest.fixture(scope="module")
def index(scores):
    return ScoreArrayTopKIndex(scores)


def test_rejects_bad_input():
    with pytest.raises(ValueError):
        ScoreArrayTopKIndex(np.zeros((3, 3)))
    with pytest.raises(ValueError):
        ScoreArrayTopKIndex(np.array([1.0, np.nan]))


def test_top1_matches_argmax(scores, index):
    assert index.top1(0, 499) == int(np.argmax(scores))
    assert index.top1(700, 900) is None


def test_topk_empty_cases(index):
    assert index.topk(0, 0, 499) == []
    assert index.topk(5, 300, 200) == []
    assert index.topk(5, 600, 700) == []


def test_topk_more_than_range(index):
    out = index.topk(50, 10, 14)
    assert sorted(out) == [10, 11, 12, 13, 14]


def test_topk_is_sorted_best_first(scores, index):
    out = index.topk(20, 50, 400)
    out_scores = scores[out]
    assert all(out_scores[i] >= out_scores[i + 1] for i in range(len(out) - 1))


def test_matches_brute_force_randomised(scores, index):
    rng = np.random.default_rng(4)
    for _ in range(200):
        lo, hi = sorted(rng.integers(0, 500, 2))
        k = int(rng.integers(1, 20))
        assert index.topk(k, int(lo), int(hi)) == brute_force_topk(scores, k, int(lo), int(hi))


def test_tie_break_later_arrival_wins():
    scores = np.array([2.0, 5.0, 5.0, 1.0, 5.0])
    index = ScoreArrayTopKIndex(scores)
    assert index.topk(3, 0, 4) == [4, 2, 1]
    assert index.topk(5, 0, 4) == [4, 2, 1, 0, 3]


def test_matches_brute_force_with_ties():
    rng = np.random.default_rng(5)
    scores = rng.integers(0, 6, 300).astype(float)
    index = ScoreArrayTopKIndex(scores)
    for _ in range(150):
        lo, hi = sorted(rng.integers(0, 300, 2))
        k = int(rng.integers(1, 12))
        assert index.topk(k, int(lo), int(hi)) == brute_force_topk(scores, k, int(lo), int(hi))


def test_score_accessor(scores, index):
    assert index.score(17) == pytest.approx(float(scores[17]))
    assert index.n == 500
