"""Tests for the canonical total order helpers."""

import numpy as np
import pytest

from repro.core.order import beats, order_key, sort_ids_canonical


class TestBeats:
    def test_higher_score_wins(self):
        assert beats(2.0, 0, 1.0, 5)
        assert not beats(1.0, 5, 2.0, 0)

    def test_tie_later_arrival_wins(self):
        assert beats(1.0, 5, 1.0, 0)
        assert not beats(1.0, 0, 1.0, 5)

    def test_total_order_antisymmetric(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            sa, sb = rng.integers(0, 3, 2).astype(float)
            ta, tb = rng.choice(50, 2, replace=False)
            a_beats_b = beats(sa, int(ta), sb, int(tb))
            b_beats_a = beats(sb, int(tb), sa, int(ta))
            assert a_beats_b != b_beats_a  # exactly one wins

    def test_order_key_matches_beats(self):
        assert (order_key(2.0, 1) > order_key(1.0, 9)) == beats(2.0, 1, 1.0, 9)


class TestSortIdsCanonical:
    def test_sorts_descending_with_tie_break(self):
        ids = np.array([10, 11, 12, 13])
        scores = np.array([1.0, 3.0, 3.0, 0.5])
        assert sort_ids_canonical(ids, scores).tolist() == [12, 11, 10, 13]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            sort_ids_canonical(np.array([1]), np.array([1.0, 2.0]))

    def test_consistent_with_beats(self):
        rng = np.random.default_rng(1)
        ids = np.arange(30)
        scores = rng.integers(0, 4, 30).astype(float)
        ordered = sort_ids_canonical(ids, scores).tolist()
        for a, b in zip(ordered, ordered[1:]):
            assert beats(scores[a], a, scores[b], b)
