"""Unit tests for durability predicates and max-duration binary search."""

import numpy as np
import pytest

from repro.core.durability import is_durable, max_durability
from repro.core.engine import DurableTopKEngine
from repro.core.query import DurableTopKQuery
from repro.index.range_topk import ScoreArrayTopKIndex


def brute_max_durability(scores, k, t):
    """Largest tau such that < k records in [t - tau, t] beat scores[t]."""
    best = 0
    for tau in range(1, len(scores) + 1):
        lo = max(0, t - tau)
        greater = int(np.count_nonzero(scores[lo : t + 1] > scores[t]))
        if greater < k:
            best = tau
        else:
            break
    # Durable at tau >= t means durable over all history.
    return len(scores) if best >= t else best


class TestIsDurable:
    def test_top_record_always_durable(self):
        scores = np.array([1.0, 2.0, 9.0, 3.0])
        index = ScoreArrayTopKIndex(scores)
        assert is_durable(index, 1, 2, 2)

    def test_beaten_record_not_durable(self):
        scores = np.array([9.0, 1.0])
        index = ScoreArrayTopKIndex(scores)
        assert not is_durable(index, 1, 1, 1)

    def test_works_with_plain_index(self):
        scores = np.array([1.0, 5.0, 2.0])
        index = ScoreArrayTopKIndex(scores)
        # Plain (non-counting) indexes take no `kind` kwarg.
        assert is_durable(index, 2, 2, 2)


class TestMaxDurability:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(71)
        scores = rng.random(300)
        index = ScoreArrayTopKIndex(scores)
        for k in (1, 3):
            for t in rng.integers(0, 300, 20):
                t = int(t)
                if not is_durable(index, k, t, 1):
                    continue
                assert max_durability(index, k, t) == brute_max_durability(scores, k, t), (k, t)

    def test_global_max_durable_forever(self):
        scores = np.array([1.0, 2.0, 9.0, 3.0, 4.0])
        index = ScoreArrayTopKIndex(scores)
        assert max_durability(index, 1, 2) == 5

    def test_non_durable_record_raises(self):
        scores = np.array([9.0, 1.0])
        index = ScoreArrayTopKIndex(scores)
        with pytest.raises(ValueError):
            max_durability(index, 1, 1)

    def test_respects_tau_min(self):
        scores = np.array([1.0, 5.0, 4.0, 3.0, 6.0])
        index = ScoreArrayTopKIndex(scores)
        # Record 3 (score 3) is 1-durable? window [2,3] has 4 > 3 -> no.
        with pytest.raises(ValueError):
            max_durability(index, 1, 3, tau_min=1)


class TestEngineDurations:
    def test_durations_at_least_query_tau(self, small_ind, linear_2d):
        engine = DurableTopKEngine(small_ind)
        res = engine.query(
            DurableTopKQuery(k=3, tau=40), linear_2d, algorithm="s-hop", with_durations=True
        )
        scores = linear_2d.scores(small_ind.values)
        for t, dur in res.durations.items():
            assert dur >= 40
            assert dur == brute_max_durability(scores, 3, t)
