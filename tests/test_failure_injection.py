"""Failure-injection tests: malformed queries, degenerate data, bad input."""

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine, durable_topk
from repro.core.query import DurableTopKQuery
from repro.core.record import Dataset
from repro.scoring import LinearPreference


@pytest.fixture()
def tiny():
    return Dataset(np.array([[1.0], [3.0], [2.0]]), name="tiny")


class TestDegenerateData:
    def test_single_record_dataset(self):
        data = Dataset(np.array([[5.0]]))
        res = durable_topk(data, LinearPreference([1.0]), k=1, tau=1)
        assert res.ids == [0]

    def test_two_records_all_algorithms(self):
        data = Dataset(np.array([[1.0], [2.0]]))
        engine = DurableTopKEngine(data, skyband_k_max=2)
        results = engine.compare(DurableTopKQuery(k=1, tau=1), LinearPreference([1.0]))
        assert all(r.ids == [0, 1] for r in results.values())

    def test_identical_records(self):
        data = Dataset(np.ones((20, 2)))
        engine = DurableTopKEngine(data, skyband_k_max=2)
        results = engine.compare(
            DurableTopKQuery(k=1, tau=5), LinearPreference([0.5, 0.5])
        )
        # Nothing strictly better anywhere: every record durable.
        assert all(r.ids == list(range(20)) for r in results.values())

    def test_strictly_decreasing_scores(self, tiny):
        data = Dataset(np.arange(50, 0, -1, dtype=float)[:, None])
        res = durable_topk(data, LinearPreference([1.0]), k=1, tau=10)
        assert res.ids == [0]  # only the first record is ever on top

    def test_strictly_increasing_scores(self):
        data = Dataset(np.arange(50, dtype=float)[:, None])
        res = durable_topk(data, LinearPreference([1.0]), k=1, tau=10)
        assert res.ids == list(range(50))  # every record tops its window


class TestMalformedQueries:
    def test_k_larger_than_dataset(self, tiny):
        res = durable_topk(tiny, LinearPreference([1.0]), k=100, tau=1)
        assert res.ids == [0, 1, 2]

    def test_tau_larger_than_dataset(self, tiny):
        res = durable_topk(tiny, LinearPreference([1.0]), k=1, tau=1_000_000)
        assert res.ids == [0, 1]  # record 2 (score 2) is beaten by record 1

    def test_interval_entirely_outside(self, tiny):
        with pytest.raises(ValueError):
            durable_topk(tiny, LinearPreference([1.0]), k=1, tau=1, interval=(10, 20))

    def test_interval_partially_outside_is_clamped(self, tiny):
        res = durable_topk(tiny, LinearPreference([1.0]), k=1, tau=1, interval=(1, 99))
        assert all(1 <= t <= 2 for t in res.ids)


class TestBadScorers:
    def test_nan_weights_rejected(self):
        with pytest.raises(ValueError):
            LinearPreference([np.nan])

    def test_inf_weights_rejected(self):
        with pytest.raises(ValueError):
            LinearPreference([np.inf, 1.0])

    def test_dimension_mismatch_fails_fast(self, tiny):
        with pytest.raises(ValueError):
            durable_topk(tiny, LinearPreference([1.0, 2.0]), k=1, tau=1)


class TestBadDatasets:
    def test_empty_dataset_query_fails(self):
        data = Dataset(np.zeros((0, 2)).reshape(0, 2))
        engine = DurableTopKEngine(data)
        with pytest.raises(ValueError):
            engine.query(DurableTopKQuery(k=1, tau=1), LinearPreference([1.0, 1.0]))

    def test_values_coerced_to_float(self):
        data = Dataset(np.array([[1], [2]], dtype=int))
        assert data.values.dtype == np.float64
