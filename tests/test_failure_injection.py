"""Failure-injection tests: malformed queries, degenerate data, bad
input, and crashes of the live MiniDB writer."""

import numpy as np
import pytest

from repro.core.engine import DurableTopKEngine, durable_topk
from repro.core.query import DurableTopKQuery
from repro.core.record import Dataset
from repro.core.reference import brute_force_durable_topk
from repro.minidb import LiveMiniDB
from repro.minidb.procedures import t_hop_procedure
from repro.scoring import LinearPreference


@pytest.fixture()
def tiny():
    return Dataset(np.array([[1.0], [3.0], [2.0]]), name="tiny")


class TestDegenerateData:
    def test_single_record_dataset(self):
        data = Dataset(np.array([[5.0]]))
        res = durable_topk(data, LinearPreference([1.0]), k=1, tau=1)
        assert res.ids == [0]

    def test_two_records_all_algorithms(self):
        data = Dataset(np.array([[1.0], [2.0]]))
        engine = DurableTopKEngine(data, skyband_k_max=2)
        results = engine.compare(DurableTopKQuery(k=1, tau=1), LinearPreference([1.0]))
        assert all(r.ids == [0, 1] for r in results.values())

    def test_identical_records(self):
        data = Dataset(np.ones((20, 2)))
        engine = DurableTopKEngine(data, skyband_k_max=2)
        results = engine.compare(
            DurableTopKQuery(k=1, tau=5), LinearPreference([0.5, 0.5])
        )
        # Nothing strictly better anywhere: every record durable.
        assert all(r.ids == list(range(20)) for r in results.values())

    def test_strictly_decreasing_scores(self, tiny):
        data = Dataset(np.arange(50, 0, -1, dtype=float)[:, None])
        res = durable_topk(data, LinearPreference([1.0]), k=1, tau=10)
        assert res.ids == [0]  # only the first record is ever on top

    def test_strictly_increasing_scores(self):
        data = Dataset(np.arange(50, dtype=float)[:, None])
        res = durable_topk(data, LinearPreference([1.0]), k=1, tau=10)
        assert res.ids == list(range(50))  # every record tops its window


class TestMalformedQueries:
    def test_k_larger_than_dataset(self, tiny):
        res = durable_topk(tiny, LinearPreference([1.0]), k=100, tau=1)
        assert res.ids == [0, 1, 2]

    def test_tau_larger_than_dataset(self, tiny):
        res = durable_topk(tiny, LinearPreference([1.0]), k=1, tau=1_000_000)
        assert res.ids == [0, 1]  # record 2 (score 2) is beaten by record 1

    def test_interval_entirely_outside(self, tiny):
        with pytest.raises(ValueError):
            durable_topk(tiny, LinearPreference([1.0]), k=1, tau=1, interval=(10, 20))

    def test_interval_partially_outside_is_clamped(self, tiny):
        res = durable_topk(tiny, LinearPreference([1.0]), k=1, tau=1, interval=(1, 99))
        assert all(1 <= t <= 2 for t in res.ids)


class TestBadScorers:
    def test_nan_weights_rejected(self):
        with pytest.raises(ValueError):
            LinearPreference([np.nan])

    def test_inf_weights_rejected(self):
        with pytest.raises(ValueError):
            LinearPreference([np.inf, 1.0])

    def test_dimension_mismatch_fails_fast(self, tiny):
        with pytest.raises(ValueError):
            durable_topk(tiny, LinearPreference([1.0, 2.0]), k=1, tau=1)


class TestWriterCrash:
    """Kill the LiveMiniDB writer mid-append; reopen must recover a
    consistent table: every sealed segment intact, every flushed WAL row
    replayed, the torn in-flight entry dropped."""

    def _populate(self, directory, rows, seal_at):
        store = LiveMiniDB(directory, d=2, seal_rows=None, buffer_pages=16)
        for i, row in enumerate(rows):
            store.append(row)
            if i + 1 == seal_at:
                store.seal()
        store.flush()
        return store

    def test_kill_mid_append_replays_wal_losslessly(self, tmp_path):
        rng = np.random.default_rng(17)
        rows = rng.random((500, 2))
        store = self._populate(tmp_path / "db", rows, seal_at=300)
        # The writer dies halfway through the next append's WAL write:
        # a partial entry reaches the file, the process never returns.
        store.wal._file.write(b"\x42" * 13)
        store.wal._file.flush()
        del store  # no close(): the crash

        recovered = LiveMiniDB(tmp_path / "db")
        assert recovered.sealed_rows == 300  # no lost sealed segments
        assert recovered.n == 500  # all flushed tail rows replayed
        assert recovered.wal.recovered.torn_bytes == 13
        u = np.array([0.6, 0.4])
        report = t_hop_procedure(recovered, u, 2, 60)
        assert report.ids == brute_force_durable_topk(rows @ u, 2, 0, 499, 60)
        recovered.close()

    def test_unflushed_appends_are_lost_but_store_is_consistent(self, tmp_path):
        rng = np.random.default_rng(18)
        rows = rng.random((200, 2))
        store = self._populate(tmp_path / "db2", rows, seal_at=150)
        store.append(rng.random(2))  # buffered only, never flushed
        del store

        recovered = LiveMiniDB(tmp_path / "db2")
        assert recovered.n == 200  # the unflushed row is gone, rest intact
        assert recovered.sealed_rows == 150
        recovered.close()

    def test_crash_between_manifest_and_wal_truncate_does_not_duplicate(self, tmp_path):
        """A seal that died after committing the manifest but before
        truncating the WAL must not replay the sealed rows a second time
        (the manifest records the sealed WAL generation)."""
        rng = np.random.default_rng(20)
        rows = rng.random((120, 2))
        store = self._populate(tmp_path / "db4", rows, seal_at=0)
        # Replay seal() by hand, stopping right before wal.reset().
        values = np.asarray(store._tail, dtype=float)
        from repro.minidb.blockindex import BlockSkylineIndex

        store.table.append_rows(values)
        store.segments.append(
            BlockSkylineIndex(
                values, store.pager, store.buffer,
                block_rows=store.block_rows, fanout=store.fanout, row_base=0,
            )
        )
        store.pager.sync()
        store._sealed_generation = store.wal.generation
        store._write_manifest()
        del store  # crash before wal.reset() / _tail.clear()

        recovered = LiveMiniDB(tmp_path / "db4")
        assert recovered.n == 120  # not 240: sealed rows not replayed
        assert recovered.sealed_rows == 120
        u = np.array([0.4, 0.6])
        report = t_hop_procedure(recovered, u, 2, 30)
        assert report.ids == brute_force_durable_topk(rows @ u, 2, 0, 119, 30)
        # The recovered store keeps working: append, seal, reopen again.
        recovered.append(rng.random(2), flush=True)
        recovered.seal()
        recovered.close()
        again = LiveMiniDB(tmp_path / "db4")
        assert again.n == 121 and again.sealed_rows == 121
        again.close()

    def test_pooled_session_survives_partial_page_top_up(self, tmp_path):
        """A session whose page-score vector was cached before a seal
        topped up that page must re-decode, not read out of bounds."""
        store = LiveMiniDB(tmp_path / "db5", d=2, seal_rows=None, buffer_pages=16)
        rng = np.random.default_rng(30)
        first = rng.random((5, 2))  # far fewer rows than fit on a page
        for row in first:
            store.append(row)
        store.seal()
        u = np.array([0.5, 0.5])
        session = store.session(u)
        assert store.score_of(u, 2, session=session) == pytest.approx(first[2] @ u)
        later = rng.random((20, 2))  # lands on the same (topped-up) page
        for row in later:
            store.append(row)
        store.seal()
        every = np.vstack([first, later])
        for row_id in (2, 7, 19):  # old slot, new slots on the same page
            assert store.score_of(u, row_id, session=session) == pytest.approx(
                every[row_id] @ u
            )
        store.close()

    def test_crash_between_pages_and_manifest_rolls_back(self, tmp_path):
        """A seal that died after writing pages but before committing the
        manifest must roll back to the WAL copy on reopen."""
        rng = np.random.default_rng(19)
        rows = rng.random((400, 2))
        store = self._populate(tmp_path / "db3", rows, seal_at=250)
        # Simulate the torn seal: pages + index written, manifest not.
        values = np.asarray(store._tail, dtype=float)
        store.table.append_rows(values)
        store.pager.sync()
        del store  # crash before _write_manifest / wal.reset

        recovered = LiveMiniDB(tmp_path / "db3")
        assert recovered.sealed_rows == 250  # uncommitted pages discarded
        assert recovered.n == 400  # rows still recovered via the WAL
        u = np.array([0.5, 0.5])
        report = t_hop_procedure(recovered, u, 1, 40)
        assert report.ids == brute_force_durable_topk(rows @ u, 1, 0, 399, 40)
        recovered.close()


class TestBadDatasets:
    def test_empty_dataset_query_fails(self):
        data = Dataset(np.zeros((0, 2)).reshape(0, 2))
        engine = DurableTopKEngine(data)
        with pytest.raises(ValueError):
            engine.query(DurableTopKQuery(k=1, tau=1), LinearPreference([1.0, 1.0]))

    def test_values_coerced_to_float(self):
        data = Dataset(np.array([[1], [2]], dtype=int))
        assert data.values.dtype == np.float64
