"""Tests for claim generation."""

import numpy as np
import pytest

from repro.core.claims import claim_for, claims_for_result
from repro.core.engine import DurableTopKEngine
from repro.core.query import Direction, DurableTopKQuery
from repro.core.record import Dataset
from repro.scoring import LinearPreference


@pytest.fixture()
def dataset():
    return Dataset(
        np.array([[10.0], [25.0], [15.0], [30.0]]),
        timestamps=["2001", "2002", "2003", "2004"],
        labels=["Ann", "Bob", "Cat", "Dan"],
        attribute_names=["points"],
    )


class TestClaimFor:
    def test_basic_past_claim(self, dataset):
        text = claim_for(dataset, 3, k=1, tau=2, highlight_dim=0)
        assert text == (
            "On 2004, Dan recorded points = 30 — the top record of the "
            "preceding 3 arrivals."
        )

    def test_topk_phrase(self, dataset):
        assert "top-3 record" in claim_for(dataset, 3, k=3, tau=2)

    def test_unit_conversion(self, dataset):
        text = claim_for(dataset, 3, k=1, tau=2, slots_per_unit=1, unit="year")
        assert "3 years" in text

    def test_duration_upgrades_span(self, dataset):
        text = claim_for(dataset, 3, k=1, tau=1, duration=2, slots_per_unit=1, unit="year")
        assert "3 years" in text  # duration 2 -> 3 slots, not the queried 1

    def test_whole_history(self, dataset):
        text = claim_for(dataset, 3, k=1, tau=1, duration=dataset.n)
        assert "entire recorded history" in text

    def test_future_direction_phrasing(self, dataset):
        text = claim_for(dataset, 1, k=1, tau=2, direction=Direction.FUTURE)
        assert "remained" in text
        assert "following" in text

    def test_fallbacks_without_labels(self):
        data = Dataset(np.array([[1.0], [2.0]]))
        text = claim_for(data, 1, k=1, tau=1)
        assert "record 1" in text
        assert "t=1" in text


class TestClaimsForResult:
    def test_renders_all_answers(self, dataset):
        engine = DurableTopKEngine(dataset)
        res = engine.query(
            DurableTopKQuery(k=1, tau=2), LinearPreference([1.0]), algorithm="t-hop"
        )
        claims = claims_for_result(dataset, res, highlight_dim=0)
        assert len(claims) == len(res.ids)
        assert all(c.startswith("On ") for c in claims)

    def test_orders_by_duration_when_available(self, dataset):
        engine = DurableTopKEngine(dataset)
        res = engine.query(
            DurableTopKQuery(k=1, tau=1),
            LinearPreference([1.0]),
            algorithm="t-hop",
            with_durations=True,
        )
        claims = claims_for_result(dataset, res)
        # The most durable record's claim comes first.
        best = max(res.durations, key=res.durations.get)
        assert dataset.record(best).label in claims[0]

    def test_limit(self, dataset):
        engine = DurableTopKEngine(dataset)
        res = engine.query(
            DurableTopKQuery(k=2, tau=1), LinearPreference([1.0]), algorithm="t-hop"
        )
        assert len(claims_for_result(dataset, res, limit=1)) == 1
