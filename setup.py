"""Legacy shim so editable installs work without the `wheel` package.

`pip install -e .` needs to build a wheel on modern pip; in fully offline
environments without the `wheel` distribution, `python setup.py develop`
installs the same editable package. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
