"""Network-connection generator (the paper's KDD Cup 1999 substitute).

The paper's Network dataset has ~5M connection records with 37 numeric
attributes (duration, bytes transferred, login counts, error rates, ...),
MinMax-normalised per attribute. This generator reproduces the features
that matter to the algorithms:

* **heavy-tailed magnitudes** — durations and byte counts are log-normal /
  Pareto with a point mass at zero, so scores have extreme upper tails;
* **bursty anomalies** — short windows of injected attack-like sessions
  (all features elevated simultaneously), giving the durable top-k query
  something real to find;
* **mixed attribute types** — counts (Poisson), rates in ``[0, 1]``
  (Beta), and near-binary flags, matching KDD'99's column mix;
* **MinMax normalisation** exactly as in Section VI-A.

Network-X variants take the first X attributes, as the paper does.
"""

from __future__ import annotations

import numpy as np

from repro.core.record import Dataset

__all__ = ["NETWORK_ATTRIBUTES", "generate_network", "network_variant", "minmax_normalise"]

#: 37 attribute names in KDD'99 style; the first few are the ones the
#: paper's Network-2/3/5 variants use.
NETWORK_ATTRIBUTES = (
    ["duration", "src_bytes", "dst_bytes", "num_logins", "num_servers"]
    + ["count", "srv_count", "num_failed_logins", "num_compromised", "num_root"]
    + [f"rate_{i}" for i in range(15)]
    + [f"flag_{i}" for i in range(12)]
)


def minmax_normalise(values: np.ndarray) -> np.ndarray:
    """Per-column MinMax scaling to ``[0, 1]`` (constant columns -> 0)."""
    values = np.asarray(values, dtype=float)
    lo = values.min(axis=0)
    hi = values.max(axis=0)
    span = hi - lo
    span[span == 0.0] = 1.0
    return (values - lo) / span


def generate_network(
    n: int = 30_000,
    seed: int = 11,
    anomaly_rate: float = 0.01,
    normalise: bool = True,
) -> Dataset:
    """Generate ``n`` connection records with 37 numeric attributes.

    ``anomaly_rate`` controls the fraction of injected attack-like
    sessions (bursty in time, elevated in every dimension).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 <= anomaly_rate < 1:
        raise ValueError(f"anomaly_rate must be in [0, 1), got {anomaly_rate}")
    rng = np.random.default_rng(seed)
    d = len(NETWORK_ATTRIBUTES)

    duration = rng.lognormal(1.0, 1.8, n) * (rng.random(n) > 0.35)
    src_bytes = rng.pareto(1.3, n) * 1e3 * (rng.random(n) > 0.2)
    dst_bytes = rng.pareto(1.5, n) * 5e2 * (rng.random(n) > 0.3)
    num_logins = rng.poisson(0.6, n).astype(float)
    num_servers = rng.poisson(1.5, n).astype(float)
    count = rng.poisson(8.0, n).astype(float)
    srv_count = rng.poisson(6.0, n).astype(float)
    failed = rng.poisson(0.05, n).astype(float)
    compromised = rng.poisson(0.02, n).astype(float)
    root = rng.poisson(0.01, n).astype(float)
    rates = rng.beta(0.7, 4.0, size=(n, 15))
    flags = (rng.random((n, 12)) < rng.beta(1.0, 8.0, size=12)).astype(float)

    values = np.column_stack(
        [
            duration,
            src_bytes,
            dst_bytes,
            num_logins,
            num_servers,
            count,
            srv_count,
            failed,
            compromised,
            root,
            rates,
            flags,
        ]
    )
    assert values.shape == (n, d)

    # Inject bursty anomalies: contiguous runs with all features elevated.
    n_anomalies = int(n * anomaly_rate)
    placed = 0
    while placed < n_anomalies:
        burst = min(rng.integers(1, 12), n_anomalies - placed)
        start = rng.integers(0, n - burst)
        boost = 1.0 + rng.pareto(1.0) * 3.0
        values[start : start + burst, :10] *= boost
        values[start : start + burst, 10:25] = np.clip(
            values[start : start + burst, 10:25] * boost, 0.0, 1.0
        )
        placed += burst

    if normalise:
        values = minmax_normalise(values)
    return Dataset(values, attribute_names=NETWORK_ATTRIBUTES, name=f"network-{n}")


def network_variant(dataset: Dataset, x: int) -> Dataset:
    """Network-X: the first ``x`` attributes, as in Section VI-A."""
    if not 1 <= x <= dataset.d:
        raise ValueError(f"x must be in [1, {dataset.d}], got {x}")
    return dataset.select_attributes(list(range(x)), name=f"network-{x}d")
