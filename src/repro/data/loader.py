"""Loading instant-stamped records from delimited text files.

Users with the paper's real datasets (or any timestamped CSV) can load
them directly; rows are sorted by the timestamp column (stable, ties keep
file order — the paper's "ties broken arbitrarily") and non-numeric
attribute columns are rejected loudly rather than silently coerced.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.record import Dataset

__all__ = ["load_csv"]


def load_csv(
    path: str | Path,
    timestamp_column: str,
    attribute_columns: Sequence[str] | None = None,
    label_column: str | None = None,
    delimiter: str = ",",
    name: str | None = None,
) -> Dataset:
    """Load a delimited file into a :class:`Dataset`.

    Parameters
    ----------
    path:
        File with a header row.
    timestamp_column:
        Column holding the arrival timestamp. Parsed as float when
        possible, else kept as string (strings must sort chronologically,
        e.g. ISO dates).
    attribute_columns:
        Ranking attributes (default: every numeric column except the
        timestamp and label columns).
    label_column:
        Optional human-readable label column.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise ValueError(f"{path} has no header row")
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} contains no data rows")
    if timestamp_column not in reader.fieldnames:
        raise KeyError(f"timestamp column {timestamp_column!r} not in {reader.fieldnames}")
    if label_column is not None and label_column not in reader.fieldnames:
        raise KeyError(f"label column {label_column!r} not in {reader.fieldnames}")

    if attribute_columns is None:
        excluded = {timestamp_column, label_column}
        attribute_columns = [
            col
            for col in reader.fieldnames
            if col not in excluded and _is_numeric_column(rows, col)
        ]
        if not attribute_columns:
            raise ValueError(f"{path}: no numeric attribute columns found")
    else:
        missing = [c for c in attribute_columns if c not in reader.fieldnames]
        if missing:
            raise KeyError(f"attribute columns not in file: {missing}")

    timestamps = [_parse_timestamp(row[timestamp_column]) for row in rows]
    values = np.empty((len(rows), len(attribute_columns)))
    for j, col in enumerate(attribute_columns):
        for i, row in enumerate(rows):
            try:
                values[i, j] = float(row[col])
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path}: row {i + 2} column {col!r} is not numeric: {row[col]!r}"
                ) from None

    labels = [row[label_column] for row in rows] if label_column else None
    pairs = [(timestamps[i], values[i]) for i in range(len(rows))]
    return Dataset.from_records(
        pairs,
        labels=labels,
        attribute_names=list(attribute_columns),
        name=name or path.stem,
    )


def _parse_timestamp(raw: str):
    try:
        return float(raw)
    except (TypeError, ValueError):
        return raw


def _is_numeric_column(rows: list[dict], col: str) -> bool:
    for row in rows[:50]:
        try:
            float(row[col])
        except (TypeError, ValueError):
            return False
    return True
