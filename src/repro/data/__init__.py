"""Dataset generators reproducing the shapes of the paper's workloads.

The paper evaluates on two real datasets (NBA box scores, KDD Cup 1999
network connections) and synthetic 2-D data (independent and
anti-correlated). The real datasets are not redistributable, so this
package generates synthetic equivalents that preserve the properties the
algorithms are sensitive to: score-distribution tails, temporal trends,
attribute correlation structure and dimensionality. See DESIGN.md
("Substitutions") for the full rationale.
"""

from repro.data.loader import load_csv
from repro.data.nba import NBA_ATTRIBUTES, NBA_VARIANTS, generate_nba, nba_variant
from repro.data.network import NETWORK_ATTRIBUTES, generate_network, network_variant
from repro.data.synthetic import (
    anticorrelated,
    correlated,
    independent_uniform,
    random_permutation_scores,
    synthetic_dataset,
)

__all__ = [
    "load_csv",
    "independent_uniform",
    "anticorrelated",
    "correlated",
    "synthetic_dataset",
    "random_permutation_scores",
    "generate_nba",
    "nba_variant",
    "NBA_ATTRIBUTES",
    "NBA_VARIANTS",
    "generate_network",
    "network_variant",
    "NETWORK_ATTRIBUTES",
]
