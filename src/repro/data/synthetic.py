"""Synthetic data generators (Section VI-A, "Syn" and the RPM model).

* ``independent_uniform`` — IND: iid uniform attributes in the unit cube.
* ``anticorrelated`` — ANTI: points drawn from the positive orthant of an
  annulus centred at the origin with radii ``[0.8, 1.0]`` (Figure 7.(2)),
  the distribution that inflates every k-skyband.
* ``correlated`` — an additional generator (positively correlated
  attributes, the easy case for skybands) for ablations.
* ``random_permutation_scores`` — the random permutation model of Section
  V-A: an adversary-chosen multiset of values dealt to arrival slots in a
  uniformly random order.
"""

from __future__ import annotations

import numpy as np

from repro.core.record import Dataset

__all__ = [
    "independent_uniform",
    "anticorrelated",
    "correlated",
    "synthetic_dataset",
    "random_permutation_scores",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def independent_uniform(n: int, d: int = 2, seed: int | np.random.Generator | None = 0) -> Dataset:
    """IND: ``n`` records with ``d`` iid U[0, 1] attributes.

    >>> independent_uniform(100, 2).values.shape
    (100, 2)
    """
    if n < 1 or d < 1:
        raise ValueError(f"n and d must be >= 1, got n={n}, d={d}")
    rng = _rng(seed)
    return Dataset(rng.random((n, d)), name=f"syn-ind-{n}x{d}")


def anticorrelated(
    n: int,
    d: int = 2,
    seed: int | np.random.Generator | None = 0,
    inner_radius: float = 0.8,
    outer_radius: float = 1.0,
) -> Dataset:
    """ANTI: points on the positive orthant of an annulus.

    Directions are uniform over the positive orthant of the unit sphere
    (absolute values of Gaussians, normalised); radii are drawn so the
    points are uniform over the annulus volume. With the paper's defaults
    (``0.8``–``1.0``) most records end up mutually non-dominating, blowing
    up the k-skyband exactly as in Figure 7.(2).
    """
    if not 0 < inner_radius < outer_radius:
        raise ValueError(
            f"need 0 < inner_radius < outer_radius, got {inner_radius}, {outer_radius}"
        )
    rng = _rng(seed)
    directions = np.abs(rng.standard_normal((n, d)))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    u = rng.random(n)
    radii = (inner_radius**d + u * (outer_radius**d - inner_radius**d)) ** (1.0 / d)
    return Dataset(directions * radii[:, None], name=f"syn-anti-{n}x{d}")


def correlated(
    n: int, d: int = 2, seed: int | np.random.Generator | None = 0, rho: float = 0.8
) -> Dataset:
    """Positively correlated attributes (a shared latent quality factor)."""
    if not 0 <= rho <= 1:
        raise ValueError(f"rho must be in [0, 1], got {rho}")
    rng = _rng(seed)
    latent = rng.random((n, 1))
    noise = rng.random((n, d))
    values = rho * latent + (1 - rho) * noise
    return Dataset(np.clip(values, 0.0, 1.0), name=f"syn-corr-{n}x{d}")


def synthetic_dataset(
    kind: str, n: int, d: int = 2, seed: int | np.random.Generator | None = 0
) -> Dataset:
    """Dispatch on ``kind`` in {"ind", "anti", "corr"} (Syn-X datasets)."""
    if kind == "ind":
        return independent_uniform(n, d, seed)
    if kind == "anti":
        return anticorrelated(n, d, seed)
    if kind == "corr":
        return correlated(n, d, seed)
    raise ValueError(f"unknown synthetic kind {kind!r}; expected ind/anti/corr")


def random_permutation_scores(
    n: int,
    seed: int | np.random.Generator | None = 0,
    values: np.ndarray | None = None,
) -> np.ndarray:
    """Scores under the random permutation model (Section V-A).

    ``values`` is the adversary-chosen multiset (default: a heavy-tailed
    deterministic sequence, so the adversary is non-trivial); the model
    assigns them to arrival slots via a uniformly random permutation.
    """
    rng = _rng(seed)
    if values is None:
        # Deterministic, adversary-style values: exponentially spread so
        # magnitudes are wildly uneven, yet all distinct.
        values = np.exp(np.linspace(0.0, 12.0, n)) + np.arange(n) * 1e-9
    values = np.asarray(values, dtype=float)
    if len(values) != n:
        raise ValueError(f"values length {len(values)} != n={n}")
    return values[rng.permutation(n)]
