"""NBA-like box-score generator (the paper's NBA dataset substitute).

The paper's NBA dataset holds ~1M per-player per-game stat lines
(1983–2019) with 15 numeric attributes. That data is not redistributable,
so this module synthesises box scores with the structural properties the
durable top-k algorithms actually exercise:

* **heavy-tailed talent**: player skill is log-normal, so a few players
  produce most extreme records — the source of long-durability records;
* **era drift**: league-wide pace/scoring multipliers drift over seasons
  (the paper's Duncan-2009 example exists *because* of a low-rebound era);
* **correlated attributes**: minutes played drives every counting stat,
  and rebounds split into offensive/defensive shares, mimicking the
  correlation structure of real box scores;
* **integer-valued stats** with plenty of ties at low values, stressing
  the canonical tie-breaking.

The 15 attributes and the NBA-X variants (NBA-1/2/3/5) match Section VI-A.
"""

from __future__ import annotations

import numpy as np

from repro.core.record import Dataset

__all__ = ["NBA_ATTRIBUTES", "NBA_VARIANTS", "generate_nba", "nba_variant"]

#: The 15 numeric attributes of the generated box scores.
NBA_ATTRIBUTES = [
    "points",
    "assists",
    "rebounds",
    "steals",
    "blocks",
    "three_pointers_made",
    "field_goals_made",
    "field_goals_attempted",
    "free_throws_made",
    "free_throws_attempted",
    "offensive_rebounds",
    "defensive_rebounds",
    "turnovers",
    "minutes",
    "personal_fouls",
]

#: Attribute subsets defining the paper's NBA-X datasets.
NBA_VARIANTS = {
    1: ["three_pointers_made"],
    2: ["points", "assists"],
    3: ["points", "assists", "rebounds"],
    5: ["points", "assists", "rebounds", "steals", "blocks"],
}

_FIRST_SEASON = 1983
_LAST_SEASON = 2019


def _era_pace(seasons: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Smooth league-wide multiplier per season: high 80s, dip mid-2000s."""
    span = _LAST_SEASON - _FIRST_SEASON
    x = (seasons - _FIRST_SEASON) / span
    base = 1.1 - 0.35 * np.sin(np.pi * x) ** 2 + 0.25 * x**2
    wiggle = 0.03 * np.sin(7.3 * np.pi * x + rng.random() * np.pi)
    return base + wiggle


def generate_nba(n: int = 20_000, seed: int = 7, n_players: int | None = None) -> Dataset:
    """Generate ``n`` chronologically ordered synthetic box scores.

    Timestamps are synthetic ``(season, game_index)`` labels; labels are
    synthetic player names. Deterministic for a given ``(n, seed)``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    n_players = n_players or max(50, n // 200)

    # Player skill: log-normal "stardom" plus per-stat specialisation.
    stardom = rng.lognormal(mean=0.0, sigma=0.45, size=n_players)
    specialisation = rng.dirichlet(np.ones(5) * 2.0, size=n_players)  # pts/ast/reb/stl/blk

    seasons = np.sort(rng.integers(_FIRST_SEASON, _LAST_SEASON + 1, size=n))
    pace = _era_pace(seasons.astype(float), rng)
    players = rng.integers(0, n_players, size=n)
    star = stardom[players]
    spec = specialisation[players]

    minutes = np.clip(rng.normal(24, 9, size=n) + 6 * np.log(star), 4, 48)
    usage = minutes / 36.0 * pace  # per-record opportunity factor

    def counting_stat(base_rate: float, spec_col: int, dispersion: float = 1.0) -> np.ndarray:
        lam = base_rate * usage * star * (0.4 + 3.0 * spec[:, spec_col]) * dispersion
        return rng.poisson(np.maximum(lam, 0.01)).astype(float)

    points_2 = counting_stat(7.0, 0)
    three_made = rng.poisson(
        np.maximum(1.2 * usage * star * spec[:, 0] * np.clip((seasons - 1990) / 25.0, 0.05, 1.5), 0.01)
    ).astype(float)
    assists = counting_stat(4.5, 1)
    oreb = counting_stat(2.2, 2)
    dreb = counting_stat(5.0, 2)
    rebounds = oreb + dreb
    steals = counting_stat(1.3, 3)
    blocks = counting_stat(1.1, 4)
    ftm = counting_stat(3.2, 0, dispersion=0.8)
    fta = ftm + rng.poisson(0.6 * usage, size=n)
    fgm = points_2  # 2-pt makes
    fga = fgm + rng.poisson(np.maximum(5.5 * usage, 0.01)).astype(float)
    points = 2 * points_2 + 3 * three_made + ftm
    turnovers = counting_stat(2.0, 1, dispersion=0.7)
    fouls = np.minimum(rng.poisson(2.2 * usage, size=n), 6).astype(float)

    values = np.column_stack(
        [
            points,
            assists,
            rebounds,
            steals,
            blocks,
            three_made,
            fgm,
            fga,
            ftm,
            fta,
            oreb,
            dreb,
            turnovers,
            minutes,
            fouls,
        ]
    )
    game_in_season = np.zeros(n, dtype=int)
    counts: dict[int, int] = {}
    for i, s in enumerate(seasons):
        counts[s] = counts.get(s, 0) + 1
        game_in_season[i] = counts[s]
    timestamps = [f"{s}-g{g:05d}" for s, g in zip(seasons, game_in_season)]
    labels = [f"Player{p:04d}" for p in players]
    return Dataset(
        values,
        timestamps=timestamps,
        labels=labels,
        attribute_names=NBA_ATTRIBUTES,
        name=f"nba-{n}",
    )


def nba_variant(dataset: Dataset, x: int) -> Dataset:
    """The paper's NBA-X attribute subset of a generated NBA dataset.

    >>> nba_variant(generate_nba(100), 2).attribute_names
    ['points', 'assists']
    """
    if x not in NBA_VARIANTS:
        raise ValueError(f"NBA-{x} is not defined; choose from {sorted(NBA_VARIANTS)}")
    return dataset.select_attributes(NBA_VARIANTS[x], name=f"nba-{x}d")
