"""Preference functions parameterised by a user vector ``u`` (Section II).

* :class:`LinearPreference` — ``f_u(p) = sum_i u_i * p.x_i``;
* :class:`MonotonePreference` — ``f_u(p) = sum_i u_i * h(p.x_i)`` for a
  monotone transform ``h`` (e.g. ``log``);
* :class:`CosinePreference` — cosine similarity between ``p`` and ``u``
  (not monotone: normalisation breaks Pareto ordering, so it exercises the
  "arbitrary scoring function" path of the algorithms).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.scoring.base import ScoringFunction

__all__ = ["LinearPreference", "MonotonePreference", "CosinePreference", "random_preference"]


def _as_weight_vector(u) -> np.ndarray:
    u = np.asarray(u, dtype=float)
    if u.ndim != 1 or len(u) == 0:
        raise ValueError(f"preference vector must be 1-D and non-empty, got shape {u.shape}")
    if not np.isfinite(u).all():
        raise ValueError("preference vector must be finite")
    return u


class LinearPreference(ScoringFunction):
    """Weighted sum of attributes.

    Monotone when every weight is non-negative (the paper's setting);
    negative weights are accepted but drop the monotonicity flag, which
    routes queries away from the skyline/k-skyband machinery.
    """

    def __init__(self, u) -> None:
        self.u = _as_weight_vector(u)
        self.is_monotone = bool(np.all(self.u >= 0))
        self.is_strictly_monotone = bool(np.all(self.u > 0))
        self.name = f"linear(d={len(self.u)})"

    def scores(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        return values @ self.u

    def validate_for(self, d: int) -> None:
        if len(self.u) != d:
            raise ValueError(f"preference vector has {len(self.u)} weights but data has d={d}")


class MonotonePreference(ScoringFunction):
    """Weighted sum of a monotone transform of each attribute.

    ``transform`` must be a vectorised non-decreasing function; ``log1p``
    is the default, matching the paper's ``h(.) = log(.)`` example while
    staying defined at zero.
    """

    def __init__(
        self,
        u,
        transform: Callable[[np.ndarray], np.ndarray] = np.log1p,
        transform_name: str = "log1p",
        strictly_increasing: bool = True,
    ) -> None:
        self.u = _as_weight_vector(u)
        self.transform = transform
        self.is_monotone = bool(np.all(self.u >= 0))
        self.is_strictly_monotone = bool(np.all(self.u > 0)) and strictly_increasing
        self.name = f"monotone({transform_name}, d={len(self.u)})"

    def scores(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        return self.transform(values) @ self.u

    def validate_for(self, d: int) -> None:
        if len(self.u) != d:
            raise ValueError(f"preference vector has {len(self.u)} weights but data has d={d}")


class CosinePreference(ScoringFunction):
    """Cosine similarity between the record and the preference vector.

    ``f_u(p) = (u . p) / (|u| |p|)``; records at the origin score 0.
    Deliberately *not* monotone: a dominated record can point closer to
    ``u``'s direction. Use with the score-array building block.
    """

    is_monotone = False

    def __init__(self, u) -> None:
        self.u = _as_weight_vector(u)
        norm = float(np.linalg.norm(self.u))
        if norm == 0.0:
            raise ValueError("cosine preference vector must be non-zero")
        self._unit = self.u / norm
        self.name = f"cosine(d={len(self.u)})"

    def scores(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        norms = np.linalg.norm(values, axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = (values @ self._unit) / norms
        out[norms == 0.0] = 0.0
        return out

    def validate_for(self, d: int) -> None:
        if len(self.u) != d:
            raise ValueError(f"preference vector has {len(self.u)} weights but data has d={d}")


def random_preference(rng: np.random.Generator, d: int, kind: str = "uniform") -> np.ndarray:
    """A random non-negative preference vector, normalised to sum 1.

    The experiments (Section VI) average each data point over queries with
    randomly generated preference vectors; this is the generator they use.

    ``kind`` is ``"uniform"`` (iid U[0,1] weights, renormalised) or
    ``"dirichlet"`` (flat Dirichlet — uniform over the simplex).
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if kind == "uniform":
        u = rng.random(d) + 1e-9
    elif kind == "dirichlet":
        u = np.maximum(rng.dirichlet(np.ones(d)), 1e-12)
    else:
        raise ValueError(f"unknown preference kind: {kind!r}")
    return u / u.sum()
