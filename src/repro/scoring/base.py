"""Scoring-function protocol.

A scoring function maps a record's ``d`` attributes to one real score used
for ranking (``f: R^d -> R``). Monotone functions additionally promise that
Pareto domination implies a score no lower — the property the k-skyband
candidate generation (S-Band) and the skyline-tree upper bounds rely on.
Non-monotone functions remain fully supported by every algorithm through
the score-array building block.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["ScoringFunction", "SingleAttribute"]


class ScoringFunction(ABC):
    """Base class for scoring functions.

    Subclasses implement the vectorised :meth:`scores`; everything else has
    sensible defaults.
    """

    #: Human-readable name used in reports.
    name: str = "scoring"

    #: Whether Pareto domination implies a greater-or-equal score. Only
    #: monotone functions may be used with the skyline tree.
    is_monotone: bool = False

    #: Whether Pareto domination implies a *strictly* greater score (e.g. a
    #: linear preference with all-positive weights). S-Band's candidate
    #: superset guarantee needs this: with tied scores, a record can be
    #: durable yet Pareto-dominated k times unless domination forces a
    #: strict score gap. (The paper assumes distinct scores, where the
    #: distinction vanishes.)
    is_strictly_monotone: bool = False

    @abstractmethod
    def scores(self, values: np.ndarray) -> np.ndarray:
        """Scores for an ``(n, d)`` attribute matrix, shape ``(n,)``."""

    def score_point(self, x: np.ndarray) -> float:
        """Score of one record (a ``(d,)`` vector)."""
        return float(self.scores(np.asarray(x, dtype=float)[None, :])[0])

    def validate_for(self, d: int) -> None:
        """Raise ``ValueError`` when incompatible with ``d`` attributes."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SingleAttribute(ScoringFunction):
    """Rank by one attribute — the single-dimension case of Example I.1.

    >>> import numpy as np
    >>> SingleAttribute(0).scores(np.array([[3.0, 1.0], [2.0, 9.0]]))
    array([3., 2.])
    """

    is_monotone = True

    def __init__(self, dim: int = 0) -> None:
        if dim < 0:
            raise ValueError(f"dim must be >= 0, got {dim}")
        self.dim = dim
        self.name = f"attr[{dim}]"

    def scores(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        return values[:, self.dim].copy()

    def validate_for(self, d: int) -> None:
        if self.dim >= d:
            raise ValueError(f"attribute {self.dim} out of range for d={d}")
