"""User-specified scoring functions.

The paper's algorithms accept any scoring function for which a top-k
building block exists. This package ships the three *preference function*
families called out in Section II — linear, linear combinations of monotone
transforms, and cosine — plus the protocol for plugging in custom ones.
"""

from repro.scoring.base import ScoringFunction, SingleAttribute
from repro.scoring.preference import (
    CosinePreference,
    LinearPreference,
    MonotonePreference,
    random_preference,
)

__all__ = [
    "ScoringFunction",
    "SingleAttribute",
    "LinearPreference",
    "MonotonePreference",
    "CosinePreference",
    "random_preference",
]
