"""The asyncio TCP gateway in front of :class:`DurableTopKService`.

One event loop in a dedicated thread accepts persistent connections and
speaks the length-prefixed JSON protocol of :mod:`repro.gateway.protocol`.
The loop thread never executes a query: each admitted request is handed
to the threaded service via ``service.submit``, and the returned
:class:`concurrent.futures.Future` carries a done-callback that hops
back onto the loop with ``call_soon_threadsafe`` to serialise and write
the response. No per-request asyncio task, no future wrapping, no write
lock — every write happens on the loop thread, which serialises frames
by construction. Responses therefore return in completion order (the
client matches them by echoed ``id``), slow queries never stall the
accept/read path, and same-preference requests from different
connections land in the same service batch while identical in-flight
queries coalesce — the gateway inherits the whole PR 2/6/9 serving
stack for free.

Admission on the loop thread, in order, cheapest first:

1. **auth** — ``sha256(key)`` + one dict get against the pre-hashed
   registry, *re-done per request* so a revocation is effective on the
   next frame, not the next connection;
2. **rate limit** — the tenant's token bucket (``rate_limited``);
3. **queue quota** — the tenant's in-service request ceiling
   (``queue_full``), bounding how much of the shared admission queue
   one tenant can own;
4. **drain check** — a draining gateway answers ``shutdown``.

Only then does the request cost a service queue slot; service-side
rejections (queue_full/timeout/shed/shutdown) come back as data on the
future and cross the wire as the same typed codes.

Shutdown is a graceful drain: the listener closes (new connections
refused), queries already inside the service run to completion and
their responses are flushed, then connections are torn down and the
loop exits. ``close(drain=False)`` abandons in-flight work instead.

Writes are buffered by the transport and not awaited (a reply frame is
a few hundred bytes; flow control for a client that never reads is the
kernel's socket buffer plus the drain timeout, not the request path).

Observability: per-tenant counters in the PR 7 metrics registry
(``gateway.requests{tenant,outcome}``, ``gateway.bytes_in/out``,
``gateway.connections`` gauge + ``gateway.connections_total``) feed the
Prometheus export and the ``repro top`` gateway row; resolved Counter
objects are memoised because the registry's label-key handling is too
slow for a per-request path. Each completed request retro-records a
``gateway.request`` span (rooted at arrival time via the ``_start``
override, with a ``gateway.service`` child for the submit→resolve
region) into the PR 7 trace tree — opened and closed synchronously
after completion, because the tracer's span stack is thread-local and
holding a span across an ``await`` would interleave concurrent
requests' trees.
"""

from __future__ import annotations

import asyncio
import threading
from time import perf_counter

from repro.obs import MetricsRegistry, global_registry
from repro.obs.trace import add_span, trace_span
from repro.scoring import LinearPreference

from .auth import ApiKeyRegistry, Tenant, TokenBucket, hash_key
from .protocol import (
    MAX_FRAME_BYTES,
    ErrorCode,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    error_frame,
    request_from_wire,
    response_to_wire,
)

__all__ = ["DurableTopKGateway"]

_READ_CHUNK = 1 << 16


class _Connection:
    """Per-connection state: auth, decoder, writer."""

    __slots__ = ("writer", "decoder", "digest", "tenant")

    def __init__(self, writer: asyncio.StreamWriter, max_frame_bytes: int) -> None:
        self.writer = writer
        self.decoder = FrameDecoder(max_frame_bytes)
        self.digest: str | None = None
        self.tenant: Tenant | None = None

    @property
    def tenant_label(self) -> str:
        return self.tenant.name if self.tenant is not None else "-"


class DurableTopKGateway:
    """Serve a :class:`DurableTopKService` over TCP.

    Parameters
    ----------
    service:
        The (already started) service to front. The gateway does not
        own it: closing the gateway leaves the service running.
    keys:
        An :class:`ApiKeyRegistry`, or a plain ``{plaintext_key:
        Tenant}`` dict to load into a fresh one. The registry object
        stays live — ``add``/``revoke``/``load`` on it take effect on
        the next request with no gateway restart.
    port:
        ``0`` (the default) binds an OS-assigned port, published as
        ``self.port`` once :meth:`start` returns.
    """

    def __init__(
        self,
        service,
        keys: ApiKeyRegistry | dict[str, Tenant],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        registry: MetricsRegistry | None = None,
        drain_timeout: float = 10.0,
    ) -> None:
        self.service = service
        self.keys = keys if isinstance(keys, ApiKeyRegistry) else ApiKeyRegistry(keys)
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.registry = registry if registry is not None else global_registry()
        self.drain_timeout = drain_timeout
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._draining = False
        self._drain = True
        self._closed = False
        # Requests currently inside the service across all tenants (the
        # drain barrier), plus per-tenant admission state shared across
        # that tenant's connections. Loop thread only.
        self._open = 0
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[str, int] = {}
        self._connections: set[_Connection] = set()
        # Hot preferences resolve to one shared scorer object per
        # process (the service batches by preference *content*, so this
        # is an allocation saving, not a correctness requirement).
        self._scorers: dict[tuple, LinearPreference] = {}
        # Registry series are resolved through a lock plus label-key
        # sorting; at gateway request rates that shows up, so resolved
        # Counter objects are memoised per label set (loop thread only).
        self._request_counters: dict[tuple[str, str], object] = {}
        self._byte_counters: dict[tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DurableTopKGateway":
        """Bind and serve in a background thread; returns once bound."""
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._thread = threading.Thread(
            target=self._run, name="gateway-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failure path
            self._startup_error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._idle = asyncio.Event()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        await self._stop.wait()
        # Drain: refuse new connections first, then let queries already
        # inside the service finish and write their responses.
        server.close()
        await server.wait_closed()
        if self._drain and self._open > 0:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=self.drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - stuck service
                pass
        # Flush buffered responses, then tear the connections down.
        connections = list(self._connections)
        for conn in connections:
            conn.writer.close()
        await asyncio.gather(
            *(conn.writer.wait_closed() for conn in connections),
            return_exceptions=True,
        )

    def close(self, drain: bool = True) -> None:
        """Stop serving. ``drain`` lets in-flight requests complete."""
        if self._thread is None or self._closed:
            return
        self._closed = True
        self._draining = True
        self._drain = drain
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=self.drain_timeout + 10.0)

    def __enter__(self) -> "DurableTopKGateway":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # connection handling (all on the loop thread)
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            writer.close()
            return
        conn = _Connection(writer, self.max_frame_bytes)
        self._connections.add(conn)
        self.registry.counter("gateway.connections_total").inc()
        self.registry.gauge("gateway.connections").inc()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                self._count_bytes("in", conn.tenant_label, len(data))
                try:
                    frames = conn.decoder.feed(data)
                except ProtocolError as exc:
                    # A desynchronised stream cannot be recovered —
                    # answer once, then hang up.
                    self._send(conn, error_frame(exc.code, str(exc)))
                    break
                if not all(self._dispatch(conn, frame) for frame in frames):
                    break
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(conn)
            self.registry.gauge("gateway.connections").dec()
            writer.close()

    def _dispatch(self, conn: _Connection, frame: dict) -> bool:
        """Handle one frame; False closes the connection."""
        op = frame.get("op")
        id = frame.get("id")
        if op == "query" and conn.digest is not None:
            return self._admit(conn, frame, id)
        if op == "ping":
            self._send(conn, {"op": "pong", "id": id})
            return True
        if op == "auth":
            return self._auth(conn, frame)
        if conn.digest is None:
            self._send(
                conn,
                error_frame(
                    ErrorCode.AUTH_REQUIRED, "first frame must be an auth", id=id
                ),
            )
            return False
        self._send(
            conn, error_frame(ErrorCode.BAD_REQUEST, f"unknown op {op!r}", id=id)
        )
        return True

    def _auth(self, conn: _Connection, frame: dict) -> bool:
        key = frame.get("key")
        digest = hash_key(key) if isinstance(key, str) else ""
        tenant = self.keys.lookup_hashed(digest)
        if tenant is None:
            self._count("-", "auth_failed")
            self._send(
                conn,
                error_frame(
                    ErrorCode.AUTH_FAILED, "unknown API key", id=frame.get("id")
                ),
            )
            return False
        conn.digest = digest
        conn.tenant = tenant
        self._send(
            conn, {"op": "hello", "id": frame.get("id"), "tenant": tenant.name}
        )
        return True

    def _admit(self, conn: _Connection, frame: dict, id) -> bool:
        t0 = perf_counter()
        # Re-resolve the tenant on every request: one dict get, and the
        # price of making revocation immediate rather than per-connection.
        tenant = self.keys.lookup_hashed(conn.digest)
        if tenant is None:
            self._count(conn.tenant_label, "auth_failed")
            self._send(
                conn, error_frame(ErrorCode.AUTH_FAILED, "API key revoked", id=id)
            )
            return False
        conn.tenant = tenant
        name = tenant.name
        bucket = self._buckets.get(name)
        if bucket is None or bucket.rate != tenant.rate or bucket.burst != tenant.burst:
            bucket = self._buckets[name] = TokenBucket(tenant.rate, tenant.burst)
        if not bucket.try_acquire():
            self._count(name, "rate_limited")
            self._send(
                conn,
                error_frame(
                    ErrorCode.RATE_LIMITED, f"tenant {name} over rate limit", id=id
                ),
            )
            return True
        if self._inflight.get(name, 0) >= tenant.max_inflight:
            self._count(name, "queue_full")
            self._send(
                conn,
                error_frame(
                    ErrorCode.QUEUE_FULL,
                    f"tenant {name} queue quota ({tenant.max_inflight}) exhausted",
                    id=id,
                ),
            )
            return True
        if self._draining:
            self._count(name, "shutdown")
            self._send(
                conn, error_frame(ErrorCode.SHUTDOWN, "gateway draining", id=id)
            )
            return True
        try:
            request = request_from_wire(
                frame, self._scorer_of, default_priority=tenant.priority
            )
        except ProtocolError as exc:
            self._count(name, "bad_request")
            self._send(conn, error_frame(exc.code, str(exc), id=id))
            return True
        try:
            future = self.service.submit(request)
        except Exception as exc:
            self._count(name, "internal")
            self._send(conn, error_frame(ErrorCode.INTERNAL, repr(exc), id=id))
            return True
        self._inflight[name] = self._inflight.get(name, 0) + 1
        self._open += 1
        future.add_done_callback(
            lambda f, conn=conn, id=id, name=name, t0=t0: self._resolved(
                conn, id, name, f, t0
            )
        )
        return True

    def _resolved(self, conn: _Connection, id, name: str, future, t0: float) -> None:
        """Future done-callback (any thread): hop onto the loop."""
        loop = self._loop
        if loop is None or loop.is_closed():  # pragma: no cover - late completion
            return
        try:
            loop.call_soon_threadsafe(self._complete, conn, id, name, future, t0)
        except RuntimeError:  # pragma: no cover - loop shut down mid-call
            pass

    def _complete(self, conn: _Connection, id, name: str, future, t0: float) -> None:
        """Serialise and write one response (loop thread)."""
        try:
            try:
                response = future.result()
            except BaseException as exc:
                outcome = "internal"
                payload = error_frame(ErrorCode.INTERNAL, repr(exc), id=id)
                service_seconds = perf_counter() - t0
            else:
                outcome = "ok" if response.ok else response.error.reason.value
                payload = response_to_wire(response, id=id)
                service_seconds = response.total_seconds
            self._trace(name, outcome, t0, service_seconds)
            self._count(name, outcome)
            self._send(conn, payload)
        finally:
            self._inflight[name] = max(0, self._inflight.get(name, 0) - 1)
            self._open -= 1
            if self._open <= 0 and self._draining and self._idle is not None:
                self._idle.set()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _send(self, conn: _Connection, payload: dict) -> None:
        data = encode_frame(payload)
        try:
            conn.writer.write(data)
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            return
        self._count_bytes("out", conn.tenant_label, len(data))

    def _count(self, tenant: str, outcome: str) -> None:
        counter = self._request_counters.get((tenant, outcome))
        if counter is None:
            counter = self._request_counters[(tenant, outcome)] = self.registry.counter(
                "gateway.requests", tenant=tenant, outcome=outcome
            )
        counter.inc()

    def _count_bytes(self, direction: str, tenant: str, amount: int) -> None:
        counter = self._byte_counters.get((direction, tenant))
        if counter is None:
            counter = self._byte_counters[(direction, tenant)] = self.registry.counter(
                f"gateway.bytes_{direction}", tenant=tenant
            )
        counter.inc(amount)

    def _trace(self, name: str, outcome: str, t0: float, service_seconds: float) -> None:
        # Retro-recorded: opened *after* completion with the arrival
        # time as ``_start`` (the tracer's stack is thread-local, so a
        # span held across an await would interleave with concurrent
        # requests). No awaits between open and close.
        with trace_span("gateway.request", _start=t0, tenant=name, outcome=outcome):
            add_span("gateway.service", t0, service_seconds)

    def _scorer_of(self, weights: tuple) -> LinearPreference:
        scorer = self._scorers.get(weights)
        if scorer is None:
            if len(self._scorers) > 4096:
                self._scorers.clear()
            scorer = self._scorers[weights] = LinearPreference(list(weights))
        return scorer
