"""Tenant identity and admission budgets for the gateway.

The hot path is one dict lookup. Passport-scorer's
``API_KEY_PERFORMANCE_FIX.md`` (see `/root/related/`) documents the
anti-pattern this module is designed against: validating an API key
with a per-request bcrypt-style *slow* hash added ~2.5 s to every
request. Here keys are hashed once — SHA-256 at registry load time —
and the per-request cost is ``sha256(key)`` (sub-microsecond) plus a
single ``dict.get`` against the pre-hashed table. Plaintext keys are
never stored server-side.

Registry mutation (load/add/revoke) happens off the hot path and swaps
the lookup dict atomically (CPython dict assignment is a single store),
so readers never lock: a revocation is visible to the very next request
because every request re-resolves its tenant — connections do not cache
an admission decision.

Each :class:`Tenant` carries its admission budgets:

* ``rate``/``burst`` — a token bucket (tokens replenish continuously at
  ``rate`` per second up to ``burst``) refusing work *before* it costs a
  service queue slot, with the ``rate_limited`` wire code;
* ``max_inflight`` — a per-tenant queue quota: how many of the tenant's
  requests may be inside the service (queued or executing) at once, so
  one tenant's backlog cannot monopolise the shared bounded admission
  queue. Refusals reuse the service's ``queue_full`` rejection code.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass

__all__ = ["ApiKeyRegistry", "Tenant", "TokenBucket", "hash_key"]


def hash_key(key: str) -> str:
    """The stored/lookup form of an API key (hex SHA-256)."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Tenant:
    """One paying customer's identity and admission budgets."""

    name: str
    #: Sustained requests/second (token-bucket refill rate).
    rate: float = 100.0
    #: Bucket capacity — the burst a quiet tenant may spend at once.
    burst: float = 50.0
    #: Per-tenant queue quota: max requests in the service at once.
    max_inflight: int = 64
    #: Default service priority for the tenant's requests (requests may
    #: still lower their own; see RejectionReason.SHED).
    priority: int = 0


class ApiKeyRegistry:
    """Pre-hashed API-key → :class:`Tenant` table with atomic refresh.

    ``lookup_hashed`` is the per-request fast path: one dict get, no
    lock. The write side (:meth:`load`, :meth:`add`, :meth:`revoke`)
    serialises under a lock, builds the new table off to the side and
    publishes it with a single reference swap.
    """

    def __init__(self, keys: dict[str, Tenant] | None = None) -> None:
        self._write_lock = threading.Lock()
        self._by_hash: dict[str, Tenant] = {}
        if keys:
            self.load(keys)

    def load(self, keys: dict[str, Tenant]) -> None:
        """Replace the whole table (full registry refresh)."""
        table = {hash_key(key): tenant for key, tenant in keys.items()}
        with self._write_lock:
            self._by_hash = table

    def add(self, key: str, tenant: Tenant) -> None:
        """Add or replace one key without disturbing the others."""
        with self._write_lock:
            table = dict(self._by_hash)
            table[hash_key(key)] = tenant
            self._by_hash = table

    def revoke(self, key: str) -> bool:
        """Remove one key; the next request under it fails auth."""
        with self._write_lock:
            table = dict(self._by_hash)
            removed = table.pop(hash_key(key), None) is not None
            self._by_hash = table
        return removed

    def lookup(self, key: str) -> Tenant | None:
        """Resolve a plaintext key (hashes, then the dict get)."""
        return self._by_hash.get(hash_key(key))

    def lookup_hashed(self, digest: str) -> Tenant | None:
        """The hot path: resolve an already-hashed key. One dict get."""
        return self._by_hash.get(digest)

    def __len__(self) -> int:
        return len(self._by_hash)


class TokenBucket:
    """Continuous-refill token bucket (thread-safe, monotonic clock).

    Starts full. ``try_acquire`` never blocks: it refills by elapsed
    time, then either spends a token or reports the refusal — the
    gateway turns refusals into ``rate_limited`` wire errors rather
    than queueing, so a hammering tenant gets immediate backpressure
    instead of inflating everyone's queue wait.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        now = self._clock()
        with self._lock:
            elapsed = now - self._stamp
            if elapsed > 0:
                self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
                self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False
