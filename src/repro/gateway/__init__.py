"""Network front door: TCP serving for the durable top-k service.

The gateway takes everything built in-process — pooled batched serving
(PR 2/6), live ingest (PR 3), sharded scatter-gather (PRs 4–5), the
observability stack (PRs 7–8) and the semantic answer cache (PR 9) —
and puts it behind a wire: persistent connections, length-prefixed JSON
framing, per-tenant API-key auth on a pre-hashed fast path, token-bucket
rate limits and queue quotas feeding the service's typed rejection
machinery, and graceful drain.

* :mod:`repro.gateway.protocol` — frames, typed error codes, and
  query/result (de)serialisation;
* :mod:`repro.gateway.auth` — tenants, the pre-hashed key registry,
  token buckets;
* :mod:`repro.gateway.server` — the asyncio gateway itself;
* :mod:`repro.gateway.client` — a blocking-socket client for tests,
  benchmarks and scripts.
"""

from .auth import ApiKeyRegistry, Tenant, TokenBucket, hash_key
from .client import GatewayClient, GatewayError
from .protocol import (
    MAX_FRAME_BYTES,
    ErrorCode,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    WireResult,
    encode_frame,
    error_frame,
    request_from_wire,
    request_to_wire,
    response_to_wire,
)
from .server import DurableTopKGateway

__all__ = [
    "ApiKeyRegistry",
    "DurableTopKGateway",
    "ErrorCode",
    "FrameDecoder",
    "FrameTooLarge",
    "GatewayClient",
    "GatewayError",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "Tenant",
    "TokenBucket",
    "WireResult",
    "encode_frame",
    "error_frame",
    "hash_key",
    "request_from_wire",
    "request_to_wire",
    "response_to_wire",
]
