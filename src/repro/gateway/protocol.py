"""Wire protocol of the network gateway: length-prefixed JSON frames.

A *frame* is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON — one object per frame. Length-prefix framing (not
newline-delimited, not request-per-connection) is what lets one
persistent connection carry an arbitrary pipeline of requests and
out-of-order responses: the continuous-serving model of Vouzoukidou et
al. (PAPERS.md), where clients hold a connection open and stream queries
over it, rather than paying a TCP+auth handshake per query.

Frame kinds (the ``op`` field):

* ``auth``   → ``hello`` — first client frame on a connection; carries
  the tenant API key. Everything before a successful auth is refused
  with ``auth_required``.
* ``query``  → ``result`` | ``error`` — one durable top-k question.
  Queries carry a client-chosen ``id`` that the response echoes, so a
  pipelined client can match out-of-order completions.
* ``ping``   → ``pong`` — liveness, allowed pre-auth.

Responses to rejected work are typed: the ``code`` field carries one of
:class:`ErrorCode`, whose values deliberately include the service's
:class:`~repro.service.request.RejectionReason` values verbatim —
admission-control refusals (queue_full/timeout/shed/shutdown) cross the
wire unchanged, and gateway-level refusals (auth, rate limit, framing)
extend the same namespace.

Oversized frames are a protocol violation, not a request error: a peer
announcing a frame beyond ``max_frame_bytes`` gets one
``frame_too_large`` error and the connection is closed (the stream can
no longer be trusted to be in sync).
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass

from repro.core.query import Direction
from repro.service.request import QueryRequest, RejectionReason

__all__ = [
    "MAX_FRAME_BYTES",
    "ErrorCode",
    "FrameDecoder",
    "FrameTooLarge",
    "ProtocolError",
    "WireResult",
    "encode_frame",
    "error_frame",
    "rejection_code",
    "request_from_wire",
    "request_to_wire",
    "response_to_wire",
]

#: Default ceiling on one frame's JSON body. Durable top-k answers are
#: id lists plus counters — even a 10k-id answer with durations is well
#: under 1 MiB — so anything larger is a broken or hostile peer.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")


class ErrorCode(enum.Enum):
    """Typed wire error codes (a superset of the service's reasons)."""

    #: The first frame was not a successful ``auth``.
    AUTH_REQUIRED = "auth_required"
    #: Unknown or revoked API key.
    AUTH_FAILED = "auth_failed"
    #: Malformed frame body or query parameters.
    BAD_REQUEST = "bad_request"
    #: Announced frame length beyond the gateway's ceiling.
    FRAME_TOO_LARGE = "frame_too_large"
    #: The tenant's token bucket is empty (per-tenant rate limit).
    RATE_LIMITED = "rate_limited"
    #: Admission refused: the tenant's queue quota or the service's
    #: bounded queue is full (RejectionReason.QUEUE_FULL on the wire).
    QUEUE_FULL = "queue_full"
    #: The request waited in the queue past its deadline.
    TIMEOUT = "timeout"
    #: Below-normal-priority work dropped during SLO fast burn.
    SHED = "shed"
    #: The gateway (or service) is draining; no new work accepted.
    SHUTDOWN = "shutdown"
    #: The query raised inside the execution backend.
    INTERNAL = "internal"


def rejection_code(reason: RejectionReason) -> ErrorCode:
    """The wire code for a service admission rejection (values align)."""
    return ErrorCode(reason.value)


class ProtocolError(ValueError):
    """A frame that cannot be honoured, with its wire error code."""

    def __init__(self, code: ErrorCode, message: str) -> None:
        super().__init__(message)
        self.code = code


class FrameTooLarge(ProtocolError):
    """Announced frame length beyond the decoder's ceiling."""

    def __init__(self, length: int, limit: int) -> None:
        super().__init__(
            ErrorCode.FRAME_TOO_LARGE,
            f"frame of {length} bytes exceeds the {limit}-byte limit",
        )
        self.length = length
        self.limit = limit


def encode_frame(payload: dict) -> bytes:
    """One wire frame: 4-byte big-endian length + compact JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame decoder for an arbitrarily-chunked byte stream.

    TCP preserves order, not boundaries: one ``recv`` may deliver half a
    header, or three frames and the first byte of a fourth. ``feed``
    accepts whatever arrived and returns every *complete* frame it can
    decode, keeping the remainder buffered. Raises :class:`FrameTooLarge`
    the moment a header announces a body beyond ``max_frame_bytes`` —
    before buffering any of it.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        frames: list[dict] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise FrameTooLarge(length, self.max_frame_bytes)
            if len(self._buffer) < _HEADER.size + length:
                return frames
            body = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            try:
                payload = json.loads(body)
            except ValueError as exc:
                raise ProtocolError(
                    ErrorCode.BAD_REQUEST, f"frame body is not valid JSON: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise ProtocolError(
                    ErrorCode.BAD_REQUEST, "frame body must be a JSON object"
                )
            frames.append(payload)


# --------------------------------------------------------------------------
# query serialisation
# --------------------------------------------------------------------------


def request_to_wire(request: QueryRequest, id: int | None = None) -> dict:
    """The ``query`` frame for one service-level request."""
    payload: dict = {
        "op": "query",
        "u": [float(w) for w in request.scorer.u],
        "k": int(request.k),
        "tau": int(request.tau),
    }
    if id is not None:
        payload["id"] = id
    if request.interval is not None:
        payload["interval"] = [int(request.interval[0]), int(request.interval[1])]
    if request.direction is not Direction.PAST:
        payload["direction"] = request.direction.value
    payload["algorithm"] = request.algorithm
    if request.timeout is not None:
        payload["timeout"] = float(request.timeout)
    if request.priority:
        payload["priority"] = int(request.priority)
    return payload


def request_from_wire(
    payload: dict, scorer_of, default_priority: int = 0
) -> QueryRequest:
    """Parse one ``query`` frame into a :class:`QueryRequest`.

    ``scorer_of`` maps a preference-weight tuple to a scorer — the
    server passes a memoised constructor so hot preferences reuse one
    scorer object per process instead of allocating per request.
    Raises :class:`ProtocolError` (``bad_request``) on anything the
    service would crash on; validation here keeps garbage off the
    worker threads.
    """
    u = payload.get("u")
    if not isinstance(u, (list, tuple)) or not u:
        raise ProtocolError(ErrorCode.BAD_REQUEST, "query needs a weight vector 'u'")
    try:
        weights = tuple(float(w) for w in u)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(ErrorCode.BAD_REQUEST, f"bad weight vector: {exc}") from exc
    interval = payload.get("interval")
    if interval is not None:
        if not isinstance(interval, (list, tuple)) or len(interval) != 2:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "interval must be a [lo, hi] pair"
            )
        interval = (int(interval[0]), int(interval[1]))
    direction = payload.get("direction", Direction.PAST.value)
    try:
        direction = Direction(direction)
    except ValueError as exc:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"unknown direction {direction!r}"
        ) from exc
    timeout = payload.get("timeout")
    try:
        request = QueryRequest(
            scorer=scorer_of(weights),
            k=int(payload.get("k", 0)),
            tau=int(payload.get("tau", 0)),
            interval=interval,
            direction=direction,
            algorithm=str(payload.get("algorithm", "s-hop")),
            timeout=float(timeout) if timeout is not None else None,
            priority=int(payload.get("priority", default_priority)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(ErrorCode.BAD_REQUEST, str(exc)) from exc
    return request


def response_to_wire(response, id=None) -> dict:
    """Serialise one service :class:`QueryResponse` as a wire frame.

    Success carries the full answer — ids, per-record durabilities and
    the per-query :class:`~repro.core.query.QueryStats` counters — so a
    client (and the smoke gate) can check byte-identity against an
    in-process engine, plus the serving tags: which cache tier answered
    (``cache``), how stale the snapshot was (``staleness_rows``, live
    backends only) and the batch it rode in. Rejections become typed
    ``error`` frames via :func:`rejection_code`.
    """
    if response.error is not None:
        frame = error_frame(
            rejection_code(response.error.reason), str(response.error), id=id
        )
        frame["total_seconds"] = round(response.total_seconds, 9)
        return frame
    result = response.result
    frame: dict = {
        "op": "result",
        "id": id,
        "ok": True,
        "algorithm": result.algorithm,
        "ids": [int(t) for t in result.ids],
        "stats": {k: int(v) for k, v in result.stats.as_dict().items()},
        "elapsed_seconds": result.elapsed_seconds,
        "durations": (
            {str(int(t)): int(d) for t, d in result.durations.items()}
            if result.durations is not None
            else None
        ),
        "batch_size": response.batch_size,
        "wait_seconds": round(response.wait_seconds, 9),
        "total_seconds": round(response.total_seconds, 9),
        "cache": response.extra.get("cache"),
    }
    staleness = result.extra.get("staleness_rows")
    if staleness is not None:
        frame["staleness_rows"] = int(staleness)
    snapshot = result.extra.get("snapshot_n")
    if snapshot is not None:
        frame["snapshot_n"] = int(snapshot)
    return frame


def error_frame(code: ErrorCode, message: str, id=None) -> dict:
    """One typed ``error`` frame."""
    return {"op": "error", "id": id, "ok": False, "code": code.value, "message": message}


@dataclass
class WireResult:
    """A client-side view of one ``result``/``error`` frame.

    ``durations`` keys are converted back to ints (JSON forces string
    keys on the wire), so :meth:`identical_to` can compare against an
    engine-produced :class:`~repro.core.query.DurableTopKResult`
    byte-for-byte.
    """

    id: int | None
    ok: bool
    algorithm: str | None = None
    ids: list[int] | None = None
    durations: dict[int, int] | None = None
    stats: dict | None = None
    elapsed_seconds: float = 0.0
    total_seconds: float = 0.0
    batch_size: int = 0
    cache: str | None = None
    staleness_rows: int | None = None
    error_code: str | None = None
    error_message: str | None = None

    @classmethod
    def from_wire(cls, frame: dict) -> "WireResult":
        if frame.get("op") == "error" or not frame.get("ok", False):
            return cls(
                id=frame.get("id"),
                ok=False,
                error_code=frame.get("code"),
                error_message=frame.get("message"),
                total_seconds=float(frame.get("total_seconds", 0.0)),
            )
        durations = frame.get("durations")
        return cls(
            id=frame.get("id"),
            ok=True,
            algorithm=frame.get("algorithm"),
            ids=[int(t) for t in frame.get("ids", [])],
            durations=(
                {int(t): int(d) for t, d in durations.items()}
                if durations is not None
                else None
            ),
            stats=dict(frame.get("stats") or {}),
            elapsed_seconds=float(frame.get("elapsed_seconds", 0.0)),
            total_seconds=float(frame.get("total_seconds", 0.0)),
            batch_size=int(frame.get("batch_size", 0)),
            cache=frame.get("cache"),
            staleness_rows=frame.get("staleness_rows"),
        )

    def identical_to(self, expected) -> bool:
        """Byte-identity against an engine report — or another wire result.

        ``expected`` is usually an in-process ``TopKReport`` (whose stats
        object carries ``as_dict``); comparing two :class:`WireResult`\\ s
        (e.g. a replayed answer against a recorded one) works too.
        """
        stats = expected.stats if isinstance(expected.stats, dict) else expected.stats.as_dict()
        return (
            self.ok
            and self.ids == [int(t) for t in expected.ids]
            and self.durations == expected.durations
            and self.stats == {k: int(v) for k, v in stats.items()}
        )
