"""A blocking-socket client for the gateway wire protocol.

Deliberately plain ``socket`` + threads rather than asyncio: the
benchmark's load generators, the tests, and any user script get a
client with no event loop to manage. Send and receive sides take
separate locks, so the pipelined pattern — one thread streaming
``submit`` calls while another drains ``recv`` — works on a single
connection, which is exactly how ``gateway-bench`` drives open-loop
load.

:meth:`query` is the one-liner for sequential use (submit, then wait
for the frame echoing the request id). Typed server refusals surface as
:class:`WireResult` with ``ok=False`` and the wire ``code`` — data, not
exceptions — so a load generator can count rejections without
unwinding; protocol-level failures (auth refused, oversized frame,
connection torn down) raise :class:`GatewayError`.
"""

from __future__ import annotations

import itertools
import socket
import threading

from repro.service.request import QueryRequest

from .protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    WireResult,
    encode_frame,
    request_to_wire,
)

__all__ = ["GatewayClient", "GatewayError"]


class GatewayError(RuntimeError):
    """A connection- or auth-level failure, with its wire code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class GatewayClient:
    """One persistent, authenticated gateway connection."""

    def __init__(
        self,
        host: str,
        port: int,
        key: str | None = None,
        timeout: float = 30.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder(max_frame_bytes)
        self._frames: list[dict] = []
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._ids = itertools.count(1)
        self.tenant: str | None = None
        if key is not None:
            self.auth(key)

    # -- raw frame I/O -------------------------------------------------
    def send(self, payload: dict) -> None:
        with self._send_lock:
            self._sock.sendall(encode_frame(payload))

    def recv(self) -> dict:
        """The next frame off the wire (blocking)."""
        with self._recv_lock:
            while not self._frames:
                data = self._sock.recv(1 << 16)
                if not data:
                    raise GatewayError("closed", "connection closed by gateway")
                self._frames.extend(self._decoder.feed(data))
            return self._frames.pop(0)

    # -- protocol ------------------------------------------------------
    def auth(self, key: str) -> str:
        """Authenticate; returns the tenant name. Raises on refusal."""
        self.send({"op": "auth", "key": key})
        frame = self.recv()
        if frame.get("op") != "hello":
            raise GatewayError(frame.get("code", "error"), frame.get("message", ""))
        self.tenant = frame.get("tenant")
        return self.tenant

    def ping(self) -> None:
        self.send({"op": "ping"})
        frame = self.recv()
        if frame.get("op") != "pong":
            raise GatewayError(frame.get("code", "error"), frame.get("message", ""))

    def submit(self, request: QueryRequest, id: int | None = None) -> int:
        """Fire one query without waiting; returns its wire id."""
        id = next(self._ids) if id is None else id
        self.send(request_to_wire(request, id=id))
        return id

    def result(self) -> WireResult:
        """The next query result/error frame (skips pongs/hellos)."""
        while True:
            frame = self.recv()
            if frame.get("op") in ("result", "error"):
                return WireResult.from_wire(frame)

    def query(self, request: QueryRequest) -> WireResult:
        """Submit and wait for this request's response (sequential use)."""
        id = self.submit(request)
        while True:
            answer = self.result()
            if answer.id == id:
                return answer

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
