"""Exporters: Prometheus text exposition, JSON log lines, waterfalls.

Three consumers of the obs state, all read-only:

- :func:`render_prometheus` walks one or more registries and emits the
  ``# TYPE``-annotated text format (counters as ``_total``, histograms
  as summary ``_count``/``_sum`` plus quantile lines).
- :func:`configure_json_logging` attaches a stdlib :mod:`logging`
  handler whose formatter emits one JSON object per line, and registers
  a trace-completion hook so every finished trace becomes a structured
  log record.  Opt-in via ``repro --log-json``.
- :func:`format_waterfall` renders one trace as an indented per-layer
  waterfall with offset/duration bars — what ``repro trace`` prints.
"""

from __future__ import annotations

import json
import logging
import sys
import time

from repro.obs.registry import Histogram, MetricsRegistry, global_registry
from repro.obs.trace import Span, Trace, add_completion_hook

__all__ = [
    "render_prometheus",
    "configure_json_logging",
    "log_event",
    "format_waterfall",
]

LOGGER_NAME = "repro.obs"


# --------------------------------------------------------------------------
# Prometheus-style text exposition
# --------------------------------------------------------------------------


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels, extra: dict | None = None) -> str:
    pairs = [f'{_prom_name(k)}="{v}"' for k, v in labels]
    for k, v in (extra or {}).items():
        pairs.append(f'{_prom_name(k)}="{v}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(
    *registries: MetricsRegistry, prefix: str = "repro"
) -> str:
    """Text exposition of every series in *registries*.

    With no arguments, exposes the process-wide global registry.  Pass
    extra registries (e.g. a service collector's private registry) to
    merge them into one page.
    """

    if not registries:
        registries = (global_registry(),)
    lines: list[str] = []
    seen_types: set[str] = set()
    for registry in registries:
        for series in sorted(registry.series(), key=lambda s: (s.name, s.labels)):
            base = f"{prefix}_{_prom_name(series.name)}"
            if isinstance(series, Histogram):
                if base not in seen_types:
                    lines.append(f"# TYPE {base} summary")
                    seen_types.add(base)
                labels = series.labels
                lines.append(f"{base}_count{_prom_labels(labels)} {series.count}")
                lines.append(f"{base}_sum{_prom_labels(labels)} {series.sum:.9g}")
                for q in (0.5, 0.95, 0.99):
                    value = series.percentile(q * 100.0)
                    lines.append(
                        f"{base}{_prom_labels(labels, {'quantile': q})} {value:.9g}"
                    )
            elif series.kind == "counter":
                name = f"{base}_total"
                if name not in seen_types:
                    lines.append(f"# TYPE {name} counter")
                    seen_types.add(name)
                lines.append(f"{name}{_prom_labels(series.labels)} {series.value}")
            else:
                if base not in seen_types:
                    lines.append(f"# TYPE {base} gauge")
                    seen_types.add(base)
                lines.append(f"{base}{_prom_labels(series.labels)} {series.value:.9g}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# JSON structured logging
# --------------------------------------------------------------------------


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record; extras ride in a ``fields`` attr."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(time.time(), 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def _trace_hook(trace: Trace) -> None:
    root = trace.root
    logging.getLogger(LOGGER_NAME).info(
        "trace.complete",
        extra={
            "fields": {
                "trace_id": trace.trace_id,
                "root": root.name if root else None,
                "duration_seconds": round(trace.duration, 6),
                "spans": len(trace.spans),
                "layers": {
                    k: round(v, 6) for k, v in sorted(trace.by_layer().items())
                },
            }
        },
    )


def configure_json_logging(
    stream=None, level: int = logging.INFO, traces: bool = True
) -> logging.Logger:
    """Route ``repro.obs`` records to *stream* as JSON lines.

    Idempotent: reconfiguring replaces the previous handler.  When
    *traces* is true, every completed trace is also logged (summary
    only — span ids and per-layer totals, not full span dumps).
    """

    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    if traces:
        add_completion_hook(_trace_hook)
    return logger


def log_event(event: str, **fields) -> None:
    """Emit one structured log line (no-op unless logging configured)."""

    logger = logging.getLogger(LOGGER_NAME)
    if logger.handlers:
        logger.info(event, extra={"fields": fields})


# --------------------------------------------------------------------------
# waterfall rendering
# --------------------------------------------------------------------------

_BAR_WIDTH = 24


def _format_attrs(span: Span) -> str:
    if not span.attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
    return f"  {{{inner}}}"


def _render_span(
    span: Span, trace: Trace, t0: float, total: float, depth: int, lines: list[str]
) -> None:
    offset = max(span.start - t0, 0.0)
    duration = max(span.duration, 0.0)
    if total > 0:
        lead = int(round(_BAR_WIDTH * offset / total))
        fill = max(1, int(round(_BAR_WIDTH * duration / total)))
        lead = min(lead, _BAR_WIDTH - 1)
        fill = min(fill, _BAR_WIDTH - lead)
    else:  # pragma: no cover - zero-length trace
        lead, fill = 0, _BAR_WIDTH
    bar = " " * lead + "█" * fill + " " * (_BAR_WIDTH - lead - fill)
    remote = f" pid={span.pid}" if span.pid != (trace.root.pid if trace.root else 0) else ""
    lines.append(
        f"  [{bar}] {offset * 1e3:8.3f}ms +{duration * 1e3:8.3f}ms  "
        f"{'  ' * depth}{span.name}{remote}{_format_attrs(span)}"
    )
    for child in trace.children_of(span.span_id):
        _render_span(child, trace, t0, total, depth + 1, lines)


def format_waterfall(trace: Trace) -> str:
    """Render one trace as an indented per-layer waterfall."""

    root = trace.root
    if root is None:
        return f"trace {trace.trace_id}: <empty>"
    total = max(root.duration, 0.0)
    layers = ", ".join(
        f"{name}={seconds * 1e3:.3f}ms" for name, seconds in sorted(trace.by_layer().items())
    )
    lines = [
        f"trace {trace.trace_id}  {root.name}  {total * 1e3:.3f}ms  "
        f"({len(trace.spans)} spans)",
        f"  layers: {layers}",
    ]
    _render_span(root, trace, root.start, total, 0, lines)
    # Orphans: spans whose parent never arrived (e.g. a worker died
    # mid-request).  Render flat so they are not silently dropped.
    known = {s.span_id for s in trace.spans}
    for span in trace.spans:
        if span.parent_id is not None and span.parent_id not in known and span is not root:
            _render_span(span, trace, root.start, total, 1, lines)
    return "\n".join(lines)
