"""Declarative SLOs evaluated as multi-window burn rates.

An :class:`SLO` states an objective ("p95 latency under 250 ms",
"reject fewer than 1% of requests", "answers no staler than 2000 rows")
as a per-event *badness* threshold plus an error budget: the fraction of
events allowed to be bad. The :class:`SLOMonitor` classifies each event
as it is recorded and keeps a time-stamped ring of outcomes per SLO, so
at any instant it can answer the Google-SRE question: *how fast is the
error budget burning?*

Burn rate over a window is ``bad_fraction / budget`` — 1.0 means the
budget is being consumed exactly as provisioned, 10.0 means ten times
too fast. Alerting on one window either pages late (long window) or
flaps (short window), so the monitor evaluates **two** windows — a fast
one (default 5 s) that reacts, and a slow one (default 60 s) that
confirms the problem is real — and declares an SLO *burning* only when
both exceed their thresholds. The same multi-window shape guards the
degradation hooks: :class:`~repro.service.service.DurableTopKService`
consults :meth:`SLOMonitor.fast_burning` at admission and sheds
lowest-priority work while the fast window burns, shielding the latency
objective *before* the queue fills and QUEUE_FULL takes over.

Recording is one deque append plus amortised pruning — far below the
cost of the request it describes (obs-bench gates the bound at <1% of
per-request wall time). Evaluation publishes per-SLO gauges
(``slo.burn_rate{slo=...,window=...}``, ``slo.burning{slo=...}``) into
the bound :class:`~repro.obs.registry.MetricsRegistry`, so burn rates
ride the Prometheus export and ``repro top`` for free.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable

__all__ = ["SLO", "SLOMonitor", "default_slos"]


@dataclass(frozen=True)
class SLO:
    """One service-level objective, stated declaratively.

    ``objective`` is the per-event threshold: an event with
    ``value > objective`` is *bad* (for pure good/bad event streams —
    rejections — record outcomes directly and leave ``objective`` 0).
    ``budget`` is the tolerated bad fraction; burn rate divides the
    observed bad fraction by it. ``fast_burn``/``slow_burn`` are the
    rates at which each window is considered on fire — the defaults are
    the SRE-workbook page thresholds scaled to seconds-long windows.
    """

    name: str
    description: str = ""
    objective: float = 0.0
    unit: str = ""
    budget: float = 0.05
    fast_window: float = 5.0
    slow_window: float = 60.0
    fast_burn: float = 14.0
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(f"budget must be in (0, 1], got {self.budget}")
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValueError(
                f"need 0 < fast_window <= slow_window, got "
                f"{self.fast_window}/{self.slow_window}"
            )


def default_slos(
    latency_target: float = 0.25,
    rejection_budget: float = 0.01,
    staleness_rows: float = 2000.0,
) -> list[SLO]:
    """The serving stack's stock SLO set (latency, rejections, staleness)."""
    return [
        SLO(
            name="latency",
            description=f"p95 total latency under {latency_target * 1e3:.0f} ms",
            objective=latency_target,
            unit="s",
            budget=0.05,
        ),
        SLO(
            name="rejections",
            description=f"fewer than {rejection_budget:.0%} requests rejected",
            budget=rejection_budget,
        ),
        SLO(
            name="staleness",
            description=f"answers no staler than {staleness_rows:.0f} rows",
            objective=staleness_rows,
            unit="rows",
            budget=0.05,
        ),
    ]


class _EventWindow:
    """Time-stamped good/bad outcomes, prunable to any lookback window."""

    __slots__ = ("events", "bad")

    def __init__(self) -> None:
        self.events: deque[tuple[float, bool]] = deque()
        self.bad = 0  # bad entries currently in `events`

    def add(self, t: float, bad: bool, horizon: float) -> None:
        self.events.append((t, bad))
        self.bad += bad
        # Amortised prune: anything older than the longest window is
        # dead weight for every consumer.
        cutoff = t - horizon
        while self.events and self.events[0][0] < cutoff:
            _, was_bad = self.events.popleft()
            self.bad -= was_bad

    def fraction(self, now: float, window: float) -> tuple[int, int]:
        """(events, bad) within the trailing *window* seconds."""
        cutoff = now - window
        total = bad = 0
        for t, was_bad in reversed(self.events):
            if t < cutoff:
                break
            total += 1
            bad += was_bad
        return total, bad


class SLOMonitor:
    """Classifies events against SLOs and reports multi-window burn rates.

    ``clock`` is injectable for tests (burn-rate fixtures hand-place
    events on a fake timeline). ``degradation hooks`` registered with
    :meth:`add_burn_hook` fire on every burning-state *transition* of
    any SLO — the pluggable half of load shedding; the service's default
    policy only needs :meth:`fast_burning`.
    """

    def __init__(
        self,
        slos: list[SLO] | None = None,
        registry=None,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self._slos: dict[str, SLO] = {s.name: s for s in (slos if slos is not None else default_slos())}
        self._windows: dict[str, _EventWindow] = {name: _EventWindow() for name in self._slos}
        self._lock = threading.Lock()
        self._clock = clock
        self._registry = registry
        self._burning: dict[str, bool] = {name: False for name in self._slos}
        self._hooks: list[Callable[[SLO, bool], None]] = []

    @property
    def slos(self) -> list[SLO]:
        return list(self._slos.values())

    def bind_registry(self, registry) -> None:
        """Publish burn gauges into *registry* from now on (idempotent)."""
        self._registry = registry

    def add_burn_hook(self, hook: Callable[[SLO, bool], None]) -> None:
        """Call ``hook(slo, burning)`` whenever an SLO's state flips."""
        self._hooks.append(hook)

    # -- recording -------------------------------------------------------
    def observe(self, name: str, value: float, t: float | None = None) -> None:
        """Record a measured value; bad iff it exceeds the SLO objective."""
        slo = self._slos.get(name)
        if slo is None:
            return
        self._record(slo, value > slo.objective, t)

    def record(self, name: str, bad: bool, t: float | None = None) -> None:
        """Record a pre-classified good/bad event (rejections)."""
        slo = self._slos.get(name)
        if slo is None:
            return
        self._record(slo, bad, t)

    def _record(self, slo: SLO, bad: bool, t: float | None) -> None:
        now = self._clock() if t is None else t
        with self._lock:
            self._windows[slo.name].add(now, bad, slo.slow_window)

    # -- evaluation ------------------------------------------------------
    def burn_rates(self, name: str, t: float | None = None) -> tuple[float, float]:
        """(fast, slow) burn rates for one SLO at time *t* (default: now)."""
        slo = self._slos[name]
        now = self._clock() if t is None else t
        with self._lock:
            window = self._windows[name]
            fast_n, fast_bad = window.fraction(now, slo.fast_window)
            slow_n, slow_bad = window.fraction(now, slo.slow_window)
        fast = (fast_bad / fast_n / slo.budget) if fast_n else 0.0
        slow = (slow_bad / slow_n / slo.budget) if slow_n else 0.0
        return fast, slow

    def burning(self, name: str, t: float | None = None) -> bool:
        """Multi-window verdict: both windows past their thresholds."""
        slo = self._slos[name]
        fast, slow = self.burn_rates(name, t)
        return fast >= slo.fast_burn and slow >= slo.slow_burn

    def fast_burning(self, t: float | None = None) -> bool:
        """True when any SLO's *fast* window burns past its threshold.

        This is the shed signal: it reacts within ``fast_window``
        seconds, before the slow window confirms — degradation is cheap
        and reversible, unlike paging a human.
        """
        for name, slo in self._slos.items():
            fast, _ = self.burn_rates(name, t)
            if fast >= slo.fast_burn:
                return True
        return False

    def status(self, t: float | None = None) -> dict[str, dict]:
        """Per-SLO snapshot; also refreshes gauges and fires burn hooks."""
        now = self._clock() if t is None else t
        out: dict[str, dict] = {}
        for name, slo in self._slos.items():
            fast, slow = self.burn_rates(name, now)
            burning = fast >= slo.fast_burn and slow >= slo.slow_burn
            with self._lock:
                window = self._windows[name]
                events, bad = window.fraction(now, slo.slow_window)
                was = self._burning[name]
                self._burning[name] = burning
            if burning != was:
                for hook in self._hooks:
                    hook(slo, burning)
            if self._registry is not None:
                self._registry.gauge("slo.burn_rate", slo=name, window="fast").set(fast)
                self._registry.gauge("slo.burn_rate", slo=name, window="slow").set(slow)
                self._registry.gauge("slo.burning", slo=name).set(float(burning))
            out[name] = {
                "description": slo.description,
                "objective": slo.objective,
                "budget": slo.budget,
                "events": events,
                "bad": bad,
                "fast_burn_rate": round(fast, 3),
                "slow_burn_rate": round(slow, 3),
                "fast_threshold": slo.fast_burn,
                "slow_threshold": slo.slow_burn,
                "burning": burning,
            }
        return out

    def reset(self) -> None:
        """Drop all recorded events (post-warmup reset, like the collector)."""
        with self._lock:
            for window in self._windows.values():
                window.events.clear()
                window.bad = 0
