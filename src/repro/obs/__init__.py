"""repro.obs — low-overhead tracing + metrics for the whole stack.

Two halves:

- :mod:`repro.obs.trace`: per-query trace spans on a thread-local
  stack, a bounded slowest-N trace buffer, and cross-process trace
  stitching over the shard pipe protocol.  Off by default; the disabled
  fast path is one boolean check per call site.
- :mod:`repro.obs.registry`: named counter/gauge/histogram series.  The
  process-wide :func:`global_registry` collects low-frequency events
  from every layer (WAL fsyncs, seals, evictions, worker restarts); the
  service ``MetricsCollector`` folds its counters into a private
  registry per collector.

Exporters live in :mod:`repro.obs.export`: Prometheus text exposition,
JSON log lines (``repro --log-json``), and trace waterfalls
(``repro trace``).

:mod:`repro.obs.slo` turns the raw series into decisions: declarative
SLOs evaluated as multi-window burn rates, with gauges published back
into the registry and a degradation hook the service consults at
admission.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.trace import (
    TRACES,
    Span,
    Trace,
    TraceBuffer,
    absorb_remote_spans,
    add_span,
    begin_remote,
    current_context,
    current_span,
    disable,
    enable,
    end_remote,
    is_enabled,
    spans_started,
    trace_span,
    tracing_active,
)
from repro.obs.export import (
    configure_json_logging,
    format_waterfall,
    log_event,
    render_prometheus,
)
from repro.obs.slo import SLO, SLOMonitor, default_slos

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "TRACES",
    "Span",
    "Trace",
    "TraceBuffer",
    "trace_span",
    "add_span",
    "current_span",
    "current_context",
    "tracing_active",
    "enable",
    "disable",
    "is_enabled",
    "spans_started",
    "begin_remote",
    "end_remote",
    "absorb_remote_spans",
    "configure_json_logging",
    "render_prometheus",
    "format_waterfall",
    "log_event",
    "SLO",
    "SLOMonitor",
    "default_slos",
]
