"""Unified metrics registry: named counter/gauge/histogram series.

Series are created lazily and identified by a dotted name plus optional
labels, e.g. ``registry.counter("service.rejected", reason="timeout")``.
Every layer of the stack emits into the process-wide
:func:`global_registry` (WAL fsyncs, seal/compaction events, pool
evictions, shard worker restarts); the service-level
``MetricsCollector`` owns a private registry per collector so bench
rounds can reset without clobbering each other, and exposition merges
both (see :func:`repro.obs.export.render_prometheus`).

Updates take one per-series lock; series are low-frequency (per flush,
per seal, per batch — never per page or per index probe), so contention
and overhead are negligible even with tracing disabled.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Series:
    """Common identity for one named, labeled series."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()


class Counter(_Series):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()):
        super().__init__(name, labels)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge(_Series):
    """A value that goes up and down (segment counts, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()):
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Series):
    """Count + sum + a bounded window of recent samples.

    The window (newest ``window`` observations) backs exact empirical
    quantiles, which is what the service snapshot reports; ``count`` and
    ``sum`` are exact over the series lifetime, matching the
    counter-style semantics Prometheus expects from a summary.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = (), window: int = 65536):
        super().__init__(name, labels)
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def samples(self) -> list[float]:
        with self._lock:
            return list(self._samples)

    def percentile(self, q: float) -> float:
        """Empirical q-quantile (q in [0, 100]) over the sample window."""

        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self._count = 0
            self._sum = 0.0


class MetricsRegistry:
    """Get-or-create home for named series."""

    def __init__(self):
        self._lock = threading.Lock()
        self._series: dict[tuple[str, str, LabelKey], _Series] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs) -> _Series:
        key = (cls.kind, name, _label_key(labels))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = cls(name, key[2], **kwargs)
                self._series[key] = series
            return series

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, window: int = 65536, **labels) -> Histogram:
        return self._get(Histogram, name, labels, window=window)

    def series(self) -> list[_Series]:
        with self._lock:
            return list(self._series.values())

    def collect(self, kind: str | None = None, prefix: str = "") -> list[_Series]:
        out = []
        for series in self.series():
            if kind is not None and series.kind != kind:
                continue
            if prefix and not series.name.startswith(prefix):
                continue
            out.append(series)
        return out

    def as_dict(self) -> dict:
        """Flat snapshot {name{labels}: value} for logs and tests."""

        out: dict[str, float] = {}
        for series in self.series():
            label_part = (
                "{" + ",".join(f"{k}={v}" for k, v in series.labels) + "}"
                if series.labels
                else ""
            )
            key = f"{series.name}{label_part}"
            if isinstance(series, Histogram):
                out[f"{key}.count"] = series.count
                out[f"{key}.sum"] = series.sum
            else:
                out[key] = series.value
        return out

    def reset(self) -> None:
        for series in self.series():
            series.reset()


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry lower layers emit into."""

    return _GLOBAL
