"""Per-query trace spans with cross-process stitching.

The tracer is a thread-local span stack.  ``trace_span(name)`` opens a
span; the first span on an empty stack starts a new *trace*, and when
that root span closes the finished trace is offered to a bounded buffer
that retains the slowest-N complete traces (``TRACES``).  Spans carry
``perf_counter`` timestamps plus arbitrary layer attributes (pages read,
candidates scanned, batch size, snapshot version, ...).

Tracing is off by default and must stay near-zero-cost that way: the
only price an instrumented call site pays is one module-global boolean
check, after which ``trace_span`` returns a shared no-op context
manager.  Flip it with :func:`enable` / :func:`disable` (or the
``enabled(True)`` context manager style helper :func:`tracing`).

Cross-process propagation: the shard coordinator piggybacks
``current_context()`` — a ``(trace_id, span_id)`` pair — on the
seq-tagged pipe protocol.  The worker wraps the request in
:func:`begin_remote` / :func:`end_remote`, which collect spans under the
*coordinator's* trace id and parent span id without ever touching the
worker's global enabled flag, and ships the serialised spans back on the
response tuple.  The coordinator's reader thread hands them to
:func:`absorb_remote_spans`, which stitches them into the still-open
trace — one tree spanning both processes.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field
from time import perf_counter

__all__ = [
    "Span",
    "Trace",
    "TraceBuffer",
    "TRACES",
    "enable",
    "disable",
    "is_enabled",
    "tracing_active",
    "trace_span",
    "add_span",
    "current_span",
    "current_context",
    "begin_remote",
    "end_remote",
    "absorb_remote_spans",
    "spans_started",
]

# --------------------------------------------------------------------------
# ids and global state
# --------------------------------------------------------------------------

_enabled = False
_tls = threading.local()
_span_seq = itertools.count(1)
_trace_seq = itertools.count(1)
# Total spans opened while tracing was enabled (used by obs-bench to
# estimate spans-per-request).  Plain int guarded by _stats_lock.
_spans_started = 0
_stats_lock = threading.Lock()
# Traces that have started but whose root span has not yet closed,
# keyed by trace id.  Remote spans arriving from worker processes are
# stitched in here by the coordinator's reader thread.
_inflight: dict[str, "Trace"] = {}
_inflight_lock = threading.Lock()
# Callbacks fired with each completed Trace (JSON log exporter hooks in
# here).  Mutated only from configure paths; read on the hot path.
_completion_hooks: list = []


def _new_id(seq: itertools.count) -> str:
    # pid-qualified so ids minted in forked shard workers can never
    # collide with coordinator ids inside one stitched trace.
    return f"{os.getpid():x}-{next(seq):x}"


def enable() -> None:
    """Turn tracing on process-wide."""

    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracing off process-wide (the default)."""

    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def spans_started() -> int:
    """Spans opened while tracing was enabled (cumulative)."""

    return _spans_started


def add_completion_hook(hook) -> None:
    """Call ``hook(trace)`` whenever a trace completes."""

    if hook not in _completion_hooks:
        _completion_hooks.append(hook)


def remove_completion_hook(hook) -> None:
    if hook in _completion_hooks:
        _completion_hooks.remove(hook)


# --------------------------------------------------------------------------
# spans and traces
# --------------------------------------------------------------------------


@dataclass
class Span:
    """One timed region of one trace.

    ``start`` is a raw ``perf_counter`` reading; waterfalls render
    offsets relative to the trace root.  ``duration`` is seconds, -1.0
    while the span is still open.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    duration: float = -1.0
    attrs: dict = field(default_factory=dict)
    pid: int = field(default_factory=os.getpid)

    def set(self, **attrs) -> "Span":
        """Attach layer attributes (pages read, candidates, ...)."""

        self.attrs.update(attrs)
        return self

    def to_wire(self) -> dict:
        """Pipe/JSON-serialisable form."""

        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "pid": self.pid,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Span":
        return cls(
            trace_id=wire["trace_id"],
            span_id=wire["span_id"],
            parent_id=wire.get("parent_id"),
            name=wire["name"],
            start=wire["start"],
            duration=wire["duration"],
            attrs=dict(wire.get("attrs") or {}),
            pid=wire.get("pid", 0),
        )


class Trace:
    """A completed-or-in-flight tree of spans sharing one trace id."""

    __slots__ = ("trace_id", "spans", "_lock")

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.spans: list[Span] = []
        # Remote spans are appended by the shard reader thread while the
        # owning thread is still adding local spans.
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    @property
    def root(self) -> Span | None:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return self.spans[0] if self.spans else None

    @property
    def duration(self) -> float:
        root = self.root
        return root.duration if root is not None else 0.0

    def children_of(self, span_id: str | None) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.parent_id == span_id),
            key=lambda s: s.start,
        )

    def by_layer(self) -> dict[str, float]:
        """Aggregate span self-declared durations by name prefix."""

        layers: dict[str, float] = {}
        for span in self.spans:
            layer = span.name.split(".", 1)[0]
            layers[layer] = layers.get(layer, 0.0) + max(span.duration, 0.0)
        return layers

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "duration_seconds": self.duration,
            "spans": [s.to_wire() for s in self.spans],
        }


class TraceBuffer:
    """Bounded buffer retaining the slowest-N complete traces.

    Offers are O(log N) against a min-heap keyed on root duration; under
    churn the fastest trace is evicted first, so the buffer converges on
    the N slowest traces seen since the last :meth:`clear`.
    """

    def __init__(self, capacity: int = 32):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._heap: list[tuple[float, int, Trace]] = []
        self._seq = itertools.count()
        self.offered = 0

    def offer(self, trace: Trace) -> None:
        import heapq

        entry = (trace.duration, next(self._seq), trace)
        with self._lock:
            self.offered += 1
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
            elif entry[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)

    def slowest(self, n: int | None = None) -> list[Trace]:
        with self._lock:
            traces = sorted(self._heap, key=lambda e: e[0], reverse=True)
        picked = traces if n is None else traces[:n]
        return [entry[2] for entry in picked]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
            self.offered = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


TRACES = TraceBuffer()


# --------------------------------------------------------------------------
# the thread-local span stack
# --------------------------------------------------------------------------


class _NoopSpan:
    """Fast path when tracing is disabled: every method is a no-op."""

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP = _NoopSpan()


class _RemoteAnchor:
    """Stack sentinel standing in for a parent span in another process."""

    __slots__ = ("span_id",)

    def __init__(self, span_id: str | None):
        self.span_id = span_id


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class _SpanContext:
    """Context manager pushing a live span onto the thread-local stack."""

    __slots__ = ("_name", "_attrs", "_start", "span")

    def __init__(self, name: str, attrs: dict, start: float | None):
        self._name = name
        self._attrs = attrs
        self._start = start
        self.span: Span | None = None

    def __enter__(self) -> Span:
        global _spans_started
        stack = _stack()
        if stack:
            top = stack[-1]
            parent_id = top.span_id
            trace = _tls.trace
        else:
            parent_id = None
            trace = Trace(_new_id(_trace_seq))
            _tls.trace = trace
            with _inflight_lock:
                _inflight[trace.trace_id] = trace
        span = Span(
            trace_id=trace.trace_id,
            span_id=_new_id(_span_seq),
            parent_id=parent_id,
            name=self._name,
            start=perf_counter() if self._start is None else self._start,
            attrs=self._attrs,
        )
        with _stats_lock:
            _spans_started += 1
        trace.add(span)
        stack.append(span)
        self.span = span
        return span

    def __exit__(self, *exc) -> None:
        span = self.span
        span.duration = perf_counter() - span.start
        stack = _stack()
        # Pop our span; tolerate a corrupted stack rather than raise.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        # A remote anchor at the bottom never pops, so remote traces are
        # never offered locally — they complete in the coordinator.
        if not stack:
            trace = _tls.trace
            _tls.trace = None
            with _inflight_lock:
                _inflight.pop(trace.trace_id, None)
            TRACES.offer(trace)
            for hook in _completion_hooks:
                try:
                    hook(trace)
                except Exception:  # pragma: no cover - exporter bugs
                    pass


def trace_span(name: str, _start: float | None = None, **attrs):
    """Open a span named *name*; no-op unless tracing is enabled.

    ``_start`` overrides the span start (a ``perf_counter`` reading) so
    callers can open a span that conceptually began earlier — e.g. the
    service roots a batch trace at the earliest enqueue time so trace
    duration equals end-to-end latency including queue wait.
    """

    if not _enabled:
        return _NOOP
    return _SpanContext(name, attrs, _start)


def add_span(name: str, start: float, duration: float, **attrs) -> None:
    """Record an already-timed (synthetic or aggregated) span.

    Used for regions whose boundaries are known post-hoc — queue wait —
    and for aggregates like ``index.topk``, which sums hundreds of
    individual index calls into one span instead of flooding the trace.
    """

    if not _enabled:
        return
    stack = _stack()
    if not stack:
        return
    top = stack[-1]
    trace = _tls.trace
    if trace is None:  # pragma: no cover - defensive
        return
    parent_id = top.span_id if isinstance(top, Span) else top.span_id
    trace.add(
        Span(
            trace_id=trace.trace_id,
            span_id=_new_id(_span_seq),
            parent_id=parent_id,
            name=name,
            start=start,
            duration=duration,
            attrs=attrs,
        )
    )


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""

    if not _enabled:
        return None
    stack = getattr(_tls, "stack", None)
    if not stack:
        return None
    top = stack[-1]
    return top if isinstance(top, Span) else None


def tracing_active() -> bool:
    """True when this thread is inside an open span.

    Gates per-call timing (e.g. the index wrapper) that is worth paying
    for only when there is a trace to attach the result to.
    """

    return _enabled and bool(getattr(_tls, "stack", None))


def current_context() -> tuple[str, str] | None:
    """(trace_id, span_id) of the innermost open span, for propagation."""

    span = current_span()
    if span is None:
        return None
    return (span.trace_id, span.span_id)


# --------------------------------------------------------------------------
# cross-process propagation (shard pipe protocol)
# --------------------------------------------------------------------------


class _RemoteSession:
    __slots__ = ("trace", "anchor", "prev_enabled")

    def __init__(self, trace: Trace, anchor: _RemoteAnchor, prev_enabled: bool):
        self.trace = trace
        self.anchor = anchor
        self.prev_enabled = prev_enabled


def begin_remote(context: tuple[str, str]) -> _RemoteSession:
    """Start collecting spans under a propagated (trace_id, span_id).

    Called by a shard worker when a request carries trace context.  The
    propagated span id becomes the parent of every span the worker opens,
    via an anchor sentinel that keeps the stack non-empty so the trace is
    never offered to the local buffer — it belongs to the coordinator.
    Workers are single-threaded request loops, so flipping the global
    enabled flag for the duration of one request is safe.
    """

    global _enabled
    trace_id, parent_span_id = context
    trace = Trace(trace_id)
    anchor = _RemoteAnchor(parent_span_id)
    session = _RemoteSession(trace, anchor, _enabled)
    _tls.stack = [anchor]
    _tls.trace = trace
    _enabled = True
    return session


def end_remote(session: _RemoteSession) -> list[dict]:
    """Stop remote collection; return the collected spans in wire form."""

    global _enabled
    _enabled = session.prev_enabled
    _tls.stack = []
    _tls.trace = None
    spans = []
    for span in session.trace.spans:
        if span.parent_id is None:
            span.parent_id = session.anchor.span_id
        spans.append(span.to_wire())
    return spans


def absorb_remote_spans(wire_spans) -> None:
    """Stitch worker-process spans into their in-flight local trace.

    Called from the coordinator's per-worker reader thread *before* the
    response future resolves, so by the time the querying thread closes
    its ``shard.scatter`` span the remote children are already in place.
    Spans whose trace has already completed (or was never local) are
    dropped.
    """

    if not wire_spans:
        return
    for wire in wire_spans:
        with _inflight_lock:
            trace = _inflight.get(wire["trace_id"])
        if trace is not None:
            trace.add(Span.from_wire(wire))


def reset_for_tests() -> None:
    """Clear all tracer state (tests only)."""

    global _enabled, _spans_started
    _enabled = False
    _spans_started = 0
    _tls.stack = []
    _tls.trace = None
    with _inflight_lock:
        _inflight.clear()
    TRACES.clear()
    _completion_hooks.clear()
