"""Fixed-size page storage over a real file (anonymous or path-backed)."""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["PAGE_SIZE", "Pager"]

#: Default page size, matching PostgreSQL's 8 KB heap pages... halved to
#: keep page counts meaningful at laptop-scale datasets.
PAGE_SIZE = 4096


class Pager:
    """Page-granular reads/writes backed by a real file.

    Page ids are dense non-negative integers; pages are exactly
    ``page_size`` bytes (short writes are zero-padded). Without ``path``
    the backing file is an anonymous temp file (the classic MiniDB
    setup); with ``path`` it is a named file that survives :meth:`close`
    — the live append path opens it again on recovery, truncating any
    torn trailing partial page a crash left behind.
    """

    def __init__(self, page_size: int = PAGE_SIZE, path: str | Path | None = None) -> None:
        if page_size < 64:
            raise ValueError(f"page_size must be >= 64 bytes, got {page_size}")
        self.page_size = page_size
        self.path = None if path is None else Path(path)
        if self.path is None:
            self._file = tempfile.TemporaryFile(prefix="minidb-")
            self._n_pages = 0
        else:
            existed = self.path.exists()
            self._file = open(self.path, "r+b" if existed else "w+b")
            size = self.path.stat().st_size if existed else 0
            # A crash mid-write can leave a trailing partial page; only
            # whole pages are addressable, so drop the torn remainder.
            self._n_pages = size // page_size
            if size != self._n_pages * page_size:
                self._file.truncate(self._n_pages * page_size)
        self.physical_reads = 0
        self.physical_writes = 0

    @property
    def n_pages(self) -> int:
        """Number of allocated pages."""
        return self._n_pages

    def allocate(self) -> int:
        """Allocate a fresh zeroed page, returning its id."""
        page_id = self._n_pages
        self._file.seek(page_id * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        self._n_pages += 1
        return page_id

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page (extends the file if ``page_id`` is fresh)."""
        if len(data) > self.page_size:
            raise ValueError(f"data of {len(data)} bytes exceeds page size {self.page_size}")
        if page_id >= self._n_pages:
            self._n_pages = page_id + 1
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        self._file.seek(page_id * self.page_size)
        self._file.write(data)
        self.physical_writes += 1

    def read_page(self, page_id: int) -> bytes:
        """Read one page from the file."""
        if not 0 <= page_id < self._n_pages:
            raise IndexError(f"page {page_id} out of range [0, {self._n_pages})")
        self._file.seek(page_id * self.page_size)
        self.physical_reads += 1
        return self._file.read(self.page_size)

    def truncate(self, n_pages: int) -> None:
        """Discard pages beyond ``n_pages`` (recovery rollback)."""
        if not 0 <= n_pages <= self._n_pages:
            raise ValueError(f"n_pages {n_pages} out of range [0, {self._n_pages}]")
        self._file.truncate(n_pages * self.page_size)
        self._n_pages = n_pages

    def sync(self) -> None:
        """Flush written pages down to the storage device."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Release the backing file."""
        self._file.close()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
