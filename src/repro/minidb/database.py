"""The MiniDB facade: one dataset loaded as a table + index table."""

from __future__ import annotations

import numpy as np

from repro.core.record import Dataset
from repro.minidb.blockindex import BlockSkylineIndex
from repro.minidb.buffer import BufferPool
from repro.minidb.pager import PAGE_SIZE, Pager
from repro.minidb.session import MiniDBSession
from repro.minidb.table import HeapTable

__all__ = ["MiniDB", "buffered_score_of"]


def buffered_score_of(
    table: HeapTable,
    buffer: BufferPool,
    u: np.ndarray,
    row_id: int,
    session: MiniDBSession | None = None,
) -> float:
    """One row's preference score via a buffered page read.

    With a ``session``, the row's whole page is decoded and scored on
    first touch and later lookups on the same page are served from the
    cached vector — still charging one buffered page read per call,
    exactly like the uncached path. Shared by the bulk-loaded
    :class:`MiniDB` and the live append store.
    """
    if session is None:
        row = table.read_row(row_id)
        return float(np.dot(row, u))
    if u is not session.u and not np.array_equal(u, session.u):
        raise ValueError(
            "session was opened for a different preference vector; "
            "open one per preference via MiniDB.session()"
        )
    page_id, slot = table.page_of(row_id)
    scores = session.page_scores.get(page_id)
    # A live store's seal may have topped up this page since the vector
    # was cached (rows are only ever appended, so a short vector is
    # stale-but-correct for its own slots); re-decode when the lookup
    # reaches past it.
    if scores is None or slot >= len(scores):
        scores = table.read_page_rows(page_id) @ session.u
        session.page_scores[page_id] = scores
    else:
        buffer.get(page_id)  # replay the single page read
    return float(scores[slot])


class MiniDB:
    """A dataset loaded into page storage with a block-skyline index.

    Parameters
    ----------
    dataset:
        The dataset to load (bulk insert, clustered on arrival time).
    page_size:
        Bytes per page.
    buffer_pages:
        LRU buffer pool capacity, in pages. Deliberately much smaller than
        the table so that full scans actually pay physical reads.
    block_rows / fanout:
        Index-table granularity (see
        :class:`~repro.minidb.blockindex.BlockSkylineIndex`).
    """

    def __init__(
        self,
        dataset: Dataset,
        page_size: int = PAGE_SIZE,
        buffer_pages: int = 64,
        block_rows: int = 256,
        fanout: int = 8,
        tuple_header_bytes: int | None = None,
    ) -> None:
        from repro.minidb.table import TUPLE_HEADER_BYTES

        self.dataset = dataset
        self.pager = Pager(page_size)
        self.buffer = BufferPool(self.pager, capacity=buffer_pages)
        header = TUPLE_HEADER_BYTES if tuple_header_bytes is None else tuple_header_bytes
        self.table = HeapTable.from_values(
            dataset.values, self.pager, self.buffer, tuple_header_bytes=header
        )
        self.index = BlockSkylineIndex(
            dataset.values, self.pager, self.buffer, block_rows=block_rows, fanout=fanout
        )

    @property
    def n(self) -> int:
        """Number of loaded rows."""
        return self.table.n_rows

    def storage_pages(self) -> int:
        """Total allocated pages (data + index)."""
        return self.pager.n_pages

    def storage_bytes(self) -> int:
        """Total on-disk footprint in bytes."""
        return self.pager.n_pages * self.pager.page_size

    def session(self, u: np.ndarray) -> MiniDBSession:
        """Open a query session bound to preference ``u``.

        The session memoises per-preference CPU work (block upper bounds,
        decoded skyline points, score vectors) across consecutive top-k
        calls while the page accounting stays exactly as without it — see
        :mod:`repro.minidb.session`.
        """
        return MiniDBSession(u)

    def topk(
        self,
        u: np.ndarray,
        k: int,
        lo: int,
        hi: int,
        ub_cache: dict | None = None,
        session: MiniDBSession | None = None,
    ) -> list[int]:
        """Range top-k through the index table (page-accounted)."""
        return self.index.topk(self.table, u, k, lo, hi, ub_cache=ub_cache, session=session)

    def score_of(
        self, u: np.ndarray, row_id: int, session: MiniDBSession | None = None
    ) -> float:
        """One row's preference score (a buffered row read).

        With a ``session``, the row's whole page is decoded and scored on
        first touch and later lookups on the same page are served from the
        cached vector — still charging one buffered page read per call,
        exactly like the uncached path.
        """
        return buffered_score_of(self.table, self.buffer, u, row_id, session)

    def reset_io(self, cold: bool = False) -> None:
        """Zero the I/O counters; with ``cold`` also empty the buffer pool."""
        if cold:
            self.buffer.clear()
        self.buffer.reset_counters()

    def io_stats(self) -> dict[str, int | float]:
        """Current buffer-pool counters."""
        return {
            "logical_reads": self.buffer.logical_reads,
            "physical_reads": self.buffer.physical_reads,
            "hit_rate": round(self.buffer.hit_rate, 4),
        }

    def close(self) -> None:
        """Release the backing storage."""
        self.pager.close()

    def __enter__(self) -> "MiniDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
