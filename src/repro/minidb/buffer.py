"""LRU buffer pool with read accounting."""

from __future__ import annotations

from collections import OrderedDict

from repro.minidb.pager import Pager

__all__ = ["BufferPool"]


class BufferPool:
    """Caches pages of one :class:`Pager` with LRU eviction.

    ``logical_reads`` counts every page request; ``physical_reads`` counts
    cache misses (i.e. actual file reads). The stored procedures report
    both — physical reads are the stand-in for the paper's disk time.
    """

    def __init__(self, pager: Pager, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._pager = pager
        self.capacity = capacity
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self.logical_reads = 0
        self.physical_reads = 0

    def get(self, page_id: int) -> bytes:
        """Fetch a page, via cache when possible."""
        self.logical_reads += 1
        cached = self._cache.get(page_id)
        if cached is not None:
            self._cache.move_to_end(page_id)
            return cached
        data = self._pager.read_page(page_id)
        self.physical_reads += 1
        self._cache[page_id] = data
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
        return data

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the cache (after an out-of-band write)."""
        self._cache.pop(page_id, None)

    def clear(self) -> None:
        """Empty the cache (cold-start measurements)."""
        self._cache.clear()

    def reset_counters(self) -> None:
        """Zero the read counters (per-query accounting)."""
        self.logical_reads = 0
        self.physical_reads = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of logical reads served from cache."""
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads
