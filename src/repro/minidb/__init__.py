"""MiniDB — a small page-based storage engine standing in for PostgreSQL.

Section VI-C of the paper implements T-Base and T-Hop as stored procedures
inside PostgreSQL, with a data table, an auxiliary index table for range
top-k retrieval, and measures end-to-end query time on up to 30 GB of
data. PostgreSQL is unavailable here, so MiniDB reproduces the relevant
mechanics at laptop scale:

* :mod:`repro.minidb.pager` — fixed-size pages in a real temporary file;
* :mod:`repro.minidb.buffer` — an LRU buffer pool counting logical and
  physical page reads (the DBMS cost proxy);
* :mod:`repro.minidb.table` — a heap table of fixed-width float rows;
* :mod:`repro.minidb.blockindex` — the "index table": a hierarchy of
  per-block skylines, stored in pages, enabling branch-and-bound range
  top-k with page-level access costs;
* :mod:`repro.minidb.procedures` — T-Base and T-Hop written against the
  page API only, as the paper's stored procedures are;
* :mod:`repro.minidb.live` — the append path: a directory-backed store
  with a write-ahead log, append pages, per-segment index tables and
  recovery-on-open (see the ingest pipeline in :mod:`repro.ingest`).

The reproduced claim is *shape*: T-Hop touches a near-constant number of
pages per query while T-Base's sliding window scans the whole interval,
so the gap widens with data size exactly as in Tables IV–VI.
"""

from repro.minidb.blockindex import BlockSkylineIndex
from repro.minidb.buffer import BufferPool
from repro.minidb.database import MiniDB
from repro.minidb.live import LiveMiniDB
from repro.minidb.pager import PAGE_SIZE, Pager
from repro.minidb.procedures import (
    t_base_batch_procedure,
    t_base_procedure,
    t_hop_batch_procedure,
    t_hop_procedure,
)
from repro.minidb.session import MiniDBSession
from repro.minidb.table import HeapTable

__all__ = [
    "PAGE_SIZE",
    "Pager",
    "BufferPool",
    "HeapTable",
    "BlockSkylineIndex",
    "LiveMiniDB",
    "MiniDB",
    "MiniDBSession",
    "t_base_procedure",
    "t_hop_procedure",
    "t_base_batch_procedure",
    "t_hop_batch_procedure",
]
