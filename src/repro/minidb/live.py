"""LiveMiniDB: the paged store with an append path and crash recovery.

The bulk-loaded :class:`~repro.minidb.database.MiniDB` freezes its table
and index at construction; this store grows:

* ``append`` logs the row to a checksummed
  :class:`~repro.ingest.wal.WriteAheadLog` and keeps it in an in-memory
  tail — queryable immediately, durable once the WAL is flushed;
* ``seal`` packs the tail into heap **append pages**
  (:meth:`~repro.minidb.table.HeapTable.append_rows`), builds a
  per-segment :class:`~repro.minidb.blockindex.BlockSkylineIndex`
  addressing the *global* row space (``row_base``), fsyncs the data
  file, atomically replaces the JSON manifest, and only then truncates
  the WAL — the standard commit order, so a crash at any point loses at
  most unflushed tail rows;
* reopening a directory replays the manifest (pages + index catalogs —
  sealed segments come back with the exact same page placement, so page
  accounting for queries against sealed segments is identical before
  and after a crash) and then the WAL (tail rows, dropping a torn final
  entry).

``topk``/``score_of``/``n``/``session``/``reset_io``/``io_stats`` match
the :class:`MiniDB` surface, so the T-Base/T-Hop stored procedures and
the service's MiniDB backend run unchanged over a growing database.
Cross-segment top-k answers merge per-segment index answers with the
in-memory tail under the canonical order — exactly the stitched-index
construction of :mod:`repro.ingest.segments`, here with page accounting.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.ingest.wal import WriteAheadLog
from repro.minidb.blockindex import BlockSkylineIndex
from repro.minidb.buffer import BufferPool
from repro.minidb.database import buffered_score_of
from repro.minidb.pager import PAGE_SIZE, Pager
from repro.minidb.session import MiniDBSession
from repro.minidb.table import TUPLE_HEADER_BYTES, HeapTable

__all__ = ["LiveMiniDB"]

_MANIFEST = "MANIFEST.json"
_DATA = "data.pages"
_WAL = "wal.log"


class LiveMiniDB:
    """A directory-backed, append-able MiniDB with WAL recovery.

    Parameters
    ----------
    directory:
        Store location. An existing manifest triggers recovery (in which
        case ``d`` may be omitted); otherwise a fresh store is created.
    seal_rows:
        Tail size at which :meth:`append` auto-seals (``None`` disables;
        :meth:`seal` is always available explicitly).
    """

    def __init__(
        self,
        directory: str | Path,
        d: int | None = None,
        page_size: int = PAGE_SIZE,
        buffer_pages: int = 64,
        block_rows: int = 256,
        fanout: int = 8,
        tuple_header_bytes: int = TUPLE_HEADER_BYTES,
        seal_rows: int | None = 2048,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.seal_rows = seal_rows
        manifest_path = self.directory / _MANIFEST
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
            if d is not None and d != manifest["d"]:
                raise ValueError(f"store holds d={manifest['d']}, requested d={d}")
            self.d = manifest["d"]
            self.page_size = manifest["page_size"]
            self.block_rows = manifest["block_rows"]
            self.fanout = manifest["fanout"]
            self.tuple_header_bytes = manifest["tuple_header_bytes"]
        else:
            if d is None:
                raise ValueError("a fresh store needs d")
            manifest = None
            self.d = d
            self.page_size = page_size
            self.block_rows = block_rows
            self.fanout = fanout
            self.tuple_header_bytes = tuple_header_bytes

        self.pager = Pager(self.page_size, path=self.directory / _DATA)
        self.buffer = BufferPool(self.pager, capacity=buffer_pages)
        self.segments: list[BlockSkylineIndex] = []
        if manifest is None:
            self.table = HeapTable(
                self.pager, self.buffer, self.d, tuple_header_bytes=self.tuple_header_bytes
            )
        else:
            # Roll back pages the crashed writer allocated but never
            # committed to the manifest, then re-attach table and indexes.
            if manifest["n_pages"] > self.pager.n_pages:
                raise ValueError(
                    f"data file holds {self.pager.n_pages} pages, "
                    f"manifest expects {manifest['n_pages']}"
                )
            self.pager.truncate(manifest["n_pages"])
            self.table = HeapTable.attach(
                self.pager,
                self.buffer,
                self.d,
                pages=manifest["table_pages"],
                n_rows=manifest["n_rows"],
                tuple_header_bytes=self.tuple_header_bytes,
            )
            self.segments = [
                BlockSkylineIndex.from_catalog(catalog, self.pager, self.buffer)
                for catalog in manifest["segments"]
            ]
        self.wal = WriteAheadLog(self.directory / _WAL, self.d)
        # Entries of generations <= _sealed_generation are already in
        # sealed pages; the WAL invariant is generation == sealed + 1.
        self._sealed_generation = (
            -1 if manifest is None else manifest.get("wal_generation_sealed", -1)
        )
        if self.wal.generation <= self._sealed_generation:
            # The crash hit between the manifest commit and the WAL
            # truncate: every logged entry is already in sealed pages.
            # Drop them and restore the generation invariant.
            self._tail: list[np.ndarray] = []
            self.wal.reset(generation=self._sealed_generation + 1)
        else:
            self._tail = [row for row in self.wal.recovered.rows]
            self._sealed_generation = self.wal.generation - 1
        if manifest is None:
            self._write_manifest()  # a fresh store is recoverable from t=0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Rows visible to queries (sealed + tail)."""
        return self.table.n_rows + len(self._tail)

    @property
    def sealed_rows(self) -> int:
        """Rows made durable in heap pages."""
        return self.table.n_rows

    def append(self, row, flush: bool = False) -> int:
        """Append one row; returns its global row id.

        The row is immediately queryable; it is *recoverable* once the
        WAL is flushed (``flush=True``, or group-commit via
        :meth:`flush`, or the next seal).
        """
        row = np.asarray(row, dtype=float).reshape(-1)
        if len(row) != self.d:
            raise ValueError(f"row has {len(row)} attributes, store has d={self.d}")
        self.wal.append(row)
        self._tail.append(row)
        t = self.table.n_rows + len(self._tail) - 1
        if flush:
            self.wal.flush()
        if self.seal_rows is not None and len(self._tail) >= self.seal_rows:
            self.seal()
        return t

    def flush(self, sync: bool = False) -> None:
        """Group-commit: make every appended row recoverable."""
        self.wal.flush(sync=sync)

    def seal(self) -> int:
        """Freeze the tail into heap pages + a segment index; rows sealed.

        Commit order: data pages -> fsync -> manifest (atomic rename,
        recording the sealed WAL generation) -> WAL truncate (bumping
        the generation). A crash before the manifest rename recovers the
        rows from the WAL; after it, from the pages — and the recorded
        generation stops recovery from replaying them a second time when
        the crash lands between the rename and the truncate.
        """
        if not self._tail:
            return 0
        values = np.asarray(self._tail, dtype=float)
        lo = self.table.n_rows
        self.table.append_rows(values)
        index = BlockSkylineIndex(
            values,
            self.pager,
            self.buffer,
            block_rows=self.block_rows,
            fanout=self.fanout,
            row_base=lo,
        )
        self.segments.append(index)
        self.pager.sync()
        self._sealed_generation = self.wal.generation
        self._write_manifest()
        self.wal.reset()
        self._tail.clear()
        return len(values)

    def _write_manifest(self) -> None:
        manifest = {
            "d": self.d,
            "page_size": self.page_size,
            "block_rows": self.block_rows,
            "fanout": self.fanout,
            "tuple_header_bytes": self.tuple_header_bytes,
            "n_pages": self.pager.n_pages,
            "n_rows": self.table.n_rows,
            "table_pages": self.table.pages,
            # Entries of these WAL generations are in pages; recovery
            # must not replay them even if the truncate is lost.
            "wal_generation_sealed": self._sealed_generation,
            "segments": [segment.to_catalog() for segment in self.segments],
        }
        tmp = self.directory / (_MANIFEST + ".tmp")
        with open(tmp, "w") as f:
            f.write(json.dumps(manifest))
            f.flush()
            os.fsync(f.fileno())  # the rename must not beat the content
        os.replace(tmp, self.directory / _MANIFEST)

    # ------------------------------------------------------------------
    # Read path (MiniDB-compatible surface)
    # ------------------------------------------------------------------
    def session(self, u: np.ndarray) -> MiniDBSession:
        """Open a query session bound to preference ``u``."""
        return MiniDBSession(u)

    def topk(
        self,
        u: np.ndarray,
        k: int,
        lo: int,
        hi: int,
        ub_cache: dict | None = None,
        session: MiniDBSession | None = None,
    ) -> list[int]:
        """Exact top-k row ids in ``[lo, hi]`` across segments and tail.

        Sealed candidates come from the per-segment index tables (page
        accounted, upper-bound pruned); tail candidates are in-memory
        (WAL-backed rows cost no page reads, as in any memtable). The
        merge under the canonical ``(score, id)`` descending order makes
        the stitched answer equal a single index over all rows.
        """
        if k <= 0:
            return []
        u = np.asarray(u, dtype=float)
        lo = max(lo, 0)
        hi = min(hi, self.n - 1)
        if hi < lo:
            return []
        if session is None:
            session = MiniDBSession(u)
            if ub_cache is not None:
                session.ub = ub_cache
        candidates: list[tuple[float, int]] = []
        for segment in self.segments:
            if segment.root is None or segment.root.hi < lo or segment.root.lo > hi:
                continue
            ids, scores = segment.topk_with_scores(
                self.table, u, k, lo, hi, session=session
            )
            candidates.extend(zip(scores, ids))
        first_tail = self.table.n_rows
        if self._tail and hi >= first_tail:
            a = max(lo, first_tail) - first_tail
            b = hi - first_tail
            tail_scores = np.asarray(self._tail[a : b + 1], dtype=float) @ u
            order = np.lexsort((np.arange(a, b + 1), tail_scores))[::-1][:k]
            for i in order:
                candidates.append((float(tail_scores[i]), first_tail + a + int(i)))
        candidates.sort(reverse=True)
        return [gid for _, gid in candidates[:k]]

    def score_of(
        self, u: np.ndarray, row_id: int, session: MiniDBSession | None = None
    ) -> float:
        """One row's preference score (buffered page read, or tail memory)."""
        first_tail = self.table.n_rows
        if row_id >= first_tail:
            if row_id >= self.n:
                raise IndexError(f"row {row_id} out of range [0, {self.n})")
            return float(np.dot(self._tail[row_id - first_tail], np.asarray(u, dtype=float)))
        return buffered_score_of(self.table, self.buffer, u, row_id, session)

    def storage_pages(self) -> int:
        """Total allocated pages (data + index)."""
        return self.pager.n_pages

    def reset_io(self, cold: bool = False) -> None:
        """Zero the I/O counters; with ``cold`` also empty the buffer pool."""
        if cold:
            self.buffer.clear()
        self.buffer.reset_counters()

    def io_stats(self) -> dict[str, int | float]:
        """Current buffer-pool counters."""
        return {
            "logical_reads": self.buffer.logical_reads,
            "physical_reads": self.buffer.physical_reads,
            "hit_rate": round(self.buffer.hit_rate, 4),
        }

    def close(self) -> None:
        """Flush the WAL and release the files (the store stays on disk)."""
        self.wal.close()
        self.pager.close()

    def __enter__(self) -> "LiveMiniDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
