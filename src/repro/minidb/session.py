"""MiniDB query sessions: CPU caches layered *above* the buffer pool.

The paper's PostgreSQL procedures enjoy a hot buffer cache: consecutive
top-k calls inside one durable query hit the same index and data pages.
MiniDB's buffer pool reproduces the page-level caching; what it cannot
reproduce is PostgreSQL's compiled execution — every page MiniDB touches
is re-decoded and re-scored in Python, and at laptop scale that CPU cost
swamps the I/O the algorithms are designed to save.

:class:`MiniDBSession` fixes the imbalance without distorting the I/O
accounting. It caches *derived* values — block upper bounds, decoded
skyline points, score vectors for row ranges and data pages — all keyed
to one preference vector. Crucially, a cache hit still **replays** the
page accesses the uncached computation would have made (the same
``BufferPool.get`` calls, in the same order), so ``logical_reads``,
``physical_reads`` and the LRU eviction state evolve *identically* to a
session-free run: the session saves decode/matvec CPU, never counted
page work. Table IV–VI page numbers are therefore byte-for-byte stable
across this optimisation, while wall time drops to where the paper's
page-count ordering also holds on seconds.

Sessions are cheap; create one per stored-procedure invocation (both
procedures do when not handed one) and never reuse across preference
vectors. Like every :class:`~repro.core.session.QuerySession` they are
context managers — ``with db.session(u) as s: ...`` drops the cached
state on exit — and the service layer's session pool closes evicted
sessions eagerly through the same :meth:`close` hook.
"""

from __future__ import annotations

import numpy as np

from repro.core.session import QuerySession

__all__ = ["MiniDBSession"]


class MiniDBSession(QuerySession):
    """Per-invocation cache bundle for one preference vector over MiniDB.

    Cache layout (all inherited from :class:`QuerySession`):

    * ``ub`` — ``id(block) -> float`` upper bound of the block's skyline
      under ``u`` (what the seed implementation kept in ``ub_cache``);
    * ``points`` — ``id(block) -> (m, d+1) ndarray`` decoded skyline
      points, so a block is decoded once per session, not once per
      upper-bound computation;
    * ``range_scores`` — ``(lo, hi) -> (m,) ndarray`` scores of data rows
      ``lo..hi`` (the candidate scores a leaf block contributes);
    * ``page_scores`` — ``page_id -> (rows_per_page,) ndarray`` scores of
      one whole data page (serves T-Base's per-slide point lookups).
    """

    __slots__ = ()

    def __init__(self, u: np.ndarray) -> None:
        if u is None:
            raise ValueError("a MiniDB session must be bound to a preference vector")
        super().__init__(u)
