"""Heap table of fixed-width float rows.

Rows are the records' ``d`` float64 attributes; the row id *is* the
normalised arrival time, so the table is clustered on time — exactly how
the paper loads its temporal tables ("an additional column representing
arriving time instant", primary-key ordered).

Each row carries ``tuple_header_bytes`` of per-tuple overhead, modelling a
real DBMS (PostgreSQL spends ~23 bytes of tuple header plus item pointer
and alignment per row). Without it, narrow laptop-scale tables would fit
entirely inside the buffer pool and the paged experiments would measure
nothing.

The table keeps a page table (``row page index -> page id``) rather than
assuming its pages are contiguous in the file: the live append path
interleaves heap pages with per-segment index pages, so a bulk-loaded
run and later appended runs may sit apart. Bulk loads still produce the
same dense layout as before.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.minidb.buffer import BufferPool
from repro.minidb.pager import Pager

__all__ = ["HeapTable", "TUPLE_HEADER_BYTES"]

#: Default per-tuple overhead (header + item pointer + alignment).
TUPLE_HEADER_BYTES = 40


class HeapTable:
    """Fixed-width rows packed into pages, addressed by row id.

    Row layout: ``d`` little-endian float64 attributes followed by
    ``tuple_header_bytes`` of padding.
    """

    def __init__(
        self,
        pager: Pager,
        buffer_pool: BufferPool,
        d: int,
        tuple_header_bytes: int = TUPLE_HEADER_BYTES,
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if tuple_header_bytes < 0:
            raise ValueError(f"tuple_header_bytes must be >= 0, got {tuple_header_bytes}")
        self._pager = pager
        self._buffer = buffer_pool
        self.d = d
        self.payload_bytes = 8 * d
        self.row_bytes = self.payload_bytes + tuple_header_bytes
        self.rows_per_page = pager.page_size // self.row_bytes
        if self.rows_per_page < 1:
            raise ValueError(
                f"a {pager.page_size}-byte page cannot hold a {self.row_bytes}-byte row"
            )
        self.n_rows = 0
        self._pages: list[int] = []  # row page index -> page id
        self._page_index: dict[int, int] = {}  # page id -> row page index
        self._fmt = f"<{d}d"

    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        pager: Pager,
        buffer_pool: BufferPool,
        tuple_header_bytes: int = TUPLE_HEADER_BYTES,
    ) -> "HeapTable":
        """Bulk-load an ``(n, d)`` matrix into a fresh table."""
        values = np.ascontiguousarray(values, dtype="<f8")
        table = cls(pager, buffer_pool, values.shape[1], tuple_header_bytes)
        table.append_rows(values)
        return table

    @classmethod
    def attach(
        cls,
        pager: Pager,
        buffer_pool: BufferPool,
        d: int,
        pages: list[int],
        n_rows: int,
        tuple_header_bytes: int = TUPLE_HEADER_BYTES,
    ) -> "HeapTable":
        """Re-attach a table whose pages already exist (recovery path)."""
        table = cls(pager, buffer_pool, d, tuple_header_bytes)
        if n_rows > len(pages) * table.rows_per_page:
            raise ValueError(f"{n_rows} rows cannot fit in {len(pages)} pages")
        table.n_rows = n_rows
        table._pages = list(pages)
        table._page_index = {page_id: i for i, page_id in enumerate(pages)}
        return table

    def append_rows(self, values: np.ndarray) -> int:
        """Append ``(m, d)`` rows; returns the first new row id.

        Fills the trailing partial page in place (read-modify-write
        through the pager, with the stale buffered copy invalidated),
        then packs the remainder into freshly allocated pages — the
        append pages of the live ingest path.
        """
        values = np.ascontiguousarray(values, dtype="<f8")
        if values.ndim != 2 or values.shape[1] != self.d:
            raise ValueError(f"values must be (m, {self.d}), got {values.shape}")
        first_new = self.n_rows
        if len(values) == 0:
            return first_new
        rpp = self.rows_per_page
        start = 0
        slot = self.n_rows % rpp
        if slot:
            # Top up the partial last page.
            page_id = self._pages[-1]
            take = min(rpp - slot, len(values))
            data = bytearray(self._pager.read_page(page_id))
            chunk = values[:take]
            packed = np.zeros((take, self.row_bytes), dtype=np.uint8)
            packed[:, : self.payload_bytes] = chunk.view(np.uint8).reshape(
                take, self.payload_bytes
            )
            data[slot * self.row_bytes : (slot + take) * self.row_bytes] = packed.tobytes()
            self._pager.write_page(page_id, bytes(data))
            self._buffer.invalidate(page_id)
            start = take
        while start < len(values):
            chunk = values[start : start + rpp]
            packed = np.zeros((len(chunk), self.row_bytes), dtype=np.uint8)
            packed[:, : self.payload_bytes] = chunk.view(np.uint8).reshape(
                len(chunk), self.payload_bytes
            )
            page_id = self._pager.n_pages
            self._pager.write_page(page_id, packed.tobytes())
            self._page_index[page_id] = len(self._pages)
            self._pages.append(page_id)
            start += len(chunk)
        self.n_rows += len(values)
        return first_new

    @property
    def n_pages(self) -> int:
        """Number of data pages the table occupies."""
        return len(self._pages)

    @property
    def pages(self) -> list[int]:
        """Page ids in row order (manifest serialisation)."""
        return list(self._pages)

    def _page_of(self, row_id: int) -> tuple[int, int]:
        if not 0 <= row_id < self.n_rows:
            raise IndexError(f"row {row_id} out of range [0, {self.n_rows})")
        page_index, slot = divmod(row_id, self.rows_per_page)
        return self._pages[page_index], slot

    def page_of(self, row_id: int) -> tuple[int, int]:
        """``(page_id, slot)`` address of a row (no page access)."""
        return self._page_of(row_id)

    def read_row(self, row_id: int) -> tuple[float, ...]:
        """One row's attribute values (a buffered page read)."""
        page_id, slot = self._page_of(row_id)
        data = self._buffer.get(page_id)
        return struct.unpack_from(self._fmt, data, slot * self.row_bytes)

    def read_rows(self, lo: int, hi: int) -> np.ndarray:
        """Rows ``[lo, hi]`` inclusive as an ``(m, d)`` array (clamped)."""
        lo = max(lo, 0)
        hi = min(hi, self.n_rows - 1)
        if hi < lo:
            return np.empty((0, self.d))
        out = np.empty((hi - lo + 1, self.d))
        row = lo
        while row <= hi:
            page_id, slot = self._page_of(row)
            data = self._buffer.get(page_id)
            take = min(self.rows_per_page - slot, hi - row + 1)
            raw = np.frombuffer(data, dtype=np.uint8, count=take * self.row_bytes, offset=slot * self.row_bytes)
            payload = raw.reshape(take, self.row_bytes)[:, : self.payload_bytes]
            out[row - lo : row - lo + take] = (
                np.ascontiguousarray(payload).view("<f8").reshape(take, self.d)
            )
            row += take
        return out

    def touch_rows(self, lo: int, hi: int) -> None:
        """Replay the buffered page reads of ``read_rows(lo, hi)``.

        Issues the exact same ``BufferPool.get`` calls (same pages, same
        ascending order) without decoding, so a session-level score cache
        hit leaves the page accounting identical to an uncached read.
        """
        lo = max(lo, 0)
        hi = min(hi, self.n_rows - 1)
        if hi < lo:
            return
        first_index = lo // self.rows_per_page
        last_index = hi // self.rows_per_page
        for page_index in range(first_index, last_index + 1):
            self._buffer.get(self._pages[page_index])

    def read_page_rows(self, page_id: int) -> np.ndarray:
        """All rows stored on one data page as an ``(m, d)`` array.

        One buffered page read — the same cost as a single ``read_row`` —
        decoded in bulk, so per-row score lookups can be served from a
        page-level cache.
        """
        page_index = self._page_index.get(page_id)
        if page_index is None:
            raise IndexError(f"page {page_id} holds no rows of this table")
        start_row = page_index * self.rows_per_page
        if not 0 <= start_row < self.n_rows:
            raise IndexError(f"page {page_id} holds no rows of this table")
        count = min(self.rows_per_page, self.n_rows - start_row)
        data = self._buffer.get(page_id)
        raw = np.frombuffer(data, dtype=np.uint8, count=count * self.row_bytes)
        payload = raw.reshape(count, self.row_bytes)[:, : self.payload_bytes]
        return np.ascontiguousarray(payload).view("<f8").reshape(count, self.d)
