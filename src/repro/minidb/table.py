"""Heap table of fixed-width float rows.

Rows are the records' ``d`` float64 attributes; the row id *is* the
normalised arrival time, so the table is clustered on time — exactly how
the paper loads its temporal tables ("an additional column representing
arriving time instant", primary-key ordered).

Each row carries ``tuple_header_bytes`` of per-tuple overhead, modelling a
real DBMS (PostgreSQL spends ~23 bytes of tuple header plus item pointer
and alignment per row). Without it, narrow laptop-scale tables would fit
entirely inside the buffer pool and the paged experiments would measure
nothing.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.minidb.buffer import BufferPool
from repro.minidb.pager import Pager

__all__ = ["HeapTable", "TUPLE_HEADER_BYTES"]

#: Default per-tuple overhead (header + item pointer + alignment).
TUPLE_HEADER_BYTES = 40


class HeapTable:
    """Fixed-width rows packed into pages, addressed by row id.

    Row layout: ``d`` little-endian float64 attributes followed by
    ``tuple_header_bytes`` of padding.
    """

    def __init__(
        self,
        pager: Pager,
        buffer_pool: BufferPool,
        d: int,
        tuple_header_bytes: int = TUPLE_HEADER_BYTES,
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if tuple_header_bytes < 0:
            raise ValueError(f"tuple_header_bytes must be >= 0, got {tuple_header_bytes}")
        self._pager = pager
        self._buffer = buffer_pool
        self.d = d
        self.payload_bytes = 8 * d
        self.row_bytes = self.payload_bytes + tuple_header_bytes
        self.rows_per_page = pager.page_size // self.row_bytes
        if self.rows_per_page < 1:
            raise ValueError(
                f"a {pager.page_size}-byte page cannot hold a {self.row_bytes}-byte row"
            )
        self.n_rows = 0
        self._first_page: int | None = None
        self._fmt = f"<{d}d"

    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        pager: Pager,
        buffer_pool: BufferPool,
        tuple_header_bytes: int = TUPLE_HEADER_BYTES,
    ) -> "HeapTable":
        """Bulk-load an ``(n, d)`` matrix into a fresh table."""
        values = np.ascontiguousarray(values, dtype="<f8")
        table = cls(pager, buffer_pool, values.shape[1], tuple_header_bytes)
        table._first_page = pager.n_pages
        rpp = table.rows_per_page
        for start in range(0, len(values), rpp):
            chunk = values[start : start + rpp]
            page = np.zeros((len(chunk), table.row_bytes), dtype=np.uint8)
            page[:, : table.payload_bytes] = chunk.view(np.uint8).reshape(
                len(chunk), table.payload_bytes
            )
            pager.write_page(pager.n_pages, page.tobytes())
        table.n_rows = len(values)
        return table

    @property
    def n_pages(self) -> int:
        """Number of data pages the table occupies."""
        return (self.n_rows + self.rows_per_page - 1) // self.rows_per_page

    def _page_of(self, row_id: int) -> tuple[int, int]:
        if not 0 <= row_id < self.n_rows:
            raise IndexError(f"row {row_id} out of range [0, {self.n_rows})")
        page_index, slot = divmod(row_id, self.rows_per_page)
        return self._first_page + page_index, slot

    def page_of(self, row_id: int) -> tuple[int, int]:
        """``(page_id, slot)`` address of a row (no page access)."""
        return self._page_of(row_id)

    def read_row(self, row_id: int) -> tuple[float, ...]:
        """One row's attribute values (a buffered page read)."""
        page_id, slot = self._page_of(row_id)
        data = self._buffer.get(page_id)
        return struct.unpack_from(self._fmt, data, slot * self.row_bytes)

    def read_rows(self, lo: int, hi: int) -> np.ndarray:
        """Rows ``[lo, hi]`` inclusive as an ``(m, d)`` array (clamped)."""
        lo = max(lo, 0)
        hi = min(hi, self.n_rows - 1)
        if hi < lo:
            return np.empty((0, self.d))
        out = np.empty((hi - lo + 1, self.d))
        row = lo
        while row <= hi:
            page_id, slot = self._page_of(row)
            data = self._buffer.get(page_id)
            take = min(self.rows_per_page - slot, hi - row + 1)
            raw = np.frombuffer(data, dtype=np.uint8, count=take * self.row_bytes, offset=slot * self.row_bytes)
            payload = raw.reshape(take, self.row_bytes)[:, : self.payload_bytes]
            out[row - lo : row - lo + take] = (
                np.ascontiguousarray(payload).view("<f8").reshape(take, self.d)
            )
            row += take
        return out

    def touch_rows(self, lo: int, hi: int) -> None:
        """Replay the buffered page reads of ``read_rows(lo, hi)``.

        Issues the exact same ``BufferPool.get`` calls (same pages, same
        ascending order) without decoding, so a session-level score cache
        hit leaves the page accounting identical to an uncached read.
        """
        lo = max(lo, 0)
        hi = min(hi, self.n_rows - 1)
        if hi < lo:
            return
        first_page, _ = self._page_of(lo)
        last_page, _ = self._page_of(hi)
        for page_id in range(first_page, last_page + 1):
            self._buffer.get(page_id)

    def read_page_rows(self, page_id: int) -> np.ndarray:
        """All rows stored on one data page as an ``(m, d)`` array.

        One buffered page read — the same cost as a single ``read_row`` —
        decoded in bulk, so per-row score lookups can be served from a
        page-level cache.
        """
        if self._first_page is None:
            raise IndexError("table holds no pages")
        page_index = page_id - self._first_page
        start_row = page_index * self.rows_per_page
        if not 0 <= start_row < self.n_rows:
            raise IndexError(f"page {page_id} holds no rows of this table")
        count = min(self.rows_per_page, self.n_rows - start_row)
        data = self._buffer.get(page_id)
        raw = np.frombuffer(data, dtype=np.uint8, count=count * self.row_bytes)
        payload = raw.reshape(count, self.row_bytes)[:, : self.payload_bytes]
        return np.ascontiguousarray(payload).view("<f8").reshape(count, self.d)
