"""The paper's "index table": hierarchical per-block skylines in pages.

Section VI-C: "we also create corresponding index tables to support
efficient top-k records retrieval. The index table is similar to the
tree-based index [of Appendix A], providing sufficient data reduction for
answering range top-k queries."

Level 0 partitions the row space into blocks of ``block_rows`` consecutive
rows and stores each block's skyline; level ``i+1`` groups ``fanout``
level-``i`` blocks and stores the skyline of their union. All skyline
points — ``(row_id, attributes)`` tuples — live in index *pages*, read
through the buffer pool, so every upper-bound evaluation has a page cost,
just as in a real DBMS.

A range top-k query runs best-first search over blocks (upper bound = max
preference score over the block's skyline), descending levels, and reads
the data pages of chosen level-0 blocks to produce the exact result.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from repro.index.skyline import skyline_indices
from repro.minidb.buffer import BufferPool
from repro.minidb.pager import Pager
from repro.minidb.table import HeapTable

__all__ = ["BlockSkylineIndex"]


class _Block:
    """Catalog entry (in-memory metadata, as a DBMS keeps in its catalog)."""

    __slots__ = ("lo", "hi", "point_offset", "n_points", "children")

    def __init__(self, lo: int, hi: int, point_offset: int, n_points: int, children) -> None:
        self.lo = lo
        self.hi = hi
        self.point_offset = point_offset
        self.n_points = n_points
        self.children = children  # list[_Block] | None for level 0


class BlockSkylineIndex:
    """Hierarchical skyline summaries with page-level access accounting."""

    def __init__(
        self,
        values: np.ndarray,
        pager: Pager,
        buffer_pool: BufferPool,
        block_rows: int = 256,
        fanout: int = 8,
    ) -> None:
        if block_rows < 1 or fanout < 2:
            raise ValueError("need block_rows >= 1 and fanout >= 2")
        values = np.asarray(values, dtype=float)
        self.d = values.shape[1]
        self.block_rows = block_rows
        self.fanout = fanout
        self._buffer = buffer_pool
        self._pager = pager
        self._point_bytes = 8 * (self.d + 1)  # row id (as float) + attributes
        self._points_per_page = pager.page_size // self._point_bytes
        self._first_page = pager.n_pages
        self._next_point = 0
        self._page_buffer = bytearray()
        self._fmt = f"<{self.d + 1}d"
        self._cached_rows: dict[tuple[int, int], np.ndarray] = {}

        n = len(values)
        level: list[_Block] = [
            self._make_block(values, lo, min(lo + block_rows - 1, n - 1), None)
            for lo in range(0, n, block_rows)
        ]
        self.n_levels = 1
        while len(level) > 1:
            parents: list[_Block] = []
            for i in range(0, len(level), fanout):
                group = level[i : i + fanout]
                parents.append(
                    self._make_block(values, group[0].lo, group[-1].hi, group)
                )
            level = parents
            self.n_levels += 1
        self._flush_page_buffer()
        self.root = level[0] if level else None
        self._cached_rows.clear()  # build-time scratch only

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _make_block(self, values: np.ndarray, lo: int, hi: int, children) -> _Block:
        if children is None:
            rows = np.arange(lo, hi + 1)
        else:
            # The union of children's skylines contains the group skyline;
            # recomputing over it keeps build cost near-linear.
            rows = np.concatenate(
                [self._cached_rows[(c.lo, c.hi)] for c in children]
            )
        sky = rows[skyline_indices(values[rows])]
        self._cached_rows[(lo, hi)] = sky
        offset = self._next_point
        for row in sky:
            self._append_point(int(row), values[row])
        return _Block(lo, hi, offset, len(sky), children)

    def _append_point(self, row_id: int, attrs: np.ndarray) -> None:
        self._page_buffer += struct.pack(self._fmt, float(row_id), *attrs)
        self._next_point += 1
        if len(self._page_buffer) + self._point_bytes > self._pager.page_size:
            self._flush_page_buffer()

    def _flush_page_buffer(self) -> None:
        if self._page_buffer:
            self._pager.write_page(self._pager.n_pages, bytes(self._page_buffer))
            self._page_buffer = bytearray()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _read_points(self, block: _Block) -> np.ndarray:
        """A block's skyline points as an ``(m, d+1)`` array.

        Points are contiguous in the index file; each touched page is read
        once through the buffer pool and decoded in bulk — page-granular
        access, as in a real DBMS.
        """
        ppp = self._points_per_page
        first = block.point_offset
        last = first + block.n_points - 1
        if block.n_points == 0:
            return np.empty((0, self.d + 1))
        chunks: list[np.ndarray] = []
        point = first
        while point <= last:
            page_index, slot = divmod(point, ppp)
            data = self._buffer.get(self._first_page + page_index)
            take = min(ppp - slot, last - point + 1)
            raw = np.frombuffer(
                data,
                dtype="<f8",
                count=take * (self.d + 1),
                offset=slot * self._point_bytes,
            )
            chunks.append(raw.reshape(take, self.d + 1))
            point += take
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]

    def _upper_bound(self, block: _Block, u: np.ndarray, lo: int, hi: int) -> float:
        """Max preference score over the block's skyline.

        For blocks only partially inside ``[lo, hi]`` the skyline max is
        still a valid upper bound for the in-range rows.
        """
        points = self._read_points(block)
        if len(points) == 0:
            return float("-inf")
        return float((points[:, 1:] @ u).max())

    def topk(
        self,
        table: HeapTable,
        u: np.ndarray,
        k: int,
        lo: int,
        hi: int,
        ub_cache: dict | None = None,
    ) -> list[int]:
        """Exact top-k row ids in ``[lo, hi]`` under preference ``u``.

        Canonical order (score desc, later row wins ties), identical to the
        in-memory building blocks.

        ``ub_cache`` (optional, keyed by block) memoises block upper bounds
        across the many top-k calls a durable query makes *with the same
        preference vector* — the analogue of the hot buffer cache the
        paper's PostgreSQL procedures enjoy. Pass a fresh dict per durable
        query; never reuse across preference vectors.
        """
        if self.root is None or k <= 0:
            return []
        lo = max(lo, 0)
        hi = min(hi, table.n_rows - 1)
        if hi < lo:
            return []
        u = np.asarray(u, dtype=float)
        counter = 0  # heap tie-breaker
        heap: list[tuple[float, int, _Block]] = []

        def push(block: _Block) -> None:
            nonlocal counter
            if block.hi < lo or block.lo > hi:
                return
            if ub_cache is not None and id(block) in ub_cache:
                ub = ub_cache[id(block)]
            else:
                ub = self._upper_bound(block, u, lo, hi)
                if ub_cache is not None:
                    ub_cache[id(block)] = ub
            counter += 1
            heapq.heappush(heap, (-ub, counter, block))

        push(self.root)
        ids: list[int] = []
        scores: list[float] = []
        kth_score: float | None = None
        while heap:
            neg_ub, _, block = heapq.heappop(heap)
            if kth_score is not None and -neg_ub < kth_score:
                break
            if block.children is not None:
                for child in block.children:
                    push(child)
                continue
            rows = table.read_rows(max(block.lo, lo), min(block.hi, hi))
            base = max(block.lo, lo)
            block_scores = rows @ u
            ids.extend(range(base, base + len(rows)))
            scores.extend(block_scores.tolist())
            if len(ids) >= k:
                order = np.lexsort((ids, scores))[::-1]
                kth_score = float(np.asarray(scores)[order[k - 1]])
        order = np.lexsort((ids, scores))[::-1]
        return [int(np.asarray(ids)[i]) for i in order[:k]]
