"""The paper's "index table": hierarchical per-block skylines in pages.

Section VI-C: "we also create corresponding index tables to support
efficient top-k records retrieval. The index table is similar to the
tree-based index [of Appendix A], providing sufficient data reduction for
answering range top-k queries."

Level 0 partitions the row space into blocks of ``block_rows`` consecutive
rows and stores each block's skyline; level ``i+1`` groups ``fanout``
level-``i`` blocks and stores the skyline of their union. All skyline
points — ``(row_id, attributes)`` tuples — live in index *pages*, read
through the buffer pool, so every upper-bound evaluation has a page cost,
just as in a real DBMS.

A range top-k query runs best-first search over blocks (upper bound = max
preference score over the block's skyline), descending levels, and reads
the data pages of chosen level-0 blocks to produce the exact result.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from repro.index.skyline import skyline_indices
from repro.minidb.buffer import BufferPool
from repro.minidb.pager import Pager
from repro.minidb.session import MiniDBSession
from repro.minidb.table import HeapTable

__all__ = ["BlockSkylineIndex"]


class _Block:
    """Catalog entry (in-memory metadata, as a DBMS keeps in its catalog)."""

    __slots__ = ("lo", "hi", "point_offset", "n_points", "children")

    def __init__(self, lo: int, hi: int, point_offset: int, n_points: int, children) -> None:
        self.lo = lo
        self.hi = hi
        self.point_offset = point_offset
        self.n_points = n_points
        self.children = children  # list[_Block] | None for level 0


class BlockSkylineIndex:
    """Hierarchical skyline summaries with page-level access accounting.

    ``row_base`` offsets every stored row id: a live segment's index is
    built over the segment's values only but addresses the global row
    space, so cross-segment queries merge per-segment answers without
    translation. Bulk builds keep the default base 0.
    """

    def __init__(
        self,
        values: np.ndarray,
        pager: Pager,
        buffer_pool: BufferPool,
        block_rows: int = 256,
        fanout: int = 8,
        row_base: int = 0,
    ) -> None:
        if block_rows < 1 or fanout < 2:
            raise ValueError("need block_rows >= 1 and fanout >= 2")
        if row_base < 0:
            raise ValueError(f"row_base must be >= 0, got {row_base}")
        values = np.asarray(values, dtype=float)
        self.d = values.shape[1]
        self.block_rows = block_rows
        self.fanout = fanout
        self.row_base = row_base
        self._buffer = buffer_pool
        self._pager = pager
        self._point_bytes = 8 * (self.d + 1)  # row id (as float) + attributes
        self._points_per_page = pager.page_size // self._point_bytes
        self._first_page = pager.n_pages
        self._next_point = 0
        self._page_buffer = bytearray()
        self._fmt = f"<{self.d + 1}d"
        self._cached_rows: dict[tuple[int, int], np.ndarray] = {}

        n = len(values)
        level: list[_Block] = [
            self._make_block(values, lo, min(lo + block_rows - 1, n - 1), None)
            for lo in range(0, n, block_rows)
        ]
        self.n_levels = 1
        while len(level) > 1:
            parents: list[_Block] = []
            for i in range(0, len(level), fanout):
                group = level[i : i + fanout]
                parents.append(
                    self._make_block(
                        values, group[0].lo - row_base, group[-1].hi - row_base, group
                    )
                )
            level = parents
            self.n_levels += 1
        self._flush_page_buffer()
        self.root = level[0] if level else None
        self._cached_rows.clear()  # build-time scratch only

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _make_block(self, values: np.ndarray, lo: int, hi: int, children) -> _Block:
        """Build one block; ``lo``/``hi`` are *local* (pre-offset) rows."""
        if children is None:
            rows = np.arange(lo, hi + 1)
        else:
            # The union of children's skylines contains the group skyline;
            # recomputing over it keeps build cost near-linear.
            rows = np.concatenate(
                [self._cached_rows[(c.lo - self.row_base, c.hi - self.row_base)] for c in children]
            )
        sky = rows[skyline_indices(values[rows])]
        self._cached_rows[(lo, hi)] = sky
        offset = self._next_point
        for row in sky:
            self._append_point(int(row) + self.row_base, values[row])
        return _Block(lo + self.row_base, hi + self.row_base, offset, len(sky), children)

    def _append_point(self, row_id: int, attrs: np.ndarray) -> None:
        self._page_buffer += struct.pack(self._fmt, float(row_id), *attrs)
        self._next_point += 1
        if len(self._page_buffer) + self._point_bytes > self._pager.page_size:
            self._flush_page_buffer()

    def _flush_page_buffer(self) -> None:
        if self._page_buffer:
            self._pager.write_page(self._pager.n_pages, bytes(self._page_buffer))
            self._page_buffer = bytearray()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _read_points(self, block: _Block) -> np.ndarray:
        """A block's skyline points as an ``(m, d+1)`` array.

        Points are contiguous in the index file; each touched page is read
        once through the buffer pool and decoded in bulk — page-granular
        access, as in a real DBMS.
        """
        ppp = self._points_per_page
        first = block.point_offset
        last = first + block.n_points - 1
        if block.n_points == 0:
            return np.empty((0, self.d + 1))
        chunks: list[np.ndarray] = []
        point = first
        while point <= last:
            page_index, slot = divmod(point, ppp)
            data = self._buffer.get(self._first_page + page_index)
            take = min(ppp - slot, last - point + 1)
            raw = np.frombuffer(
                data,
                dtype="<f8",
                count=take * (self.d + 1),
                offset=slot * self._point_bytes,
            )
            chunks.append(raw.reshape(take, self.d + 1))
            point += take
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]

    def _touch_point_pages(self, block: _Block) -> None:
        """Replay the buffered page reads of ``_read_points``.

        Called on a session cache hit so the buffer-pool counters and LRU
        state evolve exactly as an uncached read would have made them
        (same pages, same ascending order).
        """
        if block.n_points == 0:
            return
        ppp = self._points_per_page
        first_page = block.point_offset // ppp
        last_page = (block.point_offset + block.n_points - 1) // ppp
        for page in range(first_page, last_page + 1):
            self._buffer.get(self._first_page + page)

    def _block_points(self, block: _Block, session: MiniDBSession) -> np.ndarray:
        """A block's decoded skyline points, decoded once per session."""
        points = session.points.get(id(block))
        if points is not None:
            self._touch_point_pages(block)
            return points
        points = self._read_points(block)
        session.points[id(block)] = points
        return points

    def _ensure_upper_bounds(self, blocks: list[_Block], session: MiniDBSession) -> None:
        """Fill ``session.ub`` for every block in ``blocks`` (one matvec).

        A block's upper bound is the max preference score over its skyline
        — valid for partially-overlapped blocks too, since the skyline max
        bounds every in-range row.

        Blocks already bounded are skipped; the rest have their skyline
        points decoded (in block order, preserving the page access
        sequence) and scored with a single batched matrix-vector product,
        then segment maxima via ``np.maximum.reduceat``.
        """
        ub_cache = session.ub
        missing = [blk for blk in blocks if id(blk) not in ub_cache]
        if not missing:
            return
        points = [self._block_points(blk, session) for blk in missing]
        nonempty = [(blk, pts) for blk, pts in zip(missing, points) if len(pts)]
        for blk, pts in zip(missing, points):
            if len(pts) == 0:
                ub_cache[id(blk)] = float("-inf")
        if not nonempty:
            return
        stacked = (
            np.concatenate([pts[:, 1:] for _, pts in nonempty])
            if len(nonempty) > 1
            else nonempty[0][1][:, 1:]
        )
        scores = stacked @ session.u
        counts = np.fromiter((len(pts) for _, pts in nonempty), dtype=np.int64)
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        maxima = np.maximum.reduceat(scores, starts)
        for (blk, _), ub in zip(nonempty, maxima):
            ub_cache[id(blk)] = float(ub)

    def _range_scores(
        self, table: HeapTable, session: MiniDBSession, lo: int, hi: int
    ) -> np.ndarray:
        """Scores of data rows ``[lo, hi]``, cached per session.

        A hit replays the same buffered page reads ``read_rows`` would
        issue, keeping page accounting identical to an uncached run.
        """
        key = (lo, hi)
        scores = session.range_scores.get(key)
        if scores is not None:
            table.touch_rows(lo, hi)
            return scores
        scores = table.read_rows(lo, hi) @ session.u
        session.range_scores[key] = scores
        return scores

    def topk(
        self,
        table: HeapTable,
        u: np.ndarray,
        k: int,
        lo: int,
        hi: int,
        ub_cache: dict | None = None,
        session: MiniDBSession | None = None,
    ) -> list[int]:
        """Exact top-k row ids in ``[lo, hi]`` under preference ``u``.

        Canonical order (score desc, later row wins ties), identical to the
        in-memory building blocks.

        ``session`` (optional) carries the per-preference caches across the
        many top-k calls a durable query makes *with the same preference
        vector* — the analogue of the hot buffer cache the paper's
        PostgreSQL procedures enjoy (see
        :class:`~repro.minidb.session.MiniDBSession`). ``ub_cache`` is the
        legacy form: a bare dict holding only the upper-bound cache. Pass a
        fresh session/dict per durable query; never reuse across
        preference vectors.
        """
        ids, _ = self.topk_with_scores(table, u, k, lo, hi, ub_cache=ub_cache, session=session)
        return ids

    def topk_with_scores(
        self,
        table: HeapTable,
        u: np.ndarray,
        k: int,
        lo: int,
        hi: int,
        ub_cache: dict | None = None,
        session: MiniDBSession | None = None,
    ) -> tuple[list[int], list[float]]:
        """:meth:`topk` plus each winner's score (no extra page reads).

        The scores come from the candidate buffers the search already
        filled, so callers merging answers across segment indexes (the
        live MiniDB read path) pay no additional accounting.
        """
        if self.root is None or k <= 0:
            return [], []
        lo = max(lo, 0, self.root.lo)
        hi = min(hi, table.n_rows - 1, self.root.hi)
        if hi < lo:
            return [], []
        if session is None:
            session = MiniDBSession(u)
            if ub_cache is not None:
                session.ub = ub_cache
        elif u is not session.u and not np.array_equal(u, session.u):
            raise ValueError(
                "session was opened for a different preference vector; "
                "open one per preference via MiniDB.session()"
            )
        u = session.u
        counter = 0  # heap tie-breaker
        heap: list[tuple[float, int, _Block]] = []

        def push(block: _Block) -> None:
            nonlocal counter
            counter += 1
            heapq.heappush(heap, (-session.ub[id(block)], counter, block))

        self._ensure_upper_bounds([self.root], session)
        push(self.root)
        # Candidate accumulation in preallocated buffers (grown by
        # doubling); one lexsort at the end replaces the per-block
        # re-sorts and per-element conversions of a naive implementation.
        cap = max(2 * self.block_rows, k)
        ids_buf = np.empty(cap, dtype=np.int64)
        scores_buf = np.empty(cap, dtype=np.float64)
        m = 0
        kth_score: float | None = None
        while heap:
            neg_ub, _, block = heapq.heappop(heap)
            if kth_score is not None and -neg_ub < kth_score:
                break
            if block.children is not None:
                overlapping = [
                    child
                    for child in block.children
                    if not (child.hi < lo or child.lo > hi)
                ]
                self._ensure_upper_bounds(overlapping, session)
                for child in overlapping:
                    push(child)
                continue
            a, b = max(block.lo, lo), min(block.hi, hi)
            block_scores = self._range_scores(table, session, a, b)
            count = b - a + 1
            if m + count > cap:
                cap = max(2 * cap, m + count)
                ids_buf = np.resize(ids_buf, cap)
                scores_buf = np.resize(scores_buf, cap)
            ids_buf[m : m + count] = np.arange(a, b + 1)
            scores_buf[m : m + count] = block_scores
            m += count
            if m >= k:
                # k-th largest score (ties need no id refinement: the
                # break test above compares scores only).
                kth_score = float(np.partition(scores_buf[:m], m - k)[m - k])
        ids_v, scores_v = ids_buf[:m], scores_buf[:m]
        order = np.lexsort((ids_v, scores_v))[::-1][:k]
        return [int(i) for i in ids_v[order]], [float(s) for s in scores_v[order]]

    # ------------------------------------------------------------------
    # Catalog (de)serialisation — the recovery path
    # ------------------------------------------------------------------
    def to_catalog(self) -> dict:
        """JSON-safe description of the block tree and page placement.

        The skyline *points* live in pages and survive in the data file;
        this catalog is the in-memory metadata needed to address them
        again, persisted in the live store's manifest so a reopened
        database serves the exact same index (same pages, same block
        structure, same accounting) without a rebuild.
        """

        def encode(block: _Block) -> list:
            children = None
            if block.children is not None:
                children = [encode(child) for child in block.children]
            return [block.lo, block.hi, block.point_offset, block.n_points, children]

        return {
            "d": self.d,
            "block_rows": self.block_rows,
            "fanout": self.fanout,
            "row_base": self.row_base,
            "first_page": self._first_page,
            "n_levels": self.n_levels,
            "root": None if self.root is None else encode(self.root),
        }

    @classmethod
    def from_catalog(
        cls, catalog: dict, pager: Pager, buffer_pool: BufferPool
    ) -> "BlockSkylineIndex":
        """Re-attach an index whose pages already exist (recovery path)."""
        index = cls.__new__(cls)
        index.d = catalog["d"]
        index.block_rows = catalog["block_rows"]
        index.fanout = catalog["fanout"]
        index.row_base = catalog["row_base"]
        index._buffer = buffer_pool
        index._pager = pager
        index._point_bytes = 8 * (index.d + 1)
        index._points_per_page = pager.page_size // index._point_bytes
        index._first_page = catalog["first_page"]
        index._next_point = 0
        index._page_buffer = bytearray()
        index._fmt = f"<{index.d + 1}d"
        index._cached_rows = {}
        index.n_levels = catalog["n_levels"]

        def decode(encoded) -> _Block:
            lo, hi, point_offset, n_points, children = encoded
            decoded = None if children is None else [decode(child) for child in children]
            return _Block(lo, hi, point_offset, n_points, decoded)

        index.root = None if catalog["root"] is None else decode(catalog["root"])
        return index
