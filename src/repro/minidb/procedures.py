"""T-Base and T-Hop as MiniDB "stored procedures" (Section VI-C).

Both procedures may touch data only through the page API (buffered row
reads and index-table top-k queries), mirroring the paper's PL/Python
stored procedures inside PostgreSQL. They return the durable record ids
plus an I/O/time report, which the Table IV–VI benchmarks print.

S-Hop is deliberately absent: the paper implements it "as a wrapper
function outside the DBMS" (footnote 10) because of its heap-and-split
bookkeeping, so the DBMS comparison is T-Base versus T-Hop, as in
Tables IV–VI.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field

import numpy as np

from repro.minidb.database import MiniDB

__all__ = ["ProcedureReport", "t_base_procedure", "t_hop_procedure"]


@dataclass
class ProcedureReport:
    """Result and cost accounting of one stored-procedure invocation."""

    ids: list[int]
    algorithm: str
    elapsed_seconds: float
    topk_queries: int
    logical_reads: int
    physical_reads: int
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "answer_size": len(self.ids),
            "seconds": round(self.elapsed_seconds, 4),
            "topk_queries": self.topk_queries,
            "logical_reads": self.logical_reads,
            "physical_reads": self.physical_reads,
            **self.extra,
        }


def _resolve(db: MiniDB, lo: int | None, hi: int | None) -> tuple[int, int]:
    n = db.n
    lo = 0 if lo is None else max(lo, 0)
    hi = n - 1 if hi is None else min(hi, n - 1)
    if hi < lo:
        raise ValueError(f"empty interval: [{lo}, {hi}]")
    return lo, hi


def t_hop_procedure(
    db: MiniDB,
    u: np.ndarray,
    k: int,
    tau: int,
    lo: int | None = None,
    hi: int | None = None,
    cold: bool = True,
) -> ProcedureReport:
    """Algorithm 1 over page storage: hop past non-durable stretches."""
    u = np.asarray(u, dtype=float)
    lo, hi = _resolve(db, lo, hi)
    db.reset_io(cold=cold)
    start = time.perf_counter()
    answer: list[int] = []
    queries = 0
    ub_cache: dict = {}  # per-invocation: u is fixed for the whole query
    t = hi
    while t >= lo:
        top = db.topk(u, k, t - tau, t, ub_cache=ub_cache)
        queries += 1
        if t in top:
            answer.append(t)
            t -= 1
        else:
            t = max(top)
    elapsed = time.perf_counter() - start
    answer.reverse()
    io = db.io_stats()
    return ProcedureReport(
        ids=answer,
        algorithm="t-hop",
        elapsed_seconds=elapsed,
        topk_queries=queries,
        logical_reads=int(io["logical_reads"]),
        physical_reads=int(io["physical_reads"]),
    )


def t_base_procedure(
    db: MiniDB,
    u: np.ndarray,
    k: int,
    tau: int,
    lo: int | None = None,
    hi: int | None = None,
    cold: bool = True,
) -> ProcedureReport:
    """The sliding-window baseline over page storage.

    Maintains the window top-k incrementally; each slide reads the
    entering row (one buffered page access), and a durable expiry forces a
    from-scratch top-k query through the index table — the continuous scan
    whose page cost Tables IV–VI show growing linearly with ``|I|``.
    """
    u = np.asarray(u, dtype=float)
    lo, hi = _resolve(db, lo, hi)
    db.reset_io(cold=cold)
    start = time.perf_counter()
    answer: list[int] = []
    queries = 1
    ub_cache: dict = {}  # per-invocation: u is fixed for the whole query
    t = hi
    top_keys: list[tuple[float, int]] = sorted(
        (db.score_of(u, i), i) for i in db.topk(u, k, t - tau, t, ub_cache=ub_cache)
    )
    top_ids = {i for _, i in top_keys}
    while t >= lo:
        if t in top_ids:
            answer.append(t)
        if t == lo:
            break
        if t in top_ids:
            queries += 1
            top_keys = sorted(
                (db.score_of(u, i), i)
                for i in db.topk(u, k, t - 1 - tau, t - 1, ub_cache=ub_cache)
            )
            top_ids = {i for _, i in top_keys}
        else:
            entering = t - 1 - tau
            if entering >= 0:
                key = (db.score_of(u, entering), entering)
                if len(top_keys) < k:
                    bisect.insort(top_keys, key)
                    top_ids.add(entering)
                elif key > top_keys[0]:
                    _, evicted = top_keys[0]
                    top_ids.discard(evicted)
                    top_keys.pop(0)
                    bisect.insort(top_keys, key)
                    top_ids.add(entering)
        t -= 1
    elapsed = time.perf_counter() - start
    answer.reverse()
    io = db.io_stats()
    return ProcedureReport(
        ids=answer,
        algorithm="t-base",
        elapsed_seconds=elapsed,
        topk_queries=queries,
        logical_reads=int(io["logical_reads"]),
        physical_reads=int(io["physical_reads"]),
    )
