"""T-Base and T-Hop as MiniDB "stored procedures" (Section VI-C).

Both procedures may touch data only through the page API (buffered row
reads and index-table top-k queries), mirroring the paper's PL/Python
stored procedures inside PostgreSQL. They return the durable record ids
plus an I/O/time report, which the Table IV–VI benchmarks print.

Each invocation opens a :class:`~repro.minidb.session.MiniDBSession`
bound to its preference vector: consecutive top-k calls of one durable
query then reuse block upper bounds, decoded skyline points, and score
vectors instead of re-deriving them in Python, while the buffer-pool
accounting stays identical to a session-free run (cache hits replay their
page reads). This is what lets T-Hop's page savings show up on wall time
too, as in the paper.

S-Hop is deliberately absent: the paper implements it "as a wrapper
function outside the DBMS" (footnote 10) because of its heap-and-split
bookkeeping, so the DBMS comparison is T-Base versus T-Hop, as in
Tables IV–VI.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field

import numpy as np

from repro.minidb.database import MiniDB
from repro.obs import trace_span

__all__ = [
    "ProcedureReport",
    "t_base_batch_procedure",
    "t_base_procedure",
    "t_hop_batch_procedure",
    "t_hop_procedure",
]


@dataclass
class ProcedureReport:
    """Result and cost accounting of one stored-procedure invocation."""

    ids: list[int]
    algorithm: str
    elapsed_seconds: float
    topk_queries: int
    logical_reads: int
    physical_reads: int
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "answer_size": len(self.ids),
            "seconds": round(self.elapsed_seconds, 4),
            "topk_queries": self.topk_queries,
            "logical_reads": self.logical_reads,
            "physical_reads": self.physical_reads,
            **self.extra,
        }


def _empty_report(algorithm: str) -> ProcedureReport:
    """The report of a query whose resolved interval is empty."""
    return ProcedureReport(
        ids=[],
        algorithm=algorithm,
        elapsed_seconds=0.0,
        topk_queries=0,
        logical_reads=0,
        physical_reads=0,
    )


def _resolve(db: MiniDB, lo: int | None, hi: int | None) -> tuple[int, int]:
    """Clamp the requested interval to the loaded rows.

    May yield an empty interval (``hi < lo``); the procedures answer those
    with an empty report, matching the in-memory engine's empty-window
    semantics (an empty answer, not an error).
    """
    n = db.n
    lo = 0 if lo is None else max(lo, 0)
    hi = n - 1 if hi is None else min(hi, n - 1)
    return lo, hi


def _validate(k: int, tau: int) -> None:
    """Reject parameters no top-k window can satisfy.

    ``tau = 0`` is legal (a window holding only its own record); the
    in-memory engine's stricter ``tau >= 1`` reflects its query dataclass,
    not the algorithms.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if tau < 0:
        raise ValueError(f"tau must be >= 0, got {tau}")


def _procedure_session(db: MiniDB, u: np.ndarray, session):
    """The invocation's session: the caller's (validated) or a fresh one.

    An externally supplied session lets the service layer keep one warm
    session per preference across many invocations. The decoded-point and
    score-vector caches replay their page reads on every hit, so keeping
    them warm never changes accounting; the upper-bound cache is the one
    cache whose hits *skip* index-page reads (the seed-era ``ub_cache``
    semantics, scoped to one invocation). Clearing it here keeps every
    invocation's ``logical_reads``/``physical_reads`` byte-identical to a
    fresh-session run — warmth saves decode CPU only — which is what lets
    the concurrent service report serial page counts per request.
    """
    if session is None:
        return db.session(u)
    if session.closed:
        raise RuntimeError("session is closed")
    if session.u is not u and not np.array_equal(session.u, u):
        raise ValueError(
            "session was opened for a different preference vector; "
            "open one per preference via MiniDB.session()"
        )
    session.ub.clear()
    return session


def t_hop_procedure(
    db: MiniDB,
    u: np.ndarray,
    k: int,
    tau: int,
    lo: int | None = None,
    hi: int | None = None,
    cold: bool = True,
    session=None,
) -> ProcedureReport:
    """Algorithm 1 over page storage: hop past non-durable stretches."""
    _validate(k, tau)
    u = np.asarray(u, dtype=float)
    lo, hi = _resolve(db, lo, hi)
    if hi < lo:
        return _empty_report("t-hop")
    session = _procedure_session(db, u, session)
    with trace_span("minidb.pages", algorithm="t-hop", k=k, tau=tau, lo=lo, hi=hi) as span:
        db.reset_io(cold=cold)
        start = time.perf_counter()
        answer: list[int] = []
        queries = 0
        t = hi
        while t >= lo:
            top = db.topk(u, k, t - tau, t, session=session)
            queries += 1
            if t in top:
                answer.append(t)
                t -= 1
            else:
                t = max(top)
        elapsed = time.perf_counter() - start
        answer.reverse()
        io = db.io_stats()
        span.set(
            topk_queries=queries,
            logical_reads=int(io["logical_reads"]),
            physical_reads=int(io["physical_reads"]),
        )
    return ProcedureReport(
        ids=answer,
        algorithm="t-hop",
        elapsed_seconds=elapsed,
        topk_queries=queries,
        logical_reads=int(io["logical_reads"]),
        physical_reads=int(io["physical_reads"]),
    )


def t_base_procedure(
    db: MiniDB,
    u: np.ndarray,
    k: int,
    tau: int,
    lo: int | None = None,
    hi: int | None = None,
    cold: bool = True,
    session=None,
) -> ProcedureReport:
    """The sliding-window baseline over page storage.

    Maintains the window top-k incrementally; each slide reads the
    entering row (one buffered page access), and a durable expiry forces a
    from-scratch top-k query through the index table — the continuous scan
    whose page cost Tables IV–VI show growing linearly with ``|I|``.
    """
    _validate(k, tau)
    u = np.asarray(u, dtype=float)
    lo, hi = _resolve(db, lo, hi)
    if hi < lo:
        return _empty_report("t-base")
    session = _procedure_session(db, u, session)
    with trace_span("minidb.pages", algorithm="t-base", k=k, tau=tau, lo=lo, hi=hi) as span:
        db.reset_io(cold=cold)
        start = time.perf_counter()
        answer: list[int] = []
        queries = 1
        t = hi
        top_keys: list[tuple[float, int]] = sorted(
            (db.score_of(u, i, session=session), i)
            for i in db.topk(u, k, t - tau, t, session=session)
        )
        top_ids = {i for _, i in top_keys}
        while t >= lo:
            if t in top_ids:
                answer.append(t)
            if t == lo:
                break
            if t in top_ids:
                queries += 1
                top_keys = sorted(
                    (db.score_of(u, i, session=session), i)
                    for i in db.topk(u, k, t - 1 - tau, t - 1, session=session)
                )
                top_ids = {i for _, i in top_keys}
            else:
                entering = t - 1 - tau
                if entering >= 0:
                    key = (db.score_of(u, entering, session=session), entering)
                    if len(top_keys) < k:
                        bisect.insort(top_keys, key)
                        top_ids.add(entering)
                    elif key > top_keys[0]:
                        _, evicted = top_keys[0]
                        top_ids.discard(evicted)
                        top_keys.pop(0)
                        bisect.insort(top_keys, key)
                        top_ids.add(entering)
            t -= 1
        elapsed = time.perf_counter() - start
        answer.reverse()
        io = db.io_stats()
        span.set(
            topk_queries=queries,
            logical_reads=int(io["logical_reads"]),
            physical_reads=int(io["physical_reads"]),
        )
    return ProcedureReport(
        ids=answer,
        algorithm="t-base",
        elapsed_seconds=elapsed,
        topk_queries=queries,
        logical_reads=int(io["logical_reads"]),
        physical_reads=int(io["physical_reads"]),
    )


def _clone_report(report: ProcedureReport) -> ProcedureReport:
    """An independent copy for a deduplicated twin query."""
    return ProcedureReport(
        ids=list(report.ids),
        algorithm=report.algorithm,
        elapsed_seconds=report.elapsed_seconds,
        topk_queries=report.topk_queries,
        logical_reads=report.logical_reads,
        physical_reads=report.physical_reads,
        extra=dict(report.extra),
    )


def _batch_procedure(
    procedure, db: MiniDB, u: np.ndarray, queries, cold: bool, session
) -> list[ProcedureReport]:
    """Run many ``(k, tau, lo, hi)`` queries through one warm session.

    The batch keeps byte-identical per-query accounting: every distinct
    query runs the unmodified serial procedure (its own ``ub`` clear, its
    own ``reset_io``), so ``logical_reads``/``physical_reads`` equal a
    serial loop's exactly. What the batch shares is the session's decoded
    points and score vectors (their cache hits *replay* page reads — see
    :func:`_procedure_session`) and the execution of duplicate queries,
    which run once and return cloned reports (valid because the
    procedures are deterministic under ``cold=True``).

    With ``cold=False`` the buffer pool additionally stays warm across
    the whole batch, so each touched page is physically read once per
    batch rather than once per query — the realistic serving accounting,
    at the price of interleaving-dependent per-query counts.
    """
    u = np.asarray(u, dtype=float)
    if session is None:
        session = db.session(u)
    reports: list[ProcedureReport] = []
    first_of: dict[tuple, int] = {}
    for k, tau, lo, hi in queries:
        key = (int(k), int(tau), lo, hi)
        source = first_of.get(key)
        if source is not None and cold:
            reports.append(_clone_report(reports[source]))
            continue
        first_of.setdefault(key, len(reports))
        reports.append(procedure(db, u, k, tau, lo, hi, cold=cold, session=session))
    return reports


def t_hop_batch_procedure(
    db: MiniDB,
    u: np.ndarray,
    queries,
    cold: bool = True,
    session=None,
) -> list[ProcedureReport]:
    """Batched :func:`t_hop_procedure`: one warm session, dedup, same counts.

    ``queries`` is a sequence of ``(k, tau, lo, hi)`` tuples (``lo``/``hi``
    may be ``None``); returns one report per query in input order,
    byte-identical to a serial loop of single invocations.
    """
    return _batch_procedure(t_hop_procedure, db, u, queries, cold, session)


def t_base_batch_procedure(
    db: MiniDB,
    u: np.ndarray,
    queries,
    cold: bool = True,
    session=None,
) -> list[ProcedureReport]:
    """Batched :func:`t_base_procedure`; see :func:`t_hop_batch_procedure`."""
    return _batch_procedure(t_base_procedure, db, u, queries, cold, session)
