"""Skyline and k-skyband computation (maximisation convention).

A point ``a`` *dominates* ``b`` when ``a`` is no worse in every dimension and
strictly better in at least one. The *skyline* is the set of non-dominated
points; the *k-skyband* contains every point dominated by fewer than ``k``
others (the skyline is the 1-skyband). Section IV-B of the paper uses the
k-skyband as a candidate superset for top-k answers under monotone scoring
functions, and Appendix A stores per-node skylines inside the tree index.

Two code paths are provided:

* a plane-sweep for ``d == 2`` (``O(n log n)``), and
* a block-vectorised dominator counter for general ``d`` (``O(n^2 / B)``
  numpy block operations), adequate at the dataset scales this repo targets.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pareto_dominates",
    "skyline_indices",
    "kskyband_indices",
    "dominator_counts",
]


def pareto_dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff point ``a`` dominates point ``b`` (maximisation).

    >>> import numpy as np
    >>> pareto_dominates(np.array([2.0, 3.0]), np.array([2.0, 1.0]))
    True
    >>> pareto_dominates(np.array([2.0, 3.0]), np.array([2.0, 3.0]))
    False
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a >= b) and np.any(a > b))


def dominator_counts(points: np.ndarray, cap: int | None = None, block: int = 512) -> np.ndarray:
    """Number of points dominating each point, optionally capped at ``cap``.

    With ``cap`` set, counting for a point stops as soon as ``cap``
    dominators are seen, which keeps the k-skyband test cheap even on large
    inputs. Counting is exact for all values ``< cap``; capped entries hold
    exactly ``cap``.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D (n, d), got shape {pts.shape}")
    n = len(pts)
    counts = np.zeros(n, dtype=np.int64)
    if n == 0:
        return counts
    for start in range(0, n, block):
        stop = min(start + block, n)
        chunk = pts[start:stop]  # (b, d)
        # Compare every point in the chunk against the whole dataset.
        ge = np.all(pts[None, :, :] >= chunk[:, None, :], axis=2)
        gt = np.any(pts[None, :, :] > chunk[:, None, :], axis=2)
        dom = ge & gt  # (b, n): dom[i, j] => pts[j] dominates chunk[i]
        chunk_counts = dom.sum(axis=1)
        if cap is not None:
            np.minimum(chunk_counts, cap, out=chunk_counts)
        counts[start:stop] = chunk_counts
    return counts


def _skyline_2d(points: np.ndarray) -> np.ndarray:
    """Plane-sweep skyline for 2-D points; returns original indices."""
    order = np.lexsort((-points[:, 1], -points[:, 0]))  # x desc, then y desc
    best_y = -np.inf
    keep: list[int] = []
    prev_x = None
    pending: list[int] = []  # indices in the current equal-x group
    pending_max_y = -np.inf
    for idx in order:
        x, y = points[idx, 0], points[idx, 1]
        if prev_x is None or x != prev_x:
            # Flush the previous equal-x group into the sweep state.
            best_y = max(best_y, pending_max_y)
            pending = []
            pending_max_y = -np.inf
            prev_x = x
        # A point survives iff no processed point with larger x has y >= its
        # y, and no same-x point strictly exceeds its y.
        if y > best_y and (not pending or y >= pending_max_y):
            if pending and y == pending_max_y:
                keep.append(idx)  # duplicate of current group's best: keep
            elif y > pending_max_y:
                keep.append(idx)
        pending.append(idx)
        pending_max_y = max(pending_max_y, y)
    return np.array(sorted(keep), dtype=np.int64)


def skyline_indices(points: np.ndarray) -> np.ndarray:
    """Indices (ascending) of the skyline of ``points``.

    Duplicated points are all kept: a point never dominates an exact copy of
    itself.

    >>> import numpy as np
    >>> skyline_indices(np.array([[1.0, 4.0], [3.0, 3.0], [2.0, 2.0]]))
    array([0, 1])
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D (n, d), got shape {pts.shape}")
    if len(pts) == 0:
        return np.array([], dtype=np.int64)
    if pts.shape[1] == 2:
        return _skyline_2d(pts)
    counts = dominator_counts(pts, cap=1)
    return np.nonzero(counts == 0)[0].astype(np.int64)


def kskyband_indices(points: np.ndarray, k: int) -> np.ndarray:
    """Indices (ascending) of the k-skyband: points with ``< k`` dominators.

    ``k == 1`` is the skyline.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D (n, d), got shape {pts.shape}")
    if len(pts) == 0:
        return np.array([], dtype=np.int64)
    counts = dominator_counts(pts, cap=k)
    return np.nonzero(counts < k)[0].astype(np.int64)
