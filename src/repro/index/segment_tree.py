"""Static max segment tree with argmax descent.

This backs the pragmatic top-k building block
(:class:`repro.index.range_topk.ScoreArrayTopKIndex`): once a preference
vector is fixed, all record scores are a flat float array and range top-k
reduces to repeated range-argmax with exclusion, which a max segment tree
answers in ``O(log n)`` each.

The tree is built bottom-up over a power-of-two capacity with ``-inf``
padding, stored in flat arrays for speed. It supports point updates so the
same structure serves the (optional) streaming/append extension.
"""

from __future__ import annotations

import math
from array import array
from typing import Sequence

_NEG_INF = float("-inf")


class MaxSegmentTree:
    """Range-max / range-argmax over a float array.

    Ties are broken toward the *larger index* (later arrival), matching the
    canonical total order used throughout the library (see
    :mod:`repro.core.order`).

    >>> st = MaxSegmentTree([5.0, 9.0, 9.0, 1.0])
    >>> st.range_argmax(0, 3)
    2
    >>> st.range_max(2, 3)
    9.0
    """

    __slots__ = ("_n", "_cap", "_val", "_arg")

    def __init__(self, values: Sequence[float]) -> None:
        import numpy as np

        n = len(values)
        self._n = n
        cap = 1 if n == 0 else 1 << max(0, math.ceil(math.log2(max(1, n))))
        if cap < n:  # pragma: no cover - defensive, ceil above prevents this
            cap *= 2
        self._cap = cap
        # Vectorised bottom-up build: compute each level from the one below
        # with numpy, then drop to ``array('d')``/``array('q')`` buffers.
        # Scalar indexing on them beats list-of-PyObject access (contiguous
        # doubles, no pointer chasing), ``frombytes`` is ~10x cheaper than
        # ``tolist``, and — decisive for a service holding hundreds of
        # preference-bound trees — the GC never traverses their contents,
        # where equally-sized lists add ~500k scanned slots per tree to
        # every gen-2 collection.
        val = np.full(2 * cap, _NEG_INF)
        arg = np.full(2 * cap, -1, dtype=np.int64)
        val[cap : cap + n] = np.asarray(values, dtype=float)
        arg[cap : cap + n] = np.arange(n)
        lo = cap
        while lo > 1:
            left_v, right_v = val[lo : 2 * lo : 2], val[lo + 1 : 2 * lo : 2]
            left_a, right_a = arg[lo : 2 * lo : 2], arg[lo + 1 : 2 * lo : 2]
            # ">=" keeps the right (later) child on ties.
            take_right = right_v >= left_v
            half = lo // 2
            val[half:lo] = np.where(take_right, right_v, left_v)
            arg[half:lo] = np.where(take_right, right_a, left_a)
            lo = half
        self._val = array("d")
        self._val.frombytes(val.tobytes())
        self._arg = array("q")
        self._arg.frombytes(arg.astype(np.int64, copy=False).tobytes())

    def __len__(self) -> int:
        return self._n

    def update(self, index: int, value: float) -> None:
        """Set ``values[index] = value`` and repair the path to the root."""
        if not 0 <= index < self._n:
            raise IndexError(f"index {index} out of range [0, {self._n})")
        val, arg = self._val, self._arg
        i = self._cap + index
        val[i] = float(value)
        i //= 2
        while i >= 1:
            left, right = 2 * i, 2 * i + 1
            if val[right] >= val[left]:
                val[i], arg[i] = val[right], arg[right]
            else:
                val[i], arg[i] = val[left], arg[left]
            i //= 2

    def value_at(self, index: int) -> float:
        """Current value stored at ``index``."""
        if not 0 <= index < self._n:
            raise IndexError(f"index {index} out of range [0, {self._n})")
        return self._val[self._cap + index]

    def range_max_with_argmax(self, lo: int, hi: int) -> tuple[float, int]:
        """``(max value, argmax index)`` over ``[lo, hi]`` inclusive.

        Returns ``(-inf, -1)`` when the clamped range is empty. Ties go to
        the larger index.
        """
        lo = max(lo, 0)
        hi = min(hi, self._n - 1)
        if hi < lo:
            return _NEG_INF, -1
        val, arg, cap = self._val, self._arg, self._cap
        best_v, best_i = _NEG_INF, -1
        left = lo + cap
        right = hi + cap + 1
        while left < right:
            if left & 1:
                if val[left] > best_v or (val[left] == best_v and arg[left] > best_i):
                    best_v, best_i = val[left], arg[left]
                left += 1
            if right & 1:
                right -= 1
                if val[right] > best_v or (val[right] == best_v and arg[right] > best_i):
                    best_v, best_i = val[right], arg[right]
            left //= 2
            right //= 2
        return best_v, best_i

    def range_max(self, lo: int, hi: int) -> float:
        """Maximum value over ``[lo, hi]`` inclusive (``-inf`` if empty)."""
        return self.range_max_with_argmax(lo, hi)[0]

    def range_argmax(self, lo: int, hi: int) -> int:
        """Index of the maximum over ``[lo, hi]`` (``-1`` if empty)."""
        return self.range_max_with_argmax(lo, hi)[1]
