"""Priority search tree for 3-sided range reporting.

The S-Band algorithm (Section IV-B, Figure 4) maps every record ``p`` to the
2-D point ``(p.t, tau_p)`` — arrival time versus longest duration in the
k-skyband — and answers a durable top-k query by reporting all points inside
the 3-sided rectangle ``[t1, t2] x [tau, +inf)``. The paper indexes these
points with a priority search tree; this is the *implicit* (array-backed)
variant:

* points are stored sorted by ``x``; an implicit complete binary tree over
  the sorted positions stores each node's maximum ``y`` (a heap on ``y``
  whose leaves are the BST-on-``x`` order) — the same two invariants a
  pointer-based PST maintains, laid out as one flat array;
* a 3-sided query ``x in [x1, x2], y >= y0`` resolves the ``x`` range to a
  position range by binary search, then walks down the implicit tree,
  pruning subtrees whose maximum ``y`` is below ``y0``; small surviving
  subtrees are scanned vectorised (their leaves are contiguous), so
  reporting runs at NumPy speed.

Construction is ``O(n)`` after the ``O(n log n)`` sort — both vectorised,
no per-node Python work. Space is ``O(n)``; queries are
``O(log n + output)`` up to the constant-size leaf chunks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["PrioritySearchTree"]

#: Subtrees at most this wide are reported by one vectorised scan.
_LEAF_SPAN = 64


class PrioritySearchTree:
    """Static priority search tree over ``(x, y, payload)`` triples.

    >>> pst = PrioritySearchTree([(1, 5, 'a'), (2, 1, 'b'), (3, 4, 'c')])
    >>> sorted(pst.query_3sided(1, 3, 4))
    ['a', 'c']
    """

    def __init__(self, points: Iterable[tuple[float, float, object]]) -> None:
        items = list(points)
        xs = np.array([item[0] for item in items], dtype=float)
        ys = np.array([item[1] for item in items], dtype=float)
        payloads = [item[2] for item in items]
        self._init_sorted(xs, ys, payloads)

    @classmethod
    def from_arrays(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        payloads: Sequence | np.ndarray | None = None,
    ) -> "PrioritySearchTree":
        """Build directly from coordinate arrays, skipping per-point tuples.

        ``payloads`` defaults to the point's position in ``xs``.
        """
        tree = cls.__new__(cls)
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if payloads is None:
            payloads = np.arange(len(xs))
        tree._init_sorted(xs, ys, payloads)
        return tree

    def _init_sorted(self, xs: np.ndarray, ys: np.ndarray, payloads) -> None:
        if len(xs) != len(ys) or len(xs) != len(payloads):
            raise ValueError("xs, ys and payloads must have equal length")
        self._size = len(xs)
        order = np.argsort(xs, kind="stable")
        self._xs = xs[order]
        self._ys = ys[order]
        if isinstance(payloads, np.ndarray):
            self._payloads = payloads[order]
        else:
            self._payloads = [payloads[i] for i in order]
        # Implicit heap on y over the x-sorted leaves: node 1 is the root,
        # node i's children are 2i and 2i+1, leaves start at _leaf_base.
        leaves = 1
        while leaves < max(self._size, 1):
            leaves *= 2
        self._leaf_base = leaves
        tree = np.full(2 * leaves, -np.inf)
        tree[leaves : leaves + self._size] = self._ys
        lo = leaves
        while lo > 1:
            level = tree[lo : 2 * lo]
            tree[lo // 2 : lo] = np.maximum(level[0::2], level[1::2])
            lo //= 2
        self._tree = tree

    def __len__(self) -> int:
        return self._size

    def _report_positions(self, x1: float, x2: float, y0: float) -> list[int]:
        """Positions (x-sorted order) of points inside the rectangle."""
        if self._size == 0 or x2 < x1:
            return []
        left = int(np.searchsorted(self._xs, x1, side="left"))
        right = int(np.searchsorted(self._xs, x2, side="right")) - 1
        if right < left:
            return []
        out: list[int] = []
        ys, tree = self._ys, self._tree
        stack = [(1, 0, self._leaf_base - 1)]
        while stack:
            node, node_lo, node_hi = stack.pop()
            if node_hi < left or node_lo > right or tree[node] < y0:
                continue  # heap order: the whole subtree is below y0
            if node_hi - node_lo < _LEAF_SPAN:
                # Leaves of a subtree are contiguous positions: scan the
                # clamped span vectorised instead of walking single nodes.
                seg_lo = max(node_lo, left)
                seg_hi = min(node_hi, right, self._size - 1)
                if seg_hi >= seg_lo:
                    hits = np.nonzero(ys[seg_lo : seg_hi + 1] >= y0)[0]
                    out.extend((hits + seg_lo).tolist())
                continue
            mid = (node_lo + node_hi) // 2
            stack.append((2 * node + 1, mid + 1, node_hi))
            stack.append((2 * node, node_lo, mid))
        return out

    def query_3sided(self, x1: float, x2: float, y0: float) -> list[object]:
        """Payloads of all points with ``x1 <= x <= x2`` and ``y >= y0``."""
        return [self._payloads[i] for i in self._report_positions(x1, x2, y0)]

    def count_3sided(self, x1: float, x2: float, y0: float) -> int:
        """Number of points inside the 3-sided rectangle."""
        return len(self._report_positions(x1, x2, y0))
