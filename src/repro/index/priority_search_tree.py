"""Priority search tree for 3-sided range reporting.

The S-Band algorithm (Section IV-B, Figure 4) maps every record ``p`` to the
2-D point ``(p.t, tau_p)`` — arrival time versus longest duration in the
k-skyband — and answers a durable top-k query by reporting all points inside
the 3-sided rectangle ``[t1, t2] x [tau, +inf)``. The paper indexes these
points with a priority search tree; this is a faithful static
implementation:

* a binary tree over points, where each node holds the not-yet-placed point
  with the maximum ``y`` (a heap on ``y``) and splits the remaining points
  at the median ``x`` (a BST on ``x``);
* a 3-sided query ``x in [x1, x2], y >= y0`` walks down, pruning subtrees
  whose root ``y`` is below ``y0`` (heap order makes the root the subtree
  max) and whose ``x`` ranges miss ``[x1, x2]``.

Construction is ``O(n log n)``, space ``O(n)``, queries
``O(log n + output)``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["PrioritySearchTree"]


class _Node:
    __slots__ = ("x", "y", "payload", "split", "left", "right")

    def __init__(self, x: float, y: float, payload: object) -> None:
        self.x = x
        self.y = y
        self.payload = payload
        self.split: float = x
        self.left: _Node | None = None
        self.right: _Node | None = None


class PrioritySearchTree:
    """Static priority search tree over ``(x, y, payload)`` triples.

    >>> pst = PrioritySearchTree([(1, 5, 'a'), (2, 1, 'b'), (3, 4, 'c')])
    >>> sorted(pst.query_3sided(1, 3, 4))
    ['a', 'c']
    """

    def __init__(self, points: Iterable[tuple[float, float, object]]) -> None:
        items = [(float(x), float(y), payload) for x, y, payload in points]
        items.sort(key=lambda item: item[0])
        self._size = len(items)
        self._root = self._build(items)

    def __len__(self) -> int:
        return self._size

    def _build(self, items: Sequence[tuple[float, float, object]]) -> _Node | None:
        if not items:
            return None
        # Pull out the max-y point; it becomes this subtree's root.
        best = max(range(len(items)), key=lambda i: (items[i][1], -i))
        x, y, payload = items[best]
        rest = [items[i] for i in range(len(items)) if i != best]
        node = _Node(x, y, payload)
        if rest:
            mid = len(rest) // 2
            node.split = rest[mid][0] if len(rest) % 2 else rest[mid - 1][0]
            # Split the remainder at the median x; the x-sorted input keeps
            # both halves sorted, so recursion stays O(n log n) overall.
            left = rest[: (len(rest) + 1) // 2]
            right = rest[(len(rest) + 1) // 2 :]
            node.split = left[-1][0] if left else x
            node.left = self._build(left)
            node.right = self._build(right)
        return node

    def query_3sided(self, x1: float, x2: float, y0: float) -> list[object]:
        """Payloads of all points with ``x1 <= x <= x2`` and ``y >= y0``."""
        out: list[object] = []
        if self._root is None or x2 < x1:
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.y < y0:
                continue  # heap order: the whole subtree is below y0
            if x1 <= node.x <= x2:
                out.append(node.payload)
            # Duplicated x values may straddle the positional split, so both
            # conditions are inclusive; only distinct values are pruned.
            if node.left is not None and x1 <= node.split:
                stack.append(node.left)
            if node.right is not None and x2 >= node.split:
                stack.append(node.right)
        return out

    def count_3sided(self, x1: float, x2: float, y0: float) -> int:
        """Number of points inside the 3-sided rectangle."""
        return len(self.query_3sided(x1, x2, y0))
