"""Durable k-skyband duration index (Section IV-B, Figure 4).

For every record ``p`` and a fixed ``k``, let ``tau_p`` be the longest
duration such that ``p`` belongs to the k-skyband of the look-back window
``[p.t - tau_p, p.t]``. Because the set of records dominating ``p`` only
grows as the window widens, ``tau_p`` is determined by the arrival time of
the k-th most recent record that dominates ``p``:

    ``tau_p = p.t - t_k - 1``  where ``t_k`` is that arrival time,

and ``tau_p = +inf`` (represented as ``n``) when fewer than ``k`` dominators
exist at all.

The index maps each record to the point ``(p.t, tau_p)`` and stores these in
a :class:`~repro.index.priority_search_tree.PrioritySearchTree`; a durable
top-k query retrieves its candidate superset ``C`` with one 3-sided query
``I x [tau, +inf)``.

Because ``k`` is a query-time parameter, duration tables are built for
``k = 1, 2, 4, ..., 2^ceil(log2(k_max))`` (the paper's powers-of-two
scheme) and a query with parameter ``k`` uses the table for the smallest
``k_bar >= k``: the k-skyband is contained in the ``k_bar``-skyband, so the
retrieved set remains a superset of the true answers.

Dominator discovery runs a *backwards block scan*: for each record, earlier
records are tested for domination in vectorised blocks, newest first,
stopping as soon as ``k_max`` dominators are found. On the independent/
uniform data of the experiments most records find their dominators within
the first block, making construction near-linear in practice.
"""

from __future__ import annotations

import numpy as np

from repro.index.priority_search_tree import PrioritySearchTree

__all__ = ["DurableSkybandIndex", "dominator_times"]


def _dominance_mask(chunk: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """``(c, m)`` bool mask: does ``chunk[j]`` dominate ``targets[i]``?

    Built dimension by dimension on 2-D masks — no ``(c, m, d)``
    temporaries — with early exit once no pair can still dominate.
    Domination = ``>=`` on every attribute and not all-equal.
    """
    ge = chunk[:, 0, None] >= targets[None, :, 0]
    for dim in range(1, chunk.shape[1]):
        if not ge.any():
            return ge
        ge &= chunk[:, dim, None] >= targets[None, :, dim]
    if ge.any():
        # Remove exact duplicates (>= everywhere but nowhere strictly >).
        eq = ge & (chunk[:, 0, None] == targets[None, :, 0])
        for dim in range(1, chunk.shape[1]):
            if not eq.any():
                return ge
            eq &= chunk[:, dim, None] == targets[None, :, dim]
        ge &= ~eq
    return ge


def dominator_times(
    values: np.ndarray, k_max: int, block: int = 1024, target_block: int = 128
) -> np.ndarray:
    """Arrival times of each record's ``k_max`` most recent dominators.

    Returns an ``(n, k_max)`` int array; row ``i`` lists the arrival times
    of the records dominating record ``i``, most recent first, padded with
    ``-1`` when fewer than ``k_max`` dominators exist.

    The scan is vectorised over *blocks of targets*: ``target_block``
    records at a time are compared against earlier records — newest chunk
    first, chunk sizes growing geometrically up to ``block`` so that easy
    targets (dominators nearby) never pay for a full-width scan — and each
    chunk's hits are scattered into ``out`` with one ``cumsum``/``nonzero``
    pass instead of a per-record Python loop. A target drops out of its
    block's scan as soon as its ``k_max`` dominators are found. Neither
    ``block`` nor ``target_block`` affects the result, only the work
    schedule.
    """
    values = np.asarray(values, dtype=float)
    n = len(values)
    out = np.full((n, k_max), -1, dtype=np.int64)
    for a0 in range(0, n, target_block):
        a1 = min(a0 + target_block, n)
        targets = values[a0:a1]  # (m, d)
        need = np.full(a1 - a0, k_max, dtype=np.int64)
        # Chunk boundaries: the intra-block triangle first (records between
        # a0 and each target), then earlier records in doubling chunks.
        chunk_hi = a1
        intra = True
        step = min(block, max(target_block, 64))
        while chunk_hi > 0 and need.any():
            if intra:
                chunk_lo = a0
            else:
                chunk_lo = max(0, chunk_hi - step)
                step = min(2 * step, block)
            chunk = values[chunk_lo:chunk_hi]  # (c, d)
            active = np.nonzero(need > 0)[0]
            dom = _dominance_mask(chunk, targets[active])
            if intra:
                # Only records that arrived strictly earlier can dominate.
                arrivals = np.arange(chunk_lo, chunk_hi)
                dom &= arrivals[:, None] < (a0 + active)[None, :]
            if dom.any():
                sub_need = need[active]
                rev = dom[::-1]  # most recent dominators first
                ranks = np.cumsum(rev, axis=0)
                jj, ii = np.nonzero(rev & (ranks <= sub_need[None, :]))
                rank = ranks[jj, ii] - 1
                cols = active[ii]
                out[a0 + cols, (k_max - need[cols]) + rank] = (chunk_hi - 1) - jj
                need[active] -= np.minimum(ranks[-1], sub_need)
            chunk_hi = chunk_lo
            intra = False
    return out


class DurableSkybandIndex:
    """Query-time candidate generator for the S-Band algorithm.

    Parameters
    ----------
    dataset:
        The :class:`repro.core.record.Dataset` to index.
    k_max:
        Largest ``k`` the index must serve. Duration tables exist for all
        powers of two up to the smallest power ``>= k_max``.
    """

    def __init__(self, dataset, k_max: int = 64, block: int = 1024) -> None:
        if k_max < 1:
            raise ValueError(f"k_max must be >= 1, got {k_max}")
        self._dataset = dataset
        n = len(dataset)
        self.k_max = 1
        while self.k_max < k_max:
            self.k_max *= 2
        times = dominator_times(dataset.values, self.k_max, block=block)
        arrivals = np.arange(n)
        self._durations: dict[int, np.ndarray] = {}
        self._trees: dict[int, PrioritySearchTree] = {}
        k = 1
        while k <= self.k_max:
            kth = times[:, k - 1]
            # tau_p = p.t - t_k - 1; "never k-dominated" => covers any tau.
            tau = np.where(kth >= 0, arrivals - kth - 1, n)
            self._durations[k] = tau
            # (x, y, payload) = (arrival, duration, arrival); array build
            # avoids materialising n Python tuples per level.
            self._trees[k] = PrioritySearchTree.from_arrays(arrivals, tau, arrivals)
            k *= 2

    @property
    def levels(self) -> list[int]:
        """The ``k`` values for which duration tables exist."""
        return sorted(self._durations)

    def level_for(self, k: int) -> int:
        """Smallest indexed ``k_bar >= k`` (the paper's ``k <= k_bar <= 2k``)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k > self.k_max:
            raise ValueError(
                f"k={k} exceeds the index's k_max={self.k_max}; rebuild the "
                "DurableSkybandIndex with a larger k_max"
            )
        level = 1
        while level < k:
            level *= 2
        return level

    def durations(self, k: int) -> np.ndarray:
        """``tau_p`` for every record at level ``level_for(k)``."""
        return self._durations[self.level_for(k)]

    def candidates(self, k: int, lo: int, hi: int, tau: int) -> list[int]:
        """Record ids in ``[lo, hi]`` that are tau-durable for the k-skyband.

        This is the superset ``C`` of Algorithm 2 — every true durable
        top-k record is included; non-durable records may be too.
        """
        tree = self._trees[self.level_for(k)]
        # Records never dominated k times carry the sentinel duration n
        # (durable for *any* tau); clamp the threshold so tau > n still
        # matches them. Real durations are at most n - 2, so no
        # non-durable record can slip in.
        tau = min(tau, len(self._dataset))
        return [int(t) for t in tree.query_3sided(lo, hi, tau)]

    def candidate_count(self, k: int, lo: int, hi: int, tau: int) -> int:
        """Size of the candidate set without materialising payloads."""
        return len(self.candidates(k, lo, hi, tau))
