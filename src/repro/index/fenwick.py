"""Fenwick tree (binary indexed tree) over a fixed integer domain.

The blocking mechanism of the score-prioritized algorithms (Section IV of
the paper) needs two operations, both in logarithmic time:

* insert a blocking interval ``[l, l + tau]`` — since every interval has the
  same length ``tau``, inserting the *left endpoint* ``l`` is enough;
* count how many blocking intervals contain a timestamp ``t`` — equivalent
  to counting left endpoints inside ``[t - tau, t]``.

A Fenwick tree over the discrete time domain supports exactly this: point
update + prefix-sum query, each ``O(log n)``.
"""

from __future__ import annotations


class FenwickTree:
    """Point-update / prefix-sum tree over the domain ``[0, size)``.

    >>> ft = FenwickTree(8)
    >>> ft.add(3)
    >>> ft.add(5, 2)
    >>> ft.prefix_sum(4)
    1
    >>> ft.range_sum(3, 5)
    3
    """

    __slots__ = ("_size", "_tree")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._size = size
        self._tree = [0] * (size + 1)

    @property
    def size(self) -> int:
        """Domain size the tree was built for."""
        return self._size

    def add(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` at position ``index`` (0-based)."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        i = index + 1
        tree = self._tree
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of values at positions ``[0, index]``.

        ``index`` may lie outside the domain; it is clamped, so callers can
        pass e.g. ``t - tau - 1`` without bounds bookkeeping.
        """
        if index < 0:
            return 0
        i = min(index, self._size - 1) + 1
        total = 0
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of values at positions ``[lo, hi]`` (inclusive, clamped)."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)

    def total(self) -> int:
        """Sum over the whole domain."""
        return self.prefix_sum(self._size - 1)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FenwickTree(size={self._size}, total={self.total()})"
