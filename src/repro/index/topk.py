"""The top-k building-block protocol and its counting adapter.

Section II of the paper deliberately treats the top-k query as a pluggable
"building block": the contribution of the durable top-k algorithms is to
*bound the number of invocations* of that block. This module pins the
contract down as a :class:`typing.Protocol`, provides a factory over the two
shipped implementations, and a counting wrapper so experiments can report
the exact invocation counts shown in the paper's figures.
"""

from __future__ import annotations

from typing import Literal, Protocol, runtime_checkable

from repro.core.query import QueryStats

__all__ = ["TopKIndex", "CountingTopKIndex", "build_topk_index", "TopKKind"]

#: Categories of top-k invocations, matching the decomposition in the
#: paper's figure panels: durability checks versus queries issued to find
#: the next highest-score record (S-Hop) or candidate sets.
TopKKind = Literal["durability", "candidate"]


@runtime_checkable
class TopKIndex(Protocol):
    """Contract every top-k building block implements.

    Record ids equal normalised arrival times; ranges are inclusive and may
    exceed the data bounds (implementations clamp).
    """

    @property
    def n(self) -> int:
        """Number of indexed records."""

    def score(self, record_id: int) -> float:
        """Score of one record under the bound preference."""

    def top1(self, lo: int, hi: int) -> int | None:
        """Best record id in ``[lo, hi]`` or ``None`` when empty."""

    def topk(self, k: int, lo: int, hi: int) -> list[int]:
        """Top-k record ids in ``[lo, hi]``, canonical order, best first."""


class CountingTopKIndex:
    """Wrap a :class:`TopKIndex`, tallying invocations into ``QueryStats``.

    The wrapper distinguishes *durability checks* (Line 4 of Algorithm 1 /
    Line 8 of Algorithm 3) from *candidate queries* (partition seeding and
    interval splits in S-Hop), mirroring the shaded/unshaded bar split of
    Figures 8–10.
    """

    def __init__(self, inner: TopKIndex, stats: QueryStats) -> None:
        self._inner = inner
        self.stats = stats

    @property
    def n(self) -> int:
        return self._inner.n

    def score(self, record_id: int) -> float:
        return self._inner.score(record_id)

    def top1(self, lo: int, hi: int, kind: TopKKind = "candidate") -> int | None:
        self._count(kind)
        return self._inner.top1(lo, hi)

    def topk(self, k: int, lo: int, hi: int, kind: TopKKind = "durability") -> list[int]:
        self._count(kind)
        return self._inner.topk(k, lo, hi)

    def _count(self, kind: TopKKind) -> None:
        if kind == "durability":
            self.stats.durability_topk_queries += 1
        else:
            self.stats.candidate_topk_queries += 1


def build_topk_index(dataset, scorer, method: str = "auto") -> TopKIndex:
    """Build a preference-bound top-k block for ``dataset`` under ``scorer``.

    Parameters
    ----------
    dataset:
        A :class:`repro.core.record.Dataset`.
    scorer:
        A :class:`repro.scoring.base.ScoringFunction` already parameterised
        by the user's preference vector.
    method:
        ``"score_array"`` — materialise all scores and build the segment
        tree block (works for any scoring function);
        ``"skyline_tree"`` — the paper's Appendix-A index (requires a
        monotone scoring function; the per-dataset tree is built on first
        use and cached on the dataset);
        ``"auto"`` — ``skyline_tree`` when the scorer is monotone and a tree
        is already cached, else ``score_array``.
    """
    from repro.index.range_topk import ScoreArrayTopKIndex
    from repro.index.skyline_tree import SkylineTree

    if method not in ("auto", "score_array", "skyline_tree"):
        raise ValueError(f"unknown top-k index method: {method!r}")

    if method == "skyline_tree" or (method == "auto" and scorer.is_monotone and dataset.has_cached("skyline_tree")):
        if not scorer.is_monotone:
            raise ValueError(
                "the skyline-tree block needs a monotone scoring function; "
                f"{scorer!r} is not monotone — use method='score_array'"
            )
        tree = dataset.get_or_build("skyline_tree", lambda: SkylineTree(dataset))
        return tree.bind(scorer)

    scores = scorer.scores(dataset.values)
    return ScoreArrayTopKIndex(scores)
