"""The top-k building-block protocol and its counting adapter.

Section II of the paper deliberately treats the top-k query as a pluggable
"building block": the contribution of the durable top-k algorithms is to
*bound the number of invocations* of that block. This module pins the
contract down as a :class:`typing.Protocol`, provides a factory over the two
shipped implementations, and a counting wrapper so experiments can report
the exact invocation counts shown in the paper's figures.

Two batching primitives live here as well:

* :func:`batched_window_topk` — answer many window top-k queries over one
  score array in a single vectorised pass (`np.partition` thresholding
  over the stacked candidate matrix). Index implementations expose it as
  ``topk_batch(k, windows)``.
* :class:`BatchTopKMemo` — a batch-scoped wrapper that shares identical
  ``topk``/``top1`` calls across the queries of one batch. It sits *under*
  each query's :class:`CountingTopKIndex`, so per-query ``QueryStats`` are
  charged exactly as in a serial run while the underlying traversal work
  is paid once per distinct window.
"""

from __future__ import annotations

from time import perf_counter
from typing import Literal, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.query import QueryStats

__all__ = [
    "TopKIndex",
    "CountingTopKIndex",
    "BatchTopKMemo",
    "batched_window_topk",
    "build_topk_index",
    "TopKKind",
]

#: Categories of top-k invocations, matching the decomposition in the
#: paper's figure panels: durability checks versus queries issued to find
#: the next highest-score record (S-Hop) or candidate sets.
TopKKind = Literal["durability", "candidate"]


@runtime_checkable
class TopKIndex(Protocol):
    """Contract every top-k building block implements.

    Record ids equal normalised arrival times; ranges are inclusive and may
    exceed the data bounds (implementations clamp).
    """

    @property
    def n(self) -> int:
        """Number of indexed records."""

    def score(self, record_id: int) -> float:
        """Score of one record under the bound preference."""

    def top1(self, lo: int, hi: int) -> int | None:
        """Best record id in ``[lo, hi]`` or ``None`` when empty."""

    def topk(self, k: int, lo: int, hi: int) -> list[int]:
        """Top-k record ids in ``[lo, hi]``, canonical order, best first."""


class CountingTopKIndex:
    """Wrap a :class:`TopKIndex`, tallying invocations into ``QueryStats``.

    The wrapper distinguishes *durability checks* (Line 4 of Algorithm 1 /
    Line 8 of Algorithm 3) from *candidate queries* (partition seeding and
    interval splits in S-Hop), mirroring the shaded/unshaded bar split of
    Figures 8–10.

    With ``timed=True`` (the engine passes ``obs.tracing_active()``) each
    invocation is also wall-clocked, accumulating ``elapsed``/``calls``/
    ``scanned`` so the engine can attach one aggregated ``index.topk``
    span per query instead of one span per probe. Timing never alters the
    counts charged to ``QueryStats`` — the byte-identity contract.
    """

    def __init__(self, inner: TopKIndex, stats: QueryStats, timed: bool = False) -> None:
        self._inner = inner
        self.stats = stats
        self.timed = timed
        self.elapsed = 0.0
        self.calls = 0
        self.scanned = 0
        self.first_start: float | None = None

    @property
    def n(self) -> int:
        return self._inner.n

    def score(self, record_id: int) -> float:
        return self._inner.score(record_id)

    def top1(self, lo: int, hi: int, kind: TopKKind = "candidate") -> int | None:
        self._count(kind)
        if not self.timed:
            return self._inner.top1(lo, hi)
        start = perf_counter()
        found = self._inner.top1(lo, hi)
        self._clock(start, 1 if found is not None else 0)
        return found

    def topk(self, k: int, lo: int, hi: int, kind: TopKKind = "durability") -> list[int]:
        self._count(kind)
        if not self.timed:
            return self._inner.topk(k, lo, hi)
        start = perf_counter()
        found = self._inner.topk(k, lo, hi)
        self._clock(start, len(found))
        return found

    def _clock(self, start: float, scanned: int) -> None:
        if self.first_start is None:
            self.first_start = start
        self.elapsed += perf_counter() - start
        self.calls += 1
        self.scanned += scanned

    def _count(self, kind: TopKKind) -> None:
        if kind == "durability":
            self.stats.durability_topk_queries += 1
        else:
            self.stats.candidate_topk_queries += 1


def batched_window_topk(
    scores: np.ndarray, k: int, windows: Sequence[tuple[int, int]]
) -> list[list[int]]:
    """Top-``k`` ids of many ``[lo, hi]`` windows in one vectorised pass.

    Windows are stacked into one padded ``(rows, max_width)`` candidate
    matrix (out-of-range cells hold ``-inf``), each row's k-th-largest
    score is found with a single ``np.partition``, and the per-row answer
    is every strictly-greater cell plus the *rightmost* threshold ties —
    which reproduces the canonical total order (descending score, later
    arrival wins ties) of a heap-driven ``topk`` loop exactly. Windows may
    exceed the array bounds (they are clamped, like ``topk``); empty
    windows answer ``[]``.

    The pass is ``O(rows * max_width)`` — a win when the batch's windows
    are comparable in width (the durability windows of a query batch all
    have width ``tau + 1``), not a general replacement for per-window
    heap search.
    """
    rows = len(windows)
    if rows == 0:
        return []
    n = len(scores)
    if k <= 0 or n == 0:
        return [[] for _ in range(rows)]
    lo_arr = np.fromiter((lo for lo, _ in windows), dtype=np.int64, count=rows)
    hi_arr = np.fromiter((hi for _, hi in windows), dtype=np.int64, count=rows)
    np.clip(lo_arr, 0, None, out=lo_arr)
    np.clip(hi_arr, None, n - 1, out=hi_arr)
    widths = hi_arr - lo_arr + 1
    max_width = int(widths.max()) if len(widths) else 0
    if max_width <= 0:
        return [[] for _ in range(rows)]

    cols = np.arange(max_width, dtype=np.int64)
    idx = lo_arr[:, None] + cols[None, :]
    valid = cols[None, :] < widths[:, None]
    matrix = np.asarray(scores, dtype=float)[np.minimum(idx, n - 1)]
    matrix[~valid] = -np.inf

    kk = min(k, max_width)
    # Row-wise k-th largest over the padded matrix: with fewer than k
    # valid cells the threshold degrades to -inf, selecting every valid
    # cell — the "fewer than k records" contract of ``topk``.
    thresh = np.partition(matrix, max_width - kk, axis=1)[:, max_width - kk]
    greater = matrix > thresh[:, None]
    ties = (matrix == thresh[:, None]) & valid
    need = kk - greater.sum(axis=1)
    # Rightmost ``need`` ties per row: count ties at-or-right of each cell.
    from_right = np.cumsum(ties[:, ::-1], axis=1)[:, ::-1]
    selected = greater | (ties & (from_right <= need[:, None]))

    out: list[list[int]] = []
    for r in range(rows):
        if widths[r] <= 0:
            out.append([])
            continue
        chosen = np.nonzero(selected[r])[0]
        if len(chosen) == 0:
            out.append([])
            continue
        # Canonical order: descending score, ties toward the larger id
        # (larger column == larger id within a row).
        order = np.lexsort((chosen, matrix[r, chosen]))[::-1]
        base = int(lo_arr[r])
        out.append([base + int(c) for c in chosen[order]])
    return out


class BatchTopKMemo:
    """Share identical top-k calls across the queries of one batch.

    Implements the :class:`TopKIndex` protocol by delegation, memoising
    ``topk`` results by ``(k, lo, hi)`` and ``top1`` by ``(lo, hi)`` for
    the lifetime of the batch. Placement matters: the memo wraps the raw
    index and each query's :class:`CountingTopKIndex` wraps the memo, so
    every query's ``QueryStats`` still counts its own invocations — the
    byte-identity contract of ``query_batch`` — while the traversal work
    behind repeated windows is paid once.

    Memoised lists are returned *shared* (not copied): all shipped
    algorithms treat top-k answers as read-only.

    Not thread-safe; a memo belongs to one batch on one worker.
    """

    __slots__ = ("_inner", "_topk", "_top1")

    def __init__(self, inner: TopKIndex) -> None:
        self._inner = inner
        self._topk: dict[tuple[int, int, int], list[int]] = {}
        self._top1: dict[tuple[int, int], int | None] = {}

    @property
    def n(self) -> int:
        return self._inner.n

    def score(self, record_id: int) -> float:
        return self._inner.score(record_id)

    def top1(self, lo: int, hi: int) -> int | None:
        key = (lo, hi)
        if key in self._top1:
            return self._top1[key]
        found = self._inner.top1(lo, hi)
        self._top1[key] = found
        return found

    def topk(self, k: int, lo: int, hi: int) -> list[int]:
        key = (k, lo, hi)
        found = self._topk.get(key)
        if found is None:
            found = self._inner.topk(k, lo, hi)
            self._topk[key] = found
        return found

    def prime(self, k: int, windows: Sequence[tuple[int, int]]) -> None:
        """Pre-answer ``windows`` for rank ``k`` in one vectorised pass.

        Uses the inner index's ``topk_batch`` when it has one (the
        score-array, block and segmented blocks all do); silently skips
        otherwise — priming is an optimisation, never a requirement.
        """
        batch = getattr(self._inner, "topk_batch", None)
        if batch is None:
            return
        fresh = [w for w in windows if (k, w[0], w[1]) not in self._topk]
        if not fresh:
            return
        for (lo, hi), ids in zip(fresh, batch(k, fresh)):
            self._topk[(k, lo, hi)] = ids


def build_topk_index(dataset, scorer, method: str = "auto") -> TopKIndex:
    """Build a preference-bound top-k block for ``dataset`` under ``scorer``.

    Parameters
    ----------
    dataset:
        A :class:`repro.core.record.Dataset`.
    scorer:
        A :class:`repro.scoring.base.ScoringFunction` already parameterised
        by the user's preference vector.
    method:
        ``"score_array"`` — materialise all scores and build the segment
        tree block (works for any scoring function);
        ``"skyline_tree"`` — the paper's Appendix-A index (requires a
        monotone scoring function; the per-dataset tree is built on first
        use and cached on the dataset);
        ``"auto"`` — ``skyline_tree`` when the scorer is monotone and a tree
        is already cached, else ``score_array``.
    """
    from repro.index.range_topk import ScoreArrayTopKIndex
    from repro.index.skyline_tree import SkylineTree

    if method not in ("auto", "score_array", "skyline_tree"):
        raise ValueError(f"unknown top-k index method: {method!r}")

    if method == "skyline_tree" or (method == "auto" and scorer.is_monotone and dataset.has_cached("skyline_tree")):
        if not scorer.is_monotone:
            raise ValueError(
                "the skyline-tree block needs a monotone scoring function; "
                f"{scorer!r} is not monotone — use method='score_array'"
            )
        tree = dataset.get_or_build("skyline_tree", lambda: SkylineTree(dataset))
        return tree.bind(scorer)

    scores = scorer.scores(dataset.values)
    return ScoreArrayTopKIndex(scores)
