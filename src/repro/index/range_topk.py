"""Score-array top-k building block.

The paper treats the basic top-k query as a pluggable black box (Section
II). This module provides the pragmatic block used by default: once a
preference vector is fixed, every record's score is a single float, the
score array goes into a max segment tree, and a range top-k query is ``k``
rounds of *range-argmax with exclusion* driven by a heap of sub-ranges —
the classic ``O(k log n)`` technique:

1. push the whole query range with its argmax;
2. pop the best range, report its argmax ``i``;
3. split the range at ``i`` into ``[lo, i-1]`` and ``[i+1, hi]`` and push
   both with their argmaxes.

Ties follow the library's canonical total order (higher score wins, later
arrival wins ties), so results are deterministic and identical to the
brute-force oracle.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.index.segment_tree import MaxSegmentTree

__all__ = ["ScoreArrayTopKIndex"]


class ScoreArrayTopKIndex:
    """Range top-k over a fixed score array.

    Record ids are array positions, which equal normalised arrival times
    throughout the library.
    """

    def __init__(self, scores: np.ndarray) -> None:
        scores = np.asarray(scores, dtype=float)
        if scores.ndim != 1:
            raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
        if np.isnan(scores).any():
            raise ValueError("scores contain NaN; scoring function is invalid here")
        self._scores = scores
        self._tree = MaxSegmentTree(scores)

    @property
    def n(self) -> int:
        """Number of indexed records."""
        return len(self._scores)

    def score(self, record_id: int) -> float:
        """Score of a single record."""
        return float(self._scores[record_id])

    def top1(self, lo: int, hi: int) -> int | None:
        """Id of the best record in ``[lo, hi]``, or ``None`` if empty."""
        _, arg = self._tree.range_max_with_argmax(lo, hi)
        return None if arg < 0 else arg

    def topk(self, k: int, lo: int, hi: int) -> list[int]:
        """Top-``k`` record ids in ``[lo, hi]``, best first.

        Returns fewer than ``k`` ids when the range holds fewer records.
        The order is the canonical total order: descending score, ties
        broken toward the later arrival.
        """
        if k <= 0:
            return []
        lo = max(lo, 0)
        hi = min(hi, self.n - 1)
        if hi < lo:
            return []
        tree = self._tree
        value, arg = tree.range_max_with_argmax(lo, hi)
        # Heap entries: (-score, -id, range_lo, range_hi). Negated id makes
        # later arrivals win ties, matching the canonical order.
        heap = [(-value, -arg, lo, hi)]
        out: list[int] = []
        while heap and len(out) < k:
            neg_v, neg_i, rlo, rhi = heapq.heappop(heap)
            i = -neg_i
            out.append(i)
            if rlo <= i - 1:
                v, a = tree.range_max_with_argmax(rlo, i - 1)
                heapq.heappush(heap, (-v, -a, rlo, i - 1))
            if i + 1 <= rhi:
                v, a = tree.range_max_with_argmax(i + 1, rhi)
                heapq.heappush(heap, (-v, -a, i + 1, rhi))
        return out

    def topk_batch(self, k: int, windows) -> list[list[int]]:
        """Answer many ``topk(k, lo, hi)`` windows in one vectorised pass.

        Equivalent to ``[self.topk(k, lo, hi) for lo, hi in windows]``
        (same clamping, same canonical order), but thresholded with a
        single ``np.partition`` over the stacked candidate matrix — see
        :func:`repro.index.topk.batched_window_topk`.
        """
        from repro.index.topk import batched_window_topk

        return batched_window_topk(self._scores, k, windows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScoreArrayTopKIndex(n={self.n})"
