"""The paper's tree index for preference top-k queries (Appendix A).

A balanced binary tree is built over the arrival-time domain. Every node
covers a contiguous time interval and stores the *skyline* of the records
arriving in it; for any monotone preference the node's maximum score — its
"interval max score" — is attained on that skyline, so scanning the skyline
yields a tight upper bound without touching the rest of the node.

A query ``Q(u, k, W)`` (Algorithm 5) starts from the canonical nodes
covering ``W``, keeps a priority queue ordered by interval max score, and
repeatedly refines the best node into its children until the node interval
is at most ``LENGTH_THRESHOLD`` timestamps, at which point the node becomes
a *candidate*. Once ``k`` candidates are collected the top-k result is
computed from the records inside them.

Deviations from the paper, both documented in DESIGN.md:

* The tree is only materialised down to intervals of
  ``LENGTH_THRESHOLD`` timestamps — Algorithm 5 never descends below that
  granularity, so deeper nodes would be dead weight.
* After the ``k``-th candidate is collected we keep popping while the best
  remaining upper bound still ties or beats the current ``k``-th best
  candidate score. With distinct scores this loop body almost never runs;
  with ties it is required for exactness under the canonical total order.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.index.skyline import skyline_indices

__all__ = ["SkylineTree", "SkylineTreeTopKIndex", "DEFAULT_LENGTH_THRESHOLD"]

#: Default leaf granularity, the paper's LENGTH_THRESHOLD (Appendix A).
DEFAULT_LENGTH_THRESHOLD = 128


class _TreeNode:
    __slots__ = ("lo", "hi", "skyline_ids", "left", "right")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.skyline_ids: np.ndarray | None = None
        self.left: _TreeNode | None = None
        self.right: _TreeNode | None = None

    @property
    def span(self) -> int:
        return self.hi - self.lo + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_TreeNode([{self.lo}, {self.hi}], |sky|={len(self.skyline_ids or ())})"


class SkylineTree:
    """Per-dataset index; bind a scorer to obtain a ``TopKIndex``.

    Construction computes skylines bottom-up (Algorithm 4): a parent's
    skyline is the skyline of the union of its children's skylines.
    """

    def __init__(self, dataset, length_threshold: int = DEFAULT_LENGTH_THRESHOLD) -> None:
        if length_threshold < 1:
            raise ValueError(f"length_threshold must be >= 1, got {length_threshold}")
        self._dataset = dataset
        self.length_threshold = length_threshold
        self._values = dataset.values
        n = len(dataset)
        self._root = self._build(0, n - 1) if n else None

    @property
    def dataset(self):
        """The indexed dataset."""
        return self._dataset

    def _build(self, lo: int, hi: int) -> _TreeNode:
        node = _TreeNode(lo, hi)
        if hi - lo + 1 <= self.length_threshold:
            ids = np.arange(lo, hi + 1)
            node.skyline_ids = ids[skyline_indices(self._values[lo : hi + 1])]
            return node
        mid = (lo + hi) // 2
        node.left = self._build(lo, mid)
        node.right = self._build(mid + 1, hi)
        merged = np.concatenate([node.left.skyline_ids, node.right.skyline_ids])
        node.skyline_ids = merged[skyline_indices(self._values[merged])]
        return node

    def bind(self, scorer) -> "SkylineTreeTopKIndex":
        """Return a preference-bound top-k block over this tree."""
        return SkylineTreeTopKIndex(self, scorer)

    def node_count(self) -> int:
        """Number of materialised tree nodes (diagnostics)."""
        count = 0
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            count += 1
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        return count


class SkylineTreeTopKIndex:
    """Branch-and-bound preference top-k over a :class:`SkylineTree`.

    Implements the :class:`repro.index.topk.TopKIndex` protocol. Scores of
    individual records are computed lazily and memoised per bound instance,
    so a durable query that touches few records stays sub-linear.
    """

    def __init__(self, tree: SkylineTree, scorer) -> None:
        if not scorer.is_monotone:
            raise ValueError("SkylineTreeTopKIndex requires a monotone scoring function")
        self._tree = tree
        self._scorer = scorer
        self._values = tree._values
        n = len(self._values)
        self._score_cache = np.full(n, np.nan)

    @property
    def n(self) -> int:
        return len(self._values)

    def score(self, record_id: int) -> float:
        cached = self._score_cache[record_id]
        if not np.isnan(cached):
            return float(cached)
        value = float(self._scorer.score_point(self._values[record_id]))
        self._score_cache[record_id] = value
        return value

    def _scores_of(self, ids: np.ndarray) -> np.ndarray:
        """Vectorised, memoised scores for an id array."""
        cache = self._score_cache
        scores = cache[ids]
        missing = np.isnan(scores)
        if missing.any():
            miss_ids = ids[missing]
            fresh = self._scorer.scores(self._values[miss_ids])
            cache[miss_ids] = fresh
            scores[missing] = fresh
        return scores

    def _node_upper_bound(self, node: _TreeNode, lo: int, hi: int) -> tuple[float, int]:
        """Upper bound on the best (score, id) key inside ``node ∩ [lo, hi]``.

        For nodes fully inside the query window the skyline gives the exact
        maximum; for partially covered leaves the in-window records are
        scored directly (a leaf holds at most ``LENGTH_THRESHOLD`` records).
        """
        if lo <= node.lo and node.hi <= hi:
            ids = node.skyline_ids
        else:
            ids = np.arange(max(node.lo, lo), min(node.hi, hi) + 1)
        if len(ids) == 0:
            return float("-inf"), -1
        scores = self._scores_of(np.asarray(ids))
        best = int(np.argmax(scores))
        best_score = float(scores[best])
        # Prefer the later arrival among ties, matching the canonical order.
        tied = np.nonzero(scores == best_score)[0]
        best_id = int(np.asarray(ids)[tied].max())
        return best_score, best_id

    def topk(self, k: int, lo: int, hi: int) -> list[int]:
        if k <= 0:
            return []
        lo = max(lo, 0)
        hi = min(hi, self.n - 1)
        if hi < lo or self._tree._root is None:
            return []
        threshold = self._tree.length_threshold
        # Heap of (-ub_score, -ub_id, node); start from nodes produced by a
        # canonical-cover style descent from the root.
        heap: list[tuple[float, int, _TreeNode]] = []

        def push(node: _TreeNode) -> None:
            if node.hi < lo or node.lo > hi:
                return
            ub_score, ub_id = self._node_upper_bound(node, lo, hi)
            if ub_id >= 0:
                heapq.heappush(heap, (-ub_score, -ub_id, node))

        push(self._tree._root)
        candidate_ids: list[np.ndarray] = []
        candidate_count = 0
        kth_key: tuple[float, int] | None = None
        while heap:
            neg_score, neg_id, node = heapq.heappop(heap)
            ub_key = (-neg_score, -neg_id)
            if kth_key is not None and ub_key <= kth_key:
                break  # nothing left can displace the current top-k
            if node.span > threshold and node.left is not None:
                push(node.left)
                push(node.right)
                continue
            # Candidate node: keep every in-window record it holds.
            ids = np.arange(max(node.lo, lo), min(node.hi, hi) + 1)
            candidate_ids.append(ids)
            candidate_count += len(ids)
            if candidate_count >= k:
                kth_key = self._kth_key(candidate_ids, k)
        return self._finalise(candidate_ids, k)

    def _kth_key(self, candidate_ids: list[np.ndarray], k: int) -> tuple[float, int]:
        ids = np.concatenate(candidate_ids)
        scores = self._scores_of(ids)
        order = np.lexsort((ids, scores))[::-1]  # score desc, id desc
        kth = order[min(k, len(order)) - 1]
        return float(scores[kth]), int(ids[kth])

    def _finalise(self, candidate_ids: list[np.ndarray], k: int) -> list[int]:
        if not candidate_ids:
            return []
        ids = np.concatenate(candidate_ids)
        scores = self._scores_of(ids)
        order = np.lexsort((ids, scores))[::-1]
        return [int(ids[i]) for i in order[:k]]

    def top1(self, lo: int, hi: int) -> int | None:
        result = self.topk(1, lo, hi)
        return result[0] if result else None
