"""Index substrates for durable top-k query processing.

This subpackage contains every data structure the paper's algorithms rely
on:

* :mod:`repro.index.fenwick` — binary indexed tree for prefix counting
  (backs the blocking-interval mechanism of the score-prioritized
  algorithms).
* :mod:`repro.index.segment_tree` — static max segment tree with argmax
  descent.
* :mod:`repro.index.range_topk` — range top-k over a score array via the
  heap-of-subranges technique (``O(k log n)`` per query).
* :mod:`repro.index.skyline` — skyline and k-skyband computation.
* :mod:`repro.index.skyline_tree` — the paper's Appendix-A index: a balanced
  tree over the time domain whose nodes store skylines, queried with a
  branch-and-bound priority queue.
* :mod:`repro.index.kskyband` — the durable k-skyband duration index used by
  the S-Band algorithm (Section IV-B, Figure 4).
* :mod:`repro.index.priority_search_tree` — 3-sided range reporting used to
  retrieve S-Band candidate sets.
* :mod:`repro.index.topk` — the ``TopKIndex`` protocol shared by the two
  top-k building blocks, plus a counting wrapper used by the experiment
  harness.
"""

from repro.index.block_topk import BlockTopKIndex
from repro.index.fenwick import FenwickTree
from repro.index.priority_search_tree import PrioritySearchTree
from repro.index.range_topk import ScoreArrayTopKIndex
from repro.index.segment_tree import MaxSegmentTree
from repro.index.skyline import kskyband_indices, pareto_dominates, skyline_indices
from repro.index.skyline_tree import SkylineTree, SkylineTreeTopKIndex
from repro.index.kskyband import DurableSkybandIndex
from repro.index.topk import (
    BatchTopKMemo,
    CountingTopKIndex,
    TopKIndex,
    batched_window_topk,
    build_topk_index,
)

__all__ = [
    "FenwickTree",
    "MaxSegmentTree",
    "ScoreArrayTopKIndex",
    "BlockTopKIndex",
    "SkylineTree",
    "SkylineTreeTopKIndex",
    "DurableSkybandIndex",
    "PrioritySearchTree",
    "CountingTopKIndex",
    "TopKIndex",
    "build_topk_index",
    "BatchTopKMemo",
    "batched_window_topk",
    "skyline_indices",
    "kskyband_indices",
    "pareto_dominates",
]
