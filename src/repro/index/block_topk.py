"""Appendable block-decomposition top-k building block.

The paper notes its indexes support updates in polylogarithmic time; this
module provides the append path for the pragmatic score-array world: a
sqrt-decomposition over the score array where each full block caches its
maximum. Appends are ``O(1)`` amortised, and a range top-k runs the same
heap-of-subranges loop as the segment-tree block, using block maxima to
bound subranges (``O((k + n/B) log)`` per query — a deliberate
middle-ground block that also serves as the in-memory twin of the MiniDB
block index, useful for ablating block granularity).

Implements the :class:`repro.index.topk.TopKIndex` protocol plus
:meth:`append`.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["BlockTopKIndex"]

_NEG_INF = float("-inf")


class BlockTopKIndex:
    """Range top-k over an appendable score sequence.

    Parameters
    ----------
    scores:
        Initial scores (may be empty).
    block_size:
        Records per block; smaller blocks mean tighter bounds but more
        heap traffic.
    """

    def __init__(self, scores=(), block_size: int = 64) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self._scores: list[float] = []
        self._block_max: list[float] = []
        for s in np.asarray(scores, dtype=float):
            self.append(float(s))

    @property
    def n(self) -> int:
        """Number of indexed records."""
        return len(self._scores)

    def score(self, record_id: int) -> float:
        return self._scores[record_id]

    def append(self, score: float) -> int:
        """Add the next record's score; returns its id."""
        score = float(score)
        if np.isnan(score):
            raise ValueError("scores may not be NaN")
        record_id = len(self._scores)
        self._scores.append(score)
        block = record_id // self.block_size
        if block == len(self._block_max):
            self._block_max.append(score)
        elif score > self._block_max[block]:
            self._block_max[block] = score
        return record_id

    # ------------------------------------------------------------------
    def _range_argmax(self, lo: int, hi: int) -> tuple[float, int]:
        """Exact (max, argmax) over [lo, hi], block-accelerated.

        Ties resolve to the larger index (canonical order).
        """
        best_v, best_i = _NEG_INF, -1
        scores, bmax, size = self._scores, self._block_max, self.block_size
        i = lo
        while i <= hi:
            block = i // size
            block_end = (block + 1) * size - 1
            if i == block * size and block_end <= hi:
                # Whole block in range: consult the cached max first.
                if bmax[block] >= best_v:
                    for j in range(block_end, i - 1, -1):
                        if scores[j] == bmax[block]:
                            if bmax[block] > best_v or j > best_i:
                                best_v, best_i = bmax[block], j
                            break
                i = block_end + 1
            else:
                stop = min(hi, block_end)
                for j in range(i, stop + 1):
                    if scores[j] > best_v or (scores[j] == best_v and j > best_i):
                        best_v, best_i = scores[j], j
                i = stop + 1
        return best_v, best_i

    def top1(self, lo: int, hi: int) -> int | None:
        lo = max(lo, 0)
        hi = min(hi, self.n - 1)
        if hi < lo:
            return None
        return self._range_argmax(lo, hi)[1]

    def topk(self, k: int, lo: int, hi: int) -> list[int]:
        """Top-k ids in [lo, hi], canonical order, best first."""
        if k <= 0:
            return []
        lo = max(lo, 0)
        hi = min(hi, self.n - 1)
        if hi < lo:
            return []
        value, arg = self._range_argmax(lo, hi)
        heap = [(-value, -arg, lo, hi)]
        out: list[int] = []
        while heap and len(out) < k:
            _, neg_i, rlo, rhi = heapq.heappop(heap)
            i = -neg_i
            out.append(i)
            if rlo <= i - 1:
                v, a = self._range_argmax(rlo, i - 1)
                heapq.heappush(heap, (-v, -a, rlo, i - 1))
            if i + 1 <= rhi:
                v, a = self._range_argmax(i + 1, rhi)
                heapq.heappush(heap, (-v, -a, i + 1, rhi))
        return out

    def topk_batch(self, k: int, windows) -> list[list[int]]:
        """Answer many ``topk`` windows in one vectorised sweep.

        Materialises the current scores as an array once (appends since
        the last call pay a fresh copy) and runs the shared
        :func:`~repro.index.topk.batched_window_topk` kernel — identical
        answers to a ``topk`` loop, amortised over the whole batch
        instead of walking blocks per window.
        """
        from repro.index.topk import batched_window_topk

        return batched_window_topk(np.asarray(self._scores, dtype=float), k, windows)
