"""Expected-complexity analysis (Section V of the paper)."""

from repro.analysis.expected import (
    empirical_answer_size,
    expected_answer_size,
    expected_candidate_bound,
    expected_skyband_size,
)

__all__ = [
    "expected_answer_size",
    "expected_candidate_bound",
    "expected_skyband_size",
    "empirical_answer_size",
]
