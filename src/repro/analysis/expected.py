"""Closed-form expectations from Section V and empirical validators.

* **Lemma 4** (random permutation model): the expected durable top-k
  answer size is exactly ``E[|S|] = k * |I| / (tau + 1)`` — every record's
  durability probability is ``k / (tau + 1)`` independent of the value
  distribution, provided arrival order is a uniform random permutation.
* **Lemma 5** (random model of Bentley et al.): the expected durable
  k-skyband candidate set obeys
  ``E[|C|] = O(k * |I| / tau * log^{d-1} tau)``,
  with the recurrence ``A(m, d) = sum_J A(J, d-1) / J`` for the expected
  k-skyband size of ``m`` random points.

These functions power the Lemma-4/Lemma-5 validation experiments and the
sanity assertions inside the figure benchmarks (e.g. the answer size on
IND data should track ``k|I|/(tau+1)`` closely).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "expected_answer_size",
    "expected_answer_size_clipped",
    "expected_skyband_size",
    "expected_candidate_bound",
    "empirical_answer_size",
]


def expected_answer_size(k: int, interval_length: int, tau: int) -> float:
    """Lemma 4: ``E[|S|] = k * |I| / (tau + 1)`` under the RPM.

    >>> expected_answer_size(k=10, interval_length=1000, tau=99)
    100.0
    """
    if k < 1 or interval_length < 0 or tau < 1:
        raise ValueError("need k >= 1, interval_length >= 0, tau >= 1")
    return k * interval_length / (tau + 1)


def expected_answer_size_clipped(k: int, n: int, tau: int, lo: int = 0, hi: int | None = None) -> float:
    """Exact RPM expectation accounting for window clipping at time 0.

    Lemma 4 assumes every record has ``tau`` predecessors. A record at
    time ``t < tau`` has only ``t``, so its durability probability rises
    to ``min(1, k / (t + 1))``. Summing the exact per-record probability
    gives the expectation that empirical measurements over intervals
    touching the start of history actually converge to.

    >>> round(expected_answer_size_clipped(1, 100, 9, lo=9), 6)  # no clipping
    9.1
    """
    if k < 1 or n < 1 or tau < 1:
        raise ValueError("need k >= 1, n >= 1, tau >= 1")
    hi = n - 1 if hi is None else min(hi, n - 1)
    lo = max(lo, 0)
    if hi < lo:
        return 0.0
    t = np.arange(lo, hi + 1, dtype=float)
    window = np.minimum(t, float(tau))
    return float(np.minimum(1.0, k / (window + 1.0)).sum())


def expected_skyband_size(m: int, d: int, k: int) -> float:
    """Expected k-skyband size ``A(m, d)`` of ``m`` random points in d-D.

    Evaluates the recurrence from the proof of Lemma 5 exactly:
    ``A(m, 1) = min(k, m)`` and ``A(m, d) = sum_{J=1..m} A(J, d-1) / J``.
    ``O(k log^{d-1} m)`` asymptotically.
    """
    if m < 0 or d < 1 or k < 1:
        raise ValueError("need m >= 0, d >= 1, k >= 1")
    if m == 0:
        return 0.0
    # A over J = 1..m for the current dimension, built up iteratively.
    a = np.minimum(np.arange(1, m + 1, dtype=float), float(k))  # d = 1
    for _ in range(d - 1):
        a = np.cumsum(a / np.arange(1, m + 1, dtype=float))
    return float(a[-1])


def expected_candidate_bound(
    k: int, interval_length: int, tau: int, d: int, constant: float = 1.0
) -> float:
    """Lemma 5 upper-bound form ``c * k * (|I|/tau) * log^{d-1}(tau)``.

    A scale-free bound for asserting growth *shape*; use
    :func:`expected_skyband_size` for a sharp per-window estimate
    (``(|I|/tau) * A(tau + 1, d)``).
    """
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    log_tau = max(math.log(tau), 1.0)
    return constant * k * (interval_length / tau) * log_tau ** (d - 1)


def empirical_answer_size(
    scores: np.ndarray, k: int, tau: int, lo: int | None = None, hi: int | None = None
) -> int:
    """Exact ``|S|`` for a score sequence (brute force, for validation)."""
    from repro.core.reference import brute_force_durable_topk

    scores = np.asarray(scores, dtype=float)
    lo = 0 if lo is None else lo
    hi = len(scores) - 1 if hi is None else hi
    return len(brute_force_durable_topk(scores, k, lo, hi, tau))
