"""Checksummed write-ahead log for row appends.

The log is the durability half of the ingest pipeline: a row is
recoverable once its WAL entry is flushed, long before the sealer packs
it into heap pages. The format is deliberately boring — a fixed header
followed by fixed-width entries — because recovery must be decidable
from the bytes alone:

* header: magic ``b"RWAL1\\0"`` + ``<I`` attribute count ``d`` + ``<Q``
  generation;
* entry: ``d`` little-endian float64 attributes + ``<I`` CRC32 of the
  payload.

Appends are buffered (group commit); :meth:`flush` drains the buffer and
optionally fsyncs. On open, the log scans forward entry by entry and
stops at the first short or checksum-failing entry — the torn tail a
crash mid-append leaves behind — truncating the file back to the last
whole entry, so a reopened log is always consistent and appendable.

The **generation** makes log truncation a transaction the store's
manifest can order against: :meth:`reset` bumps it, so a manifest that
recorded "generation ``g`` is sealed" lets recovery distinguish a log
whose truncate never happened (same generation — drop the entries, they
are already in pages) from fresh post-seal appends (later generation —
replay them). Without it, a crash between the manifest commit and the
WAL truncate would replay every just-sealed row a second time.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs import global_registry

__all__ = ["WriteAheadLog", "WalRecoveryReport"]

_MAGIC = b"RWAL1\x00"
_HEADER = struct.Struct(f"<{len(_MAGIC)}sIQ")


@dataclass(frozen=True)
class WalRecoveryReport:
    """What :class:`WriteAheadLog` found (and dropped) on open."""

    rows: np.ndarray
    #: Bytes of torn/corrupt tail discarded by truncation (0 = clean).
    torn_bytes: int


class WriteAheadLog:
    """Append-only, checksummed log of fixed-width float rows.

    Parameters
    ----------
    path:
        Log file location; created (with its header) when absent.
    d:
        Attributes per row. Must match the header of an existing log.
    """

    def __init__(self, path: str | Path, d: int) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.path = Path(path)
        self.d = d
        self.generation = 0
        self._entry = struct.Struct(f"<{d}dI")
        self._pending = bytearray()
        created = not self.path.exists()
        self._file = open(self.path, "a+b")
        if created or self.path.stat().st_size == 0:
            self._file.write(_HEADER.pack(_MAGIC, d, 0))
            self._file.flush()
            self._recovered = WalRecoveryReport(np.empty((0, d)), torn_bytes=0)
        else:
            self._recovered = self._scan_and_truncate()

    @property
    def recovered(self) -> WalRecoveryReport:
        """Rows recovered from the file at open time."""
        return self._recovered

    def _scan_and_truncate(self) -> WalRecoveryReport:
        self._file.seek(0)
        raw = self._file.read()
        if len(raw) < _HEADER.size:
            raise ValueError(f"{self.path} is not a WAL file (truncated header)")
        magic, d, generation = _HEADER.unpack_from(raw)
        if magic != _MAGIC:
            raise ValueError(f"{self.path} is not a WAL file (bad magic)")
        if d != self.d:
            raise ValueError(f"WAL holds {d}-attribute rows, expected {self.d}")
        self.generation = generation
        size = self._entry.size
        rows: list[tuple[float, ...]] = []
        offset = _HEADER.size
        while offset + size <= len(raw):
            *values, crc = self._entry.unpack_from(raw, offset)
            if zlib.crc32(raw[offset : offset + 8 * self.d]) != crc:
                break  # torn or corrupt: everything from here on is dead
            rows.append(tuple(values))
            offset += size
        torn = len(raw) - offset
        if torn:
            self._file.truncate(offset)
        self._file.seek(0, os.SEEK_END)
        recovered = np.array(rows, dtype=float) if rows else np.empty((0, self.d))
        return WalRecoveryReport(recovered.reshape(len(rows), self.d), torn_bytes=torn)

    def append(self, row: np.ndarray) -> None:
        """Buffer one row; durable only after the next :meth:`flush`."""
        payload = struct.pack(f"<{self.d}d", *(float(v) for v in row))
        self._pending += payload + struct.pack("<I", zlib.crc32(payload))

    def flush(self, sync: bool = False) -> None:
        """Write buffered entries out; ``sync`` additionally fsyncs."""
        if self._pending:
            # Group-commit size: rows made durable by this single write.
            global_registry().histogram("wal.group_commit_rows").observe(
                len(self._pending) // self._entry.size
            )
            self._file.write(bytes(self._pending))
            self._pending.clear()
        self._file.flush()
        if sync:
            os.fsync(self._file.fileno())
            global_registry().counter("wal.fsyncs").inc()

    def reset(self, generation: int | None = None) -> None:
        """Drop every logged entry and advance the generation.

        Called after a seal made the entries durable in page storage.
        The header is rewritten in place with the bumped generation (or
        an explicit one — recovery uses that to restore the invariant
        ``wal.generation > sealed generation``), so a reopen can tell
        "these entries were already sealed" (old generation still on
        disk) from "these arrived after the seal" (bumped generation).
        """
        self._pending.clear()
        self.generation = self.generation + 1 if generation is None else generation
        self._file.truncate(0)
        self._file.seek(0)
        self._file.write(_HEADER.pack(_MAGIC, self.d, self.generation))
        self._file.flush()
        self._file.seek(0, os.SEEK_END)

    def close(self) -> None:
        """Flush and release the file handle."""
        if not self._file.closed:
            self.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
