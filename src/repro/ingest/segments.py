"""Segments, the append tail, and the cross-segment top-k building block.

The live dataset stores its history as contiguous immutable **segments**
plus one mutable **tail**; queries see a *stitched* top-k index over the
lot. Exactness rests on one composition property of the canonical total
order (score descending, later arrival wins ties): the top-k of a union
of disjoint id ranges is contained in the union of the per-range top-k's,
so merging per-part answers under the global comparator reproduces the
answer one monolithic index would give — byte for byte, ties included.
That is what lets the unmodified T-Base/T-Hop algorithms run over a
growing dataset and stay exactly equal to an offline rebuild.
"""

from __future__ import annotations

import bisect
import threading
from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from repro.index.range_topk import ScoreArrayTopKIndex
from repro.service.request import preference_key

__all__ = ["Segment", "TailBuffer", "SegmentedTopKIndex"]


class Segment:
    """An immutable run of rows ``[lo, lo + len - 1]`` of the live dataset.

    Carries its own per-preference top-k index, built lazily on first
    query under a preference and LRU-cached (segments are immutable, so a
    cached index is valid forever). ``reverse=True`` variants serve
    look-ahead queries, which run over the time-reversed domain.
    """

    #: Per-segment preference-bound indexes retained (forward + reversed
    #: variants count separately).
    INDEX_CACHE_SIZE = 8

    __slots__ = ("lo", "values", "timestamps", "labels", "_cache", "_lock")

    def __init__(
        self,
        lo: int,
        values: np.ndarray,
        timestamps: list | None = None,
        labels: list | None = None,
    ) -> None:
        values = np.ascontiguousarray(values, dtype=float)
        if values.ndim != 2 or len(values) == 0:
            raise ValueError(f"segment values must be non-empty (n, d), got {values.shape}")
        self.lo = lo
        self.values = values
        self.timestamps = timestamps
        self.labels = labels
        self._cache: "OrderedDict[Any, ScoreArrayTopKIndex]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.values)

    @property
    def hi(self) -> int:
        """Last (inclusive) global row id of the segment."""
        return self.lo + len(self.values) - 1

    def index_for(self, scorer, reverse: bool = False) -> ScoreArrayTopKIndex:
        """The segment's top-k index under ``scorer`` (cached).

        The build is a single vectorised scoring pass plus a segment-tree
        build; racing first-touchers may build duplicates (last one is
        cached) — harmless, unlike the engine's expensive index builds,
        so no single-flighting here. ``reverse`` indexes the scores in
        reversed arrival order for look-ahead queries.
        """
        key = (preference_key(scorer), reverse)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                return cached
        scores = scorer.scores(self.values)
        index = ScoreArrayTopKIndex(scores[::-1] if reverse else scores)
        with self._lock:
            self._cache[key] = index
            if len(self._cache) > self.INDEX_CACHE_SIZE:
                self._cache.popitem(last=False)
        return index


class TailBuffer:
    """Append-only growable row buffer with atomic snapshot reads.

    Appends are single-writer (the live dataset serialises them); reads
    take no lock: :attr:`published` returns ``(buffer, count)`` where the
    first ``count`` rows are immutable. Ordering makes this safe under
    the GIL — the writer copies into a fresh buffer *before* swapping it
    in, and bumps the count only after the row is written, while readers
    load the count before the buffer, so the buffer they see always holds
    at least ``count`` valid rows.
    """

    __slots__ = ("d", "_buf", "_count", "timestamps", "labels")

    def __init__(self, d: int, capacity: int = 1024) -> None:
        if d < 1 or capacity < 1:
            raise ValueError(f"need d >= 1 and capacity >= 1, got d={d}, capacity={capacity}")
        self.d = d
        self._buf = np.empty((capacity, d))
        self._count = 0
        self.timestamps: list = []
        self.labels: list = []

    @property
    def count(self) -> int:
        """Number of appended rows."""
        return self._count

    @property
    def published(self) -> tuple[np.ndarray, int]:
        """A consistent ``(buffer, count)`` snapshot (count read first)."""
        count = self._count
        return self._buf, count

    def append(self, row: np.ndarray, timestamp=None, label: str | None = None) -> int:
        """Write one row; returns its tail-local index. Writer-side only."""
        count = self._count
        buf = self._buf
        if count == len(buf):
            grown = np.empty((2 * len(buf), self.d))
            grown[:count] = buf[:count]
            self._buf = buf = grown
        buf[count] = row
        self.timestamps.append(timestamp)
        self.labels.append(label)
        self._count = count + 1
        return count

    def values_view(self, count: int | None = None) -> np.ndarray:
        """The first ``count`` rows (do not mutate)."""
        buf, published = self.published
        count = published if count is None else count
        return buf[:count]


class SegmentedTopKIndex:
    """Top-k building block stitched over contiguous per-part indexes.

    Parts are ``(base, ScoreArrayTopKIndex)`` pairs covering adjacent
    global id ranges ``[base, base + part.n)``; ids returned are global.
    Implements the :class:`~repro.index.topk.TopKIndex` protocol, so the
    engine-side algorithms (and the counting wrapper) use it unchanged.
    """

    def __init__(self, parts: Sequence[tuple[int, ScoreArrayTopKIndex]]) -> None:
        if not parts:
            raise ValueError("need at least one part")
        self._bases = [base for base, _ in parts]
        self._parts = [part for _, part in parts]
        expected = self._bases[0]
        for base, part in parts:
            if base != expected:
                raise ValueError(f"parts must be contiguous; expected base {expected}, got {base}")
            expected = base + part.n
        self._n = expected - self._bases[0]
        if self._bases[0] != 0:
            raise ValueError(f"first part must start at 0, got {self._bases[0]}")

    @property
    def n(self) -> int:
        """Total number of indexed records."""
        return self._n

    def _part_of(self, record_id: int) -> int:
        return bisect.bisect_right(self._bases, record_id) - 1

    def score(self, record_id: int) -> float:
        """Score of one record (delegated to its part)."""
        p = self._part_of(record_id)
        return self._parts[p].score(record_id - self._bases[p])

    def top1(self, lo: int, hi: int) -> int | None:
        """Best global id in ``[lo, hi]`` under the canonical order."""
        top = self.topk(1, lo, hi)
        return top[0] if top else None

    def topk(self, k: int, lo: int, hi: int) -> list[int]:
        """Exact global top-k of ``[lo, hi]``, canonical order, best first.

        Single-part windows (the common case: a durability window inside
        one big segment) delegate without merging; multi-part windows
        merge the per-part top-k candidates under the global
        ``(score, id)`` descending comparator, which equals the order a
        monolithic index would produce because ids within a part are
        translated monotonically.
        """
        if k <= 0:
            return []
        lo = max(lo, 0)
        hi = min(hi, self._n - 1)
        if hi < lo:
            return []
        first = self._part_of(lo)
        last = self._part_of(hi)
        if first == last:
            base = self._bases[first]
            return [base + t for t in self._parts[first].topk(k, lo - base, hi - base)]
        candidates: list[tuple[float, int]] = []
        for p in range(first, last + 1):
            base, part = self._bases[p], self._parts[p]
            a = max(lo, base) - base
            b = min(hi, base + part.n - 1) - base
            for t in part.topk(k, a, b):
                candidates.append((part.score(t), base + t))
        candidates.sort(reverse=True)
        return [gid for _, gid in candidates[:k]]

    def topk_batch(self, k: int, windows) -> list[list[int]]:
        """Answer many ``topk`` windows, batching per-part answers.

        Windows contained in a single part (the common case: durability
        windows inside one big segment) are grouped by part and answered
        with that part's vectorised ``topk_batch`` in one pass each;
        part-straddling windows fall back to the per-window merge. The
        answers equal a ``topk`` loop exactly.
        """
        out: list[list[int] | None] = [None] * len(windows)
        per_part: dict[int, list[tuple[int, int, int]]] = {}
        for i, (lo, hi) in enumerate(windows):
            if k <= 0:
                out[i] = []
                continue
            lo = max(lo, 0)
            hi = min(hi, self._n - 1)
            if hi < lo:
                out[i] = []
                continue
            first = self._part_of(lo)
            if first == self._part_of(hi):
                base = self._bases[first]
                per_part.setdefault(first, []).append((i, lo - base, hi - base))
            else:
                out[i] = self.topk(k, lo, hi)
        for p, entries in per_part.items():
            base = self._bases[p]
            answers = self._parts[p].topk_batch(k, [(lo, hi) for _, lo, hi in entries])
            for (i, _, _), local_ids in zip(entries, answers):
                out[i] = [base + t for t in local_ids]
        return out  # type: ignore[return-value]
