"""Live ingestion: durable top-k over a *growing* dataset.

The paper's indexes are bulk-built over a frozen time domain; this
package adds the write path that production serving needs — an
LSM-flavoured live dataset:

* **Tail** — appends land in a mutable, append-only in-memory buffer
  (:class:`~repro.ingest.segments.TailBuffer`); queries answer the tail
  with the same skyband/top-k machinery the offline algorithms use.
* **Segments** — a sealer freezes the tail into immutable
  :class:`~repro.ingest.segments.Segment` runs, each carrying its own
  per-preference top-k index; a compactor merges small adjacent segments
  into larger ones (single-flighted, like every other build in this
  library).
* **Stitching** — :class:`~repro.ingest.segments.SegmentedTopKIndex`
  merges per-segment top-k answers into a building block whose answers
  are *exactly* those of one index over the full dataset, so the
  unmodified T-Base/T-Hop algorithms run over a
  :class:`~repro.ingest.live.LiveDataset` and return byte-identical
  results to an offline rebuild — including windows straddling the
  tail/segment boundary.
* **Durability** — :class:`~repro.ingest.wal.WriteAheadLog` provides the
  checksummed, group-committed append log the paged MiniDB store
  (:class:`repro.minidb.live.LiveMiniDB`) replays on reopen.

The serving layer plugs in through
:class:`repro.service.backends.LiveBackend`, so reads and writes run
concurrently: queries snapshot the segment list epoch-style (one
immutable state object, swapped atomically — no reader locks on the hot
path) while appends and seals publish new states.
"""

from repro.ingest.live import LiveDataset, LiveSnapshot
from repro.ingest.segments import Segment, SegmentedTopKIndex, TailBuffer
from repro.ingest.wal import WalRecoveryReport, WriteAheadLog

__all__ = [
    "LiveDataset",
    "LiveSnapshot",
    "Segment",
    "SegmentedTopKIndex",
    "TailBuffer",
    "WalRecoveryReport",
    "WriteAheadLog",
]
