"""The live dataset: appends, sealing, compaction, and exact queries.

:class:`LiveDataset` is the LSM-flavoured counterpart of the immutable
:class:`~repro.core.record.Dataset`:

* ``append``/``extend`` land rows in the mutable tail;
* a **sealer** (inline or the background maintenance thread) freezes the
  tail into an immutable :class:`~repro.ingest.segments.Segment`;
* a **compactor** merges runs of small adjacent segments so the segment
  count — and with it per-query merge fan-in — stays logarithmic-ish in
  the ingested volume;
* ``query`` answers durable top-k questions over a consistent snapshot,
  *exactly* equal to rebuilding one index over the frozen prefix;
* ``query_batch`` answers a same-preference batch over *one* pinned
  snapshot with shared memoised windows — every answer byte-identical
  to a serial ``query`` loop against that snapshot.

Concurrency model (epoch/RCU-style): all mutable state lives in one
immutable ``_LiveState`` (segment tuple + tail buffer + base offset)
published through a single attribute store, which CPython makes atomic.
Readers grab the current state and never lock; writers serialise on the
append lock; seal/compact additionally serialise on the maintenance lock
(single-flighted builds, as everywhere else in this library) and publish
a fresh state. A query that started before a seal keeps answering over
the state it grabbed — append-only growth means that snapshot equals
``frozen_prefix(n)`` forever.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.algorithms.base import AlgorithmContext, get_algorithm
from repro.core.batch import BatchPlan, clone_result
from repro.core.durability import attach_max_durations
from repro.core.query import Direction, DurableTopKQuery, DurableTopKResult, QueryStats
from repro.core.record import Dataset
from repro.index.range_topk import ScoreArrayTopKIndex
from repro.index.topk import BatchTopKMemo, CountingTopKIndex
from repro.ingest.segments import Segment, SegmentedTopKIndex, TailBuffer
from repro.obs import add_span, global_registry, trace_span, tracing_active

__all__ = ["LiveDataset", "LiveSnapshot"]

#: Algorithms that touch data only through the top-k building block and
#: therefore run unchanged over the stitched index. The sort-based
#: S-algorithms need a materialised value matrix — freeze() first.
INDEX_ONLY_ALGORITHMS = ("t-base", "t-hop")


def _validate_live_algorithm(algorithm: str) -> None:
    if algorithm not in INDEX_ONLY_ALGORITHMS:
        raise ValueError(
            f"LiveDataset serves {INDEX_ONLY_ALGORITHMS}, not {algorithm!r}; "
            "freeze() the dataset for the sort-based algorithms"
        )


@dataclass(frozen=True)
class _LiveState:
    """One immutable publication of the dataset's structure."""

    segments: tuple[Segment, ...]
    tail: TailBuffer
    #: Global id of the first tail row (== number of sealed rows).
    base: int


@dataclass(frozen=True)
class LiveSnapshot:
    """A consistent point-in-time view of a :class:`LiveDataset`."""

    segments: tuple[Segment, ...]
    tail_values: np.ndarray  # (m, d) immutable view
    base: int
    version: int

    @property
    def n(self) -> int:
        """Records visible in this snapshot."""
        return self.base + len(self.tail_values)

    def stitched_index(self, scorer, reverse: bool = False) -> SegmentedTopKIndex:
        """The cross-part top-k block for this snapshot under ``scorer``.

        Per-segment indexes come warm from the segment caches; the tail
        part is scored fresh per call (the tail is small by construction
        — at most one seal threshold of rows).
        """
        parts: list[tuple[int, ScoreArrayTopKIndex]] = []
        if not reverse:
            parts = [(seg.lo, seg.index_for(scorer)) for seg in self.segments]
            if len(self.tail_values):
                parts.append((self.base, ScoreArrayTopKIndex(scorer.scores(self.tail_values))))
        else:
            n = self.n
            if len(self.tail_values):
                scores = scorer.scores(self.tail_values)
                parts.append((0, ScoreArrayTopKIndex(scores[::-1])))
            for seg in reversed(self.segments):
                parts.append((n - 1 - seg.hi, seg.index_for(scorer, reverse=True)))
        return SegmentedTopKIndex(parts)

    def values(self) -> np.ndarray:
        """Materialised ``(n, d)`` value matrix of the snapshot."""
        chunks = [seg.values for seg in self.segments]
        if len(self.tail_values):
            chunks.append(self.tail_values)
        if not chunks:
            d = self.tail_values.shape[1]
            return np.empty((0, d))
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0].copy()


class _SnapshotView:
    """Duck-typed stand-in for ``AlgorithmContext.dataset``.

    The index-only algorithms never touch it; anything reaching for
    ``values`` gets the materialised snapshot (lazily, once).
    """

    __slots__ = ("_snapshot", "_values")

    def __init__(self, snapshot: LiveSnapshot) -> None:
        self._snapshot = snapshot
        self._values = None

    @property
    def n(self) -> int:
        return self._snapshot.n

    @property
    def values(self) -> np.ndarray:
        if self._values is None:
            self._values = self._snapshot.values()
        return self._values


class LiveDataset:
    """A growing dataset serving exact durable top-k queries while ingesting.

    Parameters
    ----------
    d:
        Number of ranking attributes.
    seal_rows:
        Tail size that triggers a seal (and the sealer's unit of work).
    compact_fanout:
        Merge a run of this many adjacent small segments into one.
    name:
        Dataset name used in frozen snapshots and reports.

    Call :meth:`start_maintenance` to run sealing/compaction on a
    background thread (the serving configuration); without it, call
    :meth:`seal`/:meth:`compact` explicitly (the deterministic test
    configuration). Appends never block on either beyond the brief
    append lock.
    """

    def __init__(
        self,
        d: int,
        seal_rows: int = 4096,
        compact_fanout: int = 8,
        name: str = "live",
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if seal_rows < 1:
            raise ValueError(f"seal_rows must be >= 1, got {seal_rows}")
        if compact_fanout < 2:
            raise ValueError(f"compact_fanout must be >= 2, got {compact_fanout}")
        self.d = d
        self.seal_rows = seal_rows
        self.compact_fanout = compact_fanout
        self.name = name
        self._state = _LiveState((), TailBuffer(d, capacity=max(seal_rows, 16)), 0)
        self._append_lock = threading.Lock()
        self._maintenance_lock = threading.Lock()
        self._wake = threading.Condition(threading.Lock())
        self._thread: threading.Thread | None = None
        self._stop = False
        self.seals = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Records currently visible (sealed + tail)."""
        state = self._state
        return state.base + state.tail.count

    @property
    def version(self) -> int:
        """Monotone content stamp: the record count.

        The dataset is append-only, so its logical content is fully
        determined by ``n`` — seals and compactions reorganise storage
        without changing a single record. Deriving the version from the
        row count (rather than a separate counter) also makes every
        snapshot's ``(content, version)`` pair consistent by
        construction, with no cross-field read races.
        """
        return self.n

    @property
    def segment_count(self) -> int:
        """Number of sealed segments."""
        return len(self._state.segments)

    def append(self, row, timestamp=None, label: str | None = None) -> int:
        """Append one record; returns its global arrival index."""
        row = np.asarray(row, dtype=float).reshape(-1)
        if len(row) != self.d:
            raise ValueError(f"row has {len(row)} attributes, dataset has {self.d}")
        if not np.isfinite(row).all():
            raise ValueError("row values must be finite (no NaN/inf)")
        with self._append_lock:
            state = self._state
            t = state.base + state.tail.append(row, timestamp, label)
        if self._thread is not None and state.tail.count >= self.seal_rows:
            with self._wake:
                self._wake.notify()
        return t

    def extend(self, rows: np.ndarray) -> int:
        """Append many rows in one lock acquisition; returns the first id."""
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2 or rows.shape[1] != self.d:
            raise ValueError(f"rows must be (m, {self.d}), got {rows.shape}")
        with self._append_lock:
            state = self._state
            first = state.base + state.tail.count
            for row in rows:
                state.tail.append(row)
        if self._thread is not None and state.tail.count >= self.seal_rows:
            with self._wake:
                self._wake.notify()
        return first

    # ------------------------------------------------------------------
    # Maintenance: sealing and compaction
    # ------------------------------------------------------------------
    def seal(self, min_rows: int = 1) -> int:
        """Freeze the current tail into a segment; returns rows sealed.

        No-op (returns 0) when the tail holds fewer than ``min_rows``.
        """
        with self._maintenance_lock:
            with self._append_lock:
                state = self._state
                m = state.tail.count
                if m < max(1, min_rows):
                    return 0
                segment = Segment(
                    state.base,
                    state.tail.values_view(m).copy(),
                    timestamps=list(state.tail.timestamps[:m]),
                    labels=list(state.tail.labels[:m]),
                )
                self._state = _LiveState(
                    state.segments + (segment,),
                    TailBuffer(self.d, capacity=max(self.seal_rows, 16)),
                    state.base + m,
                )
                self.seals += 1
                registry = global_registry()
                registry.counter("ingest.seals").inc()
                registry.gauge("ingest.segments").set(len(self._state.segments))
        return m

    def _compaction_run(self, segments: tuple[Segment, ...]) -> tuple[int, int] | None:
        """The first window of ``compact_fanout`` adjacent merge-worthy segments.

        Size-tiered at every scale: a window merges when no single member
        holds half its rows — merging near-peers multiplies segment size
        by ~fanout per round (geometric, so total copy work stays
        ``O(n log n)``), while a window dominated by one big segment is
        skipped rather than re-copied behind a few stragglers.
        """
        w = self.compact_fanout
        if len(segments) < w:
            return None
        sizes = [len(seg) for seg in segments]
        for i in range(len(segments) - w + 1):
            window = sizes[i : i + w]
            if 2 * max(window) <= sum(window):
                return i, i + w
        return None

    def compact(self, force: bool = False) -> int:
        """Merge small adjacent segments; returns segments removed.

        ``force=True`` merges *all* segments into one regardless of the
        size policy (used by tests to exercise the swap path).
        """
        with self._maintenance_lock:
            segments = self._state.segments
            if force:
                if len(segments) < 2:
                    return 0
                run = (0, len(segments))
            else:
                found = self._compaction_run(segments)
                if found is None:
                    return 0
                run = found
            i, j = run
            victims = segments[i:j]
            # The expensive concatenation runs outside the append lock;
            # segments are immutable, so no state can shift underneath.
            merged = Segment(
                victims[0].lo,
                np.concatenate([s.values for s in victims]),
                timestamps=[t for s in victims for t in (s.timestamps or [None] * len(s))],
                labels=[lb for s in victims for lb in (s.labels or [None] * len(s))],
            )
            with self._append_lock:
                state = self._state
                self._state = _LiveState(
                    state.segments[:i] + (merged,) + state.segments[j:],
                    state.tail,
                    state.base,
                )
                self.compactions += 1
                registry = global_registry()
                registry.counter("ingest.compactions").inc()
                registry.gauge("ingest.segments").set(len(self._state.segments))
        return len(victims) - 1

    def start_maintenance(self, poll_seconds: float = 0.05) -> None:
        """Run the sealer/compactor on a background daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop = False
        self._thread = threading.Thread(
            target=self._maintain_loop, args=(poll_seconds,),
            name="live-dataset-maintenance", daemon=True,
        )
        self._thread.start()

    def _maintain_loop(self, poll_seconds: float) -> None:
        while True:
            with self._wake:
                if not self._stop and self._state.tail.count < self.seal_rows:
                    self._wake.wait(timeout=poll_seconds)
                if self._stop:
                    return
            if self._state.tail.count >= self.seal_rows:
                self.seal(min_rows=self.seal_rows)
                self.compact()

    def close(self) -> None:
        """Stop the maintenance thread (the data stays queryable)."""
        if self._thread is None:
            return
        with self._wake:
            self._stop = True
            self._wake.notify_all()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "LiveDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def snapshot(self) -> LiveSnapshot:
        """A consistent lock-free view of the current records.

        The version is derived from the captured content (``base +
        count``), so it can never label a different epoch's rows."""
        state = self._state
        buf, count = state.tail.published
        return LiveSnapshot(
            segments=state.segments,
            tail_values=buf[:count],
            base=state.base,
            version=state.base + count,
        )

    def freeze(self, name: str | None = None) -> Dataset:
        """An immutable :class:`Dataset` of the current records.

        The frozen dataset carries ``version`` equal to the live
        dataset's content stamp (its row count), so derived-index caches
        keyed on the version can never serve a stale epoch.
        """
        state = self._state
        buf, tail_n = state.tail.published
        snap = LiveSnapshot(
            segments=state.segments,
            tail_values=buf[:tail_n],
            base=state.base,
            version=state.base + tail_n,
        )
        timestamps = [t for seg in snap.segments for t in (seg.timestamps or [None] * len(seg))]
        timestamps += list(state.tail.timestamps[:tail_n])
        labels = [lb for seg in snap.segments for lb in (seg.labels or [None] * len(seg))]
        labels += list(state.tail.labels[:tail_n])
        has_ts = any(t is not None for t in timestamps)
        has_labels = any(lb is not None for lb in labels)
        return Dataset(
            snap.values(),
            timestamps=timestamps if has_ts else None,
            labels=labels if has_labels else None,
            name=name or f"{self.name}@{snap.version}",
            version=snap.version,
        )

    def query(
        self,
        query: DurableTopKQuery,
        scorer,
        algorithm: str = "t-hop",
        with_durations: bool = False,
        snapshot: LiveSnapshot | None = None,
    ) -> DurableTopKResult:
        """Answer ``query`` over a snapshot, exactly as an offline rebuild.

        Only the index-only algorithms (``t-base``, ``t-hop``) run over
        the stitched block; they are also the natural serving algorithms.
        ``snapshot`` pins the view (defaults to the current one); the
        result's ``extra["snapshot_n"]``/``extra["snapshot_version"]``
        record what was served, which the freshness benchmark and the
        serial re-derivation gate rely on.
        """
        _validate_live_algorithm(algorithm)
        scorer.validate_for(self.d)
        snap = snapshot if snapshot is not None else self.snapshot()
        if query.direction is Direction.FUTURE:
            return self._query_future(
                query, scorer, algorithm, with_durations, snap,
                snap.stitched_index(scorer, reverse=True),
            )
        return self._query_past(
            query, scorer, algorithm, with_durations, snap,
            snap.stitched_index(scorer),
        )

    def _query_past(
        self, query, scorer, algorithm, with_durations, snap: LiveSnapshot, inner
    ) -> DurableTopKResult:
        """One look-back query over a pinned snapshot's stitched block.

        ``inner`` is the stitched index — raw, or wrapped in a batch memo
        by :meth:`query_batch`; per-query stats are charged through the
        query's own counting wrapper either way.
        """
        n = snap.n
        lo, hi = query.resolve_interval(n)
        stats = QueryStats()
        algo = get_algorithm(algorithm)
        with trace_span(
            "ingest.snapshot",
            algorithm=algorithm,
            snapshot_n=n,
            snapshot_version=snap.version,
            segments=len(snap.segments),
            tail_rows=len(snap.tail_values),
        ) as span:
            start = time.perf_counter()
            index = CountingTopKIndex(inner, stats, timed=tracing_active())
            ctx = AlgorithmContext(
                dataset=_SnapshotView(snap),  # type: ignore[arg-type]
                index=index,
                scorer=scorer,
                k=query.k,
                tau=query.tau,
                lo=lo,
                hi=hi,
                stats=stats,
            )
            ids = algo.run(ctx)
            elapsed = time.perf_counter() - start
            span.set(answers=len(ids), topk_queries=stats.topk_queries)
            if index.timed and index.calls:
                add_span(
                    "index.topk",
                    start=index.first_start,
                    duration=index.elapsed,
                    calls=index.calls,
                    candidates_scanned=index.scanned,
                )
        result = DurableTopKResult(
            ids=ids,
            query=query,
            algorithm=algorithm,
            stats=stats,
            elapsed_seconds=elapsed,
            extra={"snapshot_n": n, "snapshot_version": snap.version},
        )
        if with_durations:
            attach_max_durations(result, index)
        return result

    def _query_future(
        self,
        query: DurableTopKQuery,
        scorer,
        algorithm: str,
        with_durations: bool,
        snap: LiveSnapshot,
        inner,
    ) -> DurableTopKResult:
        """Look-ahead: run look-back over the time-reversed stitched index.

        The reversed stitched index (``inner``, possibly memo-wrapped) is
        built from the same per-part score arrays reversed in place, so
        its answers equal those of an index over the reversed frozen
        dataset — the engine's construction.
        """
        n = snap.n
        mirrored = query.reversed(n)
        lo, hi = mirrored.resolve_interval(n)
        stats = QueryStats()
        algo = get_algorithm(algorithm)
        with trace_span(
            "ingest.snapshot",
            algorithm=algorithm,
            direction="future",
            snapshot_n=n,
            snapshot_version=snap.version,
            segments=len(snap.segments),
            tail_rows=len(snap.tail_values),
        ) as span:
            start = time.perf_counter()
            index = CountingTopKIndex(inner, stats, timed=tracing_active())
            ctx = AlgorithmContext(
                dataset=_SnapshotView(snap),  # type: ignore[arg-type]
                index=index,
                scorer=scorer,
                k=mirrored.k,
                tau=mirrored.tau,
                lo=lo,
                hi=hi,
                stats=stats,
            )
            rev_ids = algo.run(ctx)
            elapsed = time.perf_counter() - start
            span.set(answers=len(rev_ids), topk_queries=stats.topk_queries)
        result = DurableTopKResult(
            ids=sorted(n - 1 - t for t in rev_ids),
            query=query,
            algorithm=algorithm,
            stats=stats,
            elapsed_seconds=elapsed,
            extra={"snapshot_n": n, "snapshot_version": snap.version},
        )
        if with_durations:
            mirrored_result = DurableTopKResult(ids=rev_ids, query=mirrored, algorithm=algorithm)
            attach_max_durations(mirrored_result, index)
            result.durations = {
                n - 1 - t: dur for t, dur in (mirrored_result.durations or {}).items()
            }
        return result

    def query_batch(
        self,
        queries,
        scorer,
        algorithm="t-hop",
        with_durations: bool = False,
        snapshot: LiveSnapshot | None = None,
        window_memo=None,
        window_memo_reverse=None,
    ) -> list[DurableTopKResult]:
        """Answer a batch of queries over **one** snapshot in a shared pass.

        Byte-identical to a serial ``query`` loop pinned to the same
        snapshot — same ids, durations, stats and ``extra`` stamps — with
        the batched economics of the engine's
        :meth:`~repro.core.engine.DurableTopKEngine.query_batch`: the
        stitched index is built once per direction, identical queries
        execute once (cloned results for their twins), and a shared
        :class:`~repro.index.topk.BatchTopKMemo` answers repeated
        durability windows once, primed by the segmented block's batched
        per-part pass. ``algorithm`` is one name or a per-query sequence.
        A whole batch sees a single consistent view: tail rows that land
        mid-batch wait for the next one.

        ``window_memo`` / ``window_memo_reverse`` optionally supply
        persistent :class:`~repro.cache.windows.WindowMemo` instances
        (forward / reversed) that are re-bound to this snapshot's
        stitched index and version, so windows answered by earlier
        batches seed this one across batch boundaries — the memo drops
        its entries whenever the snapshot version moved, which is what
        makes seeding safe under live ingest.
        """
        queries = list(queries)
        if isinstance(algorithm, str):
            algorithms = [algorithm] * len(queries)
        else:
            algorithms = [str(name) for name in algorithm]
            if len(algorithms) != len(queries):
                raise ValueError(
                    f"got {len(algorithms)} algorithms for {len(queries)} queries"
                )
        for name in algorithms:
            _validate_live_algorithm(name)
        scorer.validate_for(self.d)
        if not queries:
            return []
        snap = snapshot if snapshot is not None else self.snapshot()
        results: list[DurableTopKResult | None] = [None] * len(queries)

        past = [
            (i, query, algorithms[i])
            for i, query in enumerate(queries)
            if query.direction is not Direction.FUTURE
        ]
        if past:
            inner = snap.stitched_index(scorer)
            if window_memo is not None:
                memo = window_memo.bind(inner, snap.version)
            else:
                memo = BatchTopKMemo(inner)
            plan = BatchPlan(past, snap.n)
            for k, windows in plan.opening_windows().items():
                memo.prime(k, windows)
            for entry in plan.unique:
                results[entry.position] = self._query_past(
                    entry.query, scorer, entry.algorithm, with_durations, snap, memo
                )
            for position, source in plan.duplicates.items():
                results[position] = clone_result(results[source], query=queries[position])

        future = [
            (i, query, algorithms[i])
            for i, query in enumerate(queries)
            if query.direction is Direction.FUTURE
        ]
        if future:
            # Dedupe on the *mirrored* look-back form (what executes);
            # trajectories then share the one reversed stitched block.
            inner = snap.stitched_index(scorer, reverse=True)
            if window_memo_reverse is not None:
                memo = window_memo_reverse.bind(inner, snap.version)
            else:
                memo = BatchTopKMemo(inner)
            plan = BatchPlan(
                [(i, query.reversed(snap.n), name) for i, query, name in future],
                snap.n,
            )
            for k, windows in plan.opening_windows().items():
                memo.prime(k, windows)
            originals = {i: query for i, query, _ in future}
            for entry in plan.unique:
                results[entry.position] = self._query_future(
                    originals[entry.position], scorer, entry.algorithm,
                    with_durations, snap, memo,
                )
            for position, source in plan.duplicates.items():
                results[position] = clone_result(results[source], query=originals[position])
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self._state
        return (
            f"LiveDataset(name={self.name!r}, n={self.n}, d={self.d}, "
            f"segments={len(state.segments)}, tail={state.tail.count})"
        )
