"""The gateway throughput benchmark (and its CLI/CI entry point).

Measures what the wire costs: the same open-loop Poisson request stream
is served twice at the same offered rate —

* **in-process** — ``service.submit`` driven by
  :func:`~repro.service.workload.run_open_loop`; latency is the
  service's submit→completion ``total_seconds``;
* **over sockets** — the same service behind
  :class:`~repro.gateway.DurableTopKGateway` on localhost, driven by
  pipelined :class:`~repro.gateway.GatewayClient` connections (a sender
  paces Poisson arrivals, a reader thread drains responses); latency is
  client-observed send→receive, so it prices framing, auth, admission,
  the event loop *and* the kernel's loopback stack.

Both sides build a fresh service per round and rounds are interleaved —
the same drift-cancelling protocol as the other serving benches — but
the two sides are compared *within* a round and the best paired round
wins: each side's best round taken independently would measure one
lucky scheduler draw, not the wire. The headline metric is
``p95_ratio`` (socket p95 / in-process p95 at equal offered load): a
machine-independent price of the wire, gated twice — a hard ceiling of
:data:`SLO_P95_RATIO` in ``--smoke``, and a relative regression band
via ``repro perf-gate`` against the checked-in baseline.

``verify=True`` (the smoke mode) re-derives every socket-served answer
on a fresh in-process engine and demands byte-identity — ids, durations
*and* stats — so the wire provably neither reorders, truncates, nor
rounds anything.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.engine import DurableTopKEngine
from repro.data import independent_uniform
from repro.experiments.report import format_table
from repro.experiments.resultstore import BenchMetric
from repro.gateway import DurableTopKGateway, GatewayClient, Tenant, WireResult
from repro.obs import MetricsRegistry
from repro.service import (
    DurableTopKService,
    EngineBackend,
    WorkloadGenerator,
    WorkloadSpec,
    percentile,
    run_open_loop,
)
from repro.service.workload import open_loop_arrivals

__all__ = ["GatewayBenchResult", "SLO_P95_RATIO", "SMOKE_DEFAULTS", "gateway_throughput_bench"]

#: The latency SLO of the wire: client-observed p95 over localhost
#: sockets may cost at most this multiple of the in-process p95 at the
#: same offered load. The ``--smoke`` gate fails beyond it.
SLO_P95_RATIO = 1.5

#: Scaled-down parameters for the CI smoke run (seconds, not minutes).
#: ``n`` stays large enough that one query costs low-single-digit
#: milliseconds: the wire adds a near-constant per-request price, so
#: gating its *ratio* on artificially sub-ms queries would measure the
#: chosen workload, not the gateway.
SMOKE_DEFAULTS = {
    "n": 24_000,
    "requests": 240,
    "rate": 150.0,
    "clients": 4,
    "workers": 4,
    "n_preferences": 16,
    "rounds": 1,
}

_TENANTS = {
    "bench-key-alpha": Tenant("alpha", rate=1e6, burst=1e6, max_inflight=65536),
    "bench-key-beta": Tenant("beta", rate=1e6, burst=1e6, max_inflight=65536),
}


@dataclass
class GatewayBenchResult:
    """Report text plus raw numbers (mirrors ``ServiceBenchResult``)."""

    name: str
    report: str
    data: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.report


@dataclass
class _Side:
    """One timed open-loop drive of one serving path."""

    latencies: list[float]
    wall_seconds: float
    rejected: int
    results: list[WireResult] | None = None
    tenant_requests: dict[str, float] = field(default_factory=dict)
    bytes_in: float = 0.0
    bytes_out: float = 0.0

    @property
    def rps(self) -> float:
        return len(self.latencies) / self.wall_seconds if self.wall_seconds else 0.0

    def p(self, q: float) -> float:
        return percentile(self.latencies, q)


def _make_service(dataset, workers: int, pool_capacity: int, n_requests: int):
    return DurableTopKService(
        EngineBackend(DurableTopKEngine(dataset)),
        workers=workers,
        max_queue=max(4096, 4 * n_requests),
        max_batch=32,
        pool_capacity=pool_capacity,
    )


def _run_inproc(dataset, stream, rate, workers, pool_capacity, seed) -> _Side:
    with _make_service(dataset, workers, pool_capacity, len(stream)) as service:
        start = time.perf_counter()
        responses = run_open_loop(service.submit, stream, rate, seed=seed)
        wall = time.perf_counter() - start
    return _Side(
        latencies=[r.total_seconds for r in responses if r.ok],
        wall_seconds=wall,
        rejected=sum(1 for r in responses if not r.ok),
    )


def _run_socket(dataset, stream, rate, clients, workers, pool_capacity, seed) -> _Side:
    """Drive the gateway over real localhost sockets, open-loop.

    Each client thread owns one authenticated persistent connection and
    splits into a pacing sender and a draining reader, so a slow answer
    never stalls the arrival process (open-loop means arrivals do not
    wait for completions). Clients alternate tenant keys, exercising the
    per-tenant counter path under concurrency.
    """
    registry = MetricsRegistry()
    results: list[WireResult | None] = [None] * len(stream)
    latencies: list[float | None] = [None] * len(stream)
    keys = list(_TENANTS)
    with _make_service(dataset, workers, pool_capacity, len(stream)) as service:
        gateway = DurableTopKGateway(
            service, dict(_TENANTS), registry=registry
        ).start()
        try:
            shares = [
                list(enumerate(stream))[ci::clients] for ci in range(clients)
            ]
            barrier = threading.Barrier(clients + 1)

            def drive(ci: int, share) -> None:
                client = GatewayClient(
                    "127.0.0.1", gateway.port, key=keys[ci % len(keys)]
                )
                sent: dict[int, tuple[int, float]] = {}

                def read() -> None:
                    for _ in range(len(share)):
                        wire = client.result()
                        done = time.perf_counter()
                        index, t0 = sent[wire.id]
                        results[index] = wire
                        latencies[index] = done - t0
                reader = threading.Thread(target=read, name=f"gwbench-read-{ci}")
                barrier.wait()
                reader.start()
                arrivals = open_loop_arrivals(
                    [request for _, request in share],
                    rate / clients,
                    seed=seed + 101 * ci,
                )
                next_id = 1
                for (index, _), (delay, request) in zip(share, arrivals):
                    time.sleep(delay)
                    # Register before sending: the reader may see the
                    # response before submit() returns.
                    sent[next_id] = (index, time.perf_counter())
                    client.submit(request, id=next_id)
                    next_id += 1
                reader.join()
                client.close()

            threads = [
                threading.Thread(
                    target=drive, args=(ci, shares[ci]), name=f"gwbench-send-{ci}"
                )
                for ci in range(clients)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            start = time.perf_counter()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start
        finally:
            gateway.close()
    tenant_requests = {
        dict(series.labels)["tenant"]: series.value
        for series in registry.collect(kind="counter", prefix="gateway.requests")
        if dict(series.labels).get("outcome") == "ok"
    }
    return _Side(
        latencies=[lat for lat, r in zip(latencies, results) if r is not None and r.ok],
        wall_seconds=wall,
        rejected=sum(1 for r in results if r is None or not r.ok),
        results=list(results),
        tenant_requests=tenant_requests,
        bytes_in=sum(
            s.value for s in registry.collect(kind="counter", prefix="gateway.bytes_in")
        ),
        bytes_out=sum(
            s.value for s in registry.collect(kind="counter", prefix="gateway.bytes_out")
        ),
    )


def _side_row(label: str, side: _Side) -> dict:
    return {
        "path": label,
        "req/s": f"{side.rps:.0f}",
        "p50 ms": f"{side.p(50) * 1e3:.2f}",
        "p95 ms": f"{side.p(95) * 1e3:.2f}",
        "p99 ms": f"{side.p(99) * 1e3:.2f}",
        "rejected": side.rejected,
    }


def gateway_throughput_bench(
    n: int = 60_000,
    requests: int = 1000,
    rate: float = 250.0,
    clients: int = 8,
    workers: int = 8,
    n_preferences: int = 64,
    zipf_s: float = 0.9,
    rounds: int = 2,
    seed: int = 7,
    verify: bool = False,
    pool_capacity: int | None = None,
) -> GatewayBenchResult:
    """Socket-vs-in-process open-loop comparison; see module docstring."""
    if pool_capacity is None:
        pool_capacity = n_preferences
    dataset = independent_uniform(n, 2, seed=seed)
    spec = WorkloadSpec(
        n_preferences=n_preferences,
        d=2,
        zipf_s=zipf_s,
        k_choices=(5, 10),
        tau_fractions=(0.05, 0.10),
        interval_fractions=(0.02, 0.05),
        algorithms=("t-hop",),
        seed=seed,
    )
    stream = WorkloadGenerator(spec, dataset.n).requests(requests)

    # One untimed in-process round so allocator/CPU warmup is not
    # attributed to whichever side happens to run first.
    _run_inproc(dataset, stream, rate, workers, pool_capacity, seed)

    inproc_rounds: list[_Side] = []
    socket_rounds: list[_Side] = []
    for r in range(max(1, rounds)):
        inproc_rounds.append(
            _run_inproc(dataset, stream, rate, workers, pool_capacity, seed + r)
        )
        socket_rounds.append(
            _run_socket(
                dataset, stream, rate, clients, workers, pool_capacity, seed + r
            )
        )
    # The wire price is paired per round: each interleaved round ran
    # both sides back-to-back under the same machine conditions, so the
    # per-round ratio cancels scheduler drift. Picking each side's best
    # round *independently* would compare a lucky in-process round
    # against an ordinary socket round and report noise as wire cost.
    best_round = min(
        range(len(socket_rounds)),
        key=lambda i: (
            socket_rounds[i].p(95) / inproc_rounds[i].p(95)
            if inproc_rounds[i].p(95) > 0
            else float("inf")
        ),
    )
    inproc_best = inproc_rounds[best_round]
    socket_best = socket_rounds[best_round]

    rejected = socket_best.rejected + inproc_best.rejected
    incorrect = 0
    verified = None
    if verify:
        verified = 0
        reference = DurableTopKEngine(dataset)
        for request, wire in zip(stream, socket_best.results):
            if wire is None or not wire.ok:
                continue
            expected = reference.query(
                request.as_query(), request.scorer, algorithm=request.algorithm
            )
            if wire.identical_to(expected):
                verified += 1
            else:
                incorrect += 1

    ratio = (
        socket_best.p(95) / inproc_best.p(95) if inproc_best.p(95) > 0 else float("inf")
    )
    tenants = "  ".join(
        f"{name}={count:.0f}" for name, count in sorted(socket_best.tenant_requests.items())
    )
    header = (
        f"gateway throughput: open-loop Poisson at {rate:.0f} req/s offered, "
        f"{requests} requests, {clients} socket clients, {workers} workers, "
        f"best paired round of {max(1, rounds)} interleaved round(s)\n"
        f"workload: n={n} d=2, {n_preferences} preferences (zipf s={zipf_s}), "
        f"t-hop, tau~{spec.tau_fractions}, |I|~{spec.interval_fractions}\n"
        f"wire: length-prefixed JSON over localhost TCP, per-request hashed-key "
        f"auth, 2 tenants ({tenants})"
    )
    rows = [
        _side_row("in-process", inproc_best),
        _side_row("socket", socket_best),
    ]
    lines = [
        header,
        format_table(rows),
        f"wire p95 price (socket/in-process): {ratio:.2f}x (SLO <= {SLO_P95_RATIO}x)   "
        f"bytes in/out: {socket_best.bytes_in / 1024:.1f}/"
        f"{socket_best.bytes_out / 1024:.1f} KiB   "
        f"incorrect: {incorrect}   rejected: {rejected}",
    ]
    if verified is not None:
        lines.append(
            f"socket re-derivation: {verified}/{requests} byte-identical on a "
            f"fresh engine"
        )
    report = "\n".join(lines)
    return GatewayBenchResult(
        name="gateway_throughput",
        report=report,
        data={
            "inproc": {
                "rps": round(inproc_best.rps, 1),
                "p50_ms": round(inproc_best.p(50) * 1e3, 3),
                "p95_ms": round(inproc_best.p(95) * 1e3, 3),
                "p99_ms": round(inproc_best.p(99) * 1e3, 3),
                "rejected": inproc_best.rejected,
            },
            "socket": {
                "rps": round(socket_best.rps, 1),
                "p50_ms": round(socket_best.p(50) * 1e3, 3),
                "p95_ms": round(socket_best.p(95) * 1e3, 3),
                "p99_ms": round(socket_best.p(99) * 1e3, 3),
                "rejected": socket_best.rejected,
                "bytes_in": socket_best.bytes_in,
                "bytes_out": socket_best.bytes_out,
                "tenants": socket_best.tenant_requests,
            },
            "p95_ratio": round(ratio, 3),
            "slo_p95_ratio": SLO_P95_RATIO,
            "incorrect": incorrect,
            "rejected": rejected,
            "verified": verified,
            "requests": requests,
            "rate": rate,
            "clients": clients,
            "workers": workers,
        },
        metrics=[
            BenchMetric(
                "gateway_rps", round(socket_best.rps, 1), "req/s", "higher", 0.25
            ),
            BenchMetric(
                "gateway_p95_ms",
                round(socket_best.p(95) * 1e3, 3),
                "ms",
                "lower",
                0.40,
            ),
            BenchMetric(
                "inproc_p95_ms",
                round(inproc_best.p(95) * 1e3, 3),
                "ms",
                "lower",
                0.40,
            ),
            # The wire price is a same-machine ratio: it survives a
            # machine change and gates everywhere. Sub-ms paths jitter,
            # hence the wide band; the hard SLO_P95_RATIO ceiling in
            # --smoke is the real backstop.
            BenchMetric(
                "p95_ratio", round(ratio, 3), "x", "lower", 0.60, portable=True
            ),
            BenchMetric("incorrect", incorrect, "", "lower", 0.0, portable=True),
            BenchMetric(
                "rejected", rejected, "", "lower", 0.0, abs_noise=5, portable=True
            ),
        ],
    )
