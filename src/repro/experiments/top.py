"""``repro top`` — a live terminal dashboard over the observability stack.

The observatory's human face: one refreshing ANSI frame that polls the
service's :class:`~repro.service.metrics.MetricsCollector` snapshot, the
process-wide :func:`~repro.obs.global_registry` (WAL fsyncs, segment
counts, seals/compactions, pool evictions, shard worker restarts) and
the :data:`~repro.obs.TRACES` slowest-N buffer — the same sources the
Prometheus export reads, rendered for a terminal instead of a scraper.

Counter *rates* (WAL fsyncs/s, seals/s) are frame-over-frame deltas, so
the :class:`Dashboard` keeps the previous readings; everything else is
point-in-time. :func:`Dashboard.frame` is a pure string — the render
smoke test and the non-tty ``--once`` mode print it without touching
the terminal, while the live loop repaints it with an ANSI home+clear.

The CLI drives a self-contained demo serving stack (a
:class:`~repro.ingest.live.LiveDataset` behind the pooled service, with
background writers and query clients) so the dashboard always has a
live system to watch; point :class:`Dashboard` at your own collector to
watch a real one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import numpy as np

from repro.obs import TRACES, MetricsRegistry, enable, disable, global_registry
from repro.obs.slo import SLOMonitor
from repro.service import (
    DurableTopKService,
    LiveBackend,
    MetricsCollector,
    WorkloadGenerator,
    WorkloadSpec,
)

__all__ = ["Dashboard", "run_top"]

#: ANSI: cursor home + clear-to-end-of-screen (repaint without scrollback
#: spam; full 2J clears cause visible flicker on slow terminals).
_REPAINT = "\x1b[H\x1b[J"


def _fmt_labels(labels) -> str:
    return ",".join(f"{k}={v}" for k, v in labels)


class Dashboard:
    """Renders one observability frame; remembers counters for rates."""

    def __init__(
        self,
        collector: MetricsCollector,
        registry: MetricsRegistry | None = None,
        traces=TRACES,
        clock=time.perf_counter,
    ) -> None:
        self.collector = collector
        self.registry = registry if registry is not None else global_registry()
        self.traces = traces
        self._clock = clock
        self._started = clock()
        self._last_time = self._started
        self._last_counts: dict[str, float] = {}

    def _counter_total(self, prefix: str) -> float:
        return sum(
            series.value for series in self.registry.collect(kind="counter", prefix=prefix)
        )

    def _gauge_total(self, prefix: str) -> float:
        return sum(
            series.value for series in self.registry.collect(kind="gauge", prefix=prefix)
        )

    def _rate(self, name: str, total: float, dt: float) -> float:
        prev = self._last_counts.get(name, total)
        self._last_counts[name] = total
        return (total - prev) / dt if dt > 0 else 0.0

    def frame(self, width: int = 78) -> str:
        """One dashboard frame as plain text (no cursor control)."""
        now = self._clock()
        dt = now - self._last_time
        self._last_time = now
        snap = self.collector.snapshot()

        # Frame-over-frame, not the collector's lifetime average: the
        # lifetime figure decays instead of dropping when traffic stops,
        # so an idle system would keep showing the previous load forever.
        req_rate = self._rate("service.completed", float(snap.completed), dt)
        wal_rate = self._rate("wal.fsyncs", self._counter_total("wal.fsyncs"), dt)
        seal_rate = self._rate("ingest.seals", self._counter_total("ingest.seals"), dt)
        segments = self._gauge_total("ingest.segments")
        compactions = self._counter_total("ingest.compactions")
        evictions = self._counter_total("service.pool.evictions")
        restarts = self._counter_total("shard.worker.restarts")
        revivals = self._counter_total("shard.worker.revivals")

        title = "repro top — durable top-k observatory"
        uptime = f"uptime {now - self._started:7.1f}s"
        lines = [
            f"{title}{' ' * max(1, width - len(title) - len(uptime))}{uptime}",
            "─" * width,
            f"requests   {snap.completed} ok / {snap.rejected_total} rejected"
            f"   throughput {req_rate:8.1f} req/s"
            f"   queued wait p95 {snap.wait_p95 * 1e3:6.2f} ms",
            f"latency ms p50 {snap.latency_p50 * 1e3:7.2f}"
            f"   p95 {snap.latency_p95 * 1e3:7.2f}"
            f"   p99 {snap.latency_p99 * 1e3:7.2f}"
            f"   mean {snap.latency_mean * 1e3:7.2f}",
            f"batching   mean size {snap.mean_batch_size:5.2f}"
            f"   coalesced {snap.coalesced}"
            f"   pool hit {snap.pool_hit_rate:6.1%}   evictions {evictions:.0f}",
        ]
        tiers: dict[str, float] = {}
        for series in self.registry.collect(kind="counter", prefix="cache.lookups"):
            tier = dict(series.labels).get("tier", "?")
            tiers[tier] = tiers.get(tier, 0.0) + series.value
        lookups = sum(tiers.values())
        # Rate bookkeeping runs every frame, rendered or not: otherwise
        # the frame a row first appears would report a delta accumulated
        # over many frames as if it happened in one.
        seed_rate = self._rate(
            "cache.window_seeds", self._counter_total("cache.window_seeds"), dt
        )
        if lookups:
            hits = tiers.get("exact", 0.0)
            resident = self._gauge_total("cache.bytes")
            lines.append(
                f"cache      hit {hits / lookups:6.1%} ({hits:.0f}/{lookups:.0f})"
                f"   seeds {seed_rate:6.1f}/s"
                f"   resident {resident / 1024:7.1f} KiB"
            )
        gw_ok = gw_rejected = 0.0
        for series in self.registry.collect(kind="counter", prefix="gateway.requests"):
            if dict(series.labels).get("outcome") == "ok":
                gw_ok += series.value
            else:
                gw_rejected += series.value
        gw_conns_total = self._counter_total("gateway.connections_total")
        gw_ok_rate = self._rate("gateway.ok", gw_ok, dt)
        gw_rejected_rate = self._rate("gateway.rejected", gw_rejected, dt)
        gw_in_rate = self._rate("gateway.bytes_in", self._counter_total("gateway.bytes_in"), dt)
        gw_out_rate = self._rate(
            "gateway.bytes_out", self._counter_total("gateway.bytes_out"), dt
        )
        if gw_conns_total:
            lines.append(
                f"gateway    conns {self._gauge_total('gateway.connections'):.0f}"
                f"   ok {gw_ok_rate:6.1f}/s   rejected {gw_rejected_rate:6.1f}/s"
                f"   in/out {gw_in_rate / 1024:6.1f}/{gw_out_rate / 1024:6.1f} KiB/s"
            )
        if snap.fanout:
            shares = "  ".join(
                f"s{shard}={count}" for shard, count in sorted(snap.shard_queries.items())
            )
            lines.append(
                f"fanout     mean {snap.mean_fanout:5.2f}   shares: {shares}"
            )
        lines.append(
            f"ingest     segments {segments:.0f}   seals {seal_rate:6.1f}/s"
            f"   compactions {compactions:.0f}   wal fsync {wal_rate:6.1f}/s"
        )
        if restarts or revivals:
            lines.append(
                f"workers    restarts {restarts:.0f} ({revivals:.0f} health-check revivals)"
            )
        for name, status in sorted(snap.slo.items()):
            state = "BURNING" if status["burning"] else "ok     "
            lines.append(
                f"slo        {name:<11} {state}"
                f" burn fast {status['fast_burn_rate']:6.2f} / slow "
                f"{status['slow_burn_rate']:6.2f}"
                f"   bad {status['bad']}/{status['events']}"
            )
        slowest = self.traces.slowest(1)
        if slowest and slowest[0].root is not None:
            trace = slowest[0]
            root = trace.root
            attrs = ", ".join(f"{k}={v}" for k, v in sorted(root.attrs.items()))
            line = (
                f"slowest    {root.name} {trace.duration * 1e3:.1f} ms · "
                f"{len(trace.spans)} spans · {attrs}"
            )
            lines.append(line[:width])
        else:
            lines.append("slowest    (no traces retained — tracing off or idle)")
        lines.append("─" * width)
        return "\n".join(lines)


def run_top(
    duration: float = 30.0,
    interval: float = 1.0,
    once: bool = False,
    n0: int = 8_000,
    clients: int = 2,
    workers: int = 2,
    writers: int = 1,
    n_preferences: int = 12,
    request_rate: float = 200.0,
    seed: int = 7,
    out=None,
) -> str:
    """Drive the demo serving stack and repaint the dashboard until *duration*.

    ``once`` renders exactly one frame after a short settle (the non-tty
    smoke mode: no ANSI codes, returns after ~one interval). Returns the
    final frame so callers/tests can assert on it. ``out`` defaults to
    ``sys.stdout``.
    """
    import sys

    out = out if out is not None else sys.stdout
    rng = np.random.default_rng(seed)
    d = 2

    from repro.ingest.live import LiveDataset

    live = LiveDataset(d, seal_rows=2048, name="top-demo")
    live.extend(rng.random((n0, d)))
    live.seal()
    live.start_maintenance()

    spec = WorkloadSpec(
        n_preferences=n_preferences,
        d=d,
        zipf_s=0.9,
        k_choices=(5, 10),
        tau_fractions=(0.05, 0.10),
        interval_fractions=(0.02, 0.05),
        algorithms=("t-hop",),
        # Shape catalogues give the demo verbatim query repetition, so
        # the dashboard's cache row shows real exact-tier traffic (the
        # background writers keep advancing the epoch, so it never
        # degenerates to 100% either).
        shapes_per_preference=6,
        shape_zipf_s=1.2,
        seed=seed,
    )
    from repro.cache import SemanticAnswerCache

    collector = MetricsCollector(slos=SLOMonitor())
    stop = threading.Event()

    TRACES.clear()
    enable()  # the dashboard's slowest-trace row needs live capture
    try:
        with DurableTopKService(
            LiveBackend(live),
            workers=workers,
            max_queue=4096,
            max_batch=16,
            pool_capacity=n_preferences,
            metrics=collector,
            cache=SemanticAnswerCache(),
        ) as service:

            def client(c: int) -> None:
                # Each client owns a generator (they are stateful), with
                # its own seed so clients do not mirror each other.
                generator = WorkloadGenerator(replace(spec, seed=seed + c), n0)
                pace = clients / max(request_rate, 1.0)
                due = time.perf_counter()
                while not stop.is_set():
                    batch = generator.requests(8)
                    futures = [service.submit(request) for request in batch]
                    for future in futures:
                        future.result()
                    due += pace * len(batch)
                    delay = due - time.perf_counter()
                    if delay > 0:
                        stop.wait(delay)

            def writer(w: int) -> None:
                # Every extend advances the dataset epoch and makes the
                # answer cache's filled entries unreachable; batch the
                # demo's appends into ~2 epochs/s so the cache row shows
                # exact-tier hits between advances instead of a cache
                # that can never catch up to the version counter.
                wrng = np.random.default_rng(seed + 500 + w)
                while not stop.is_set():
                    live.extend(wrng.random((640, d)))
                    stop.wait(0.5)

            threads = [
                threading.Thread(target=client, args=(c,), name=f"top-client-{c}")
                for c in range(clients)
            ] + [
                threading.Thread(target=writer, args=(w,), name=f"top-writer-{w}")
                for w in range(writers)
            ]
            for thread in threads:
                thread.start()

            dashboard = Dashboard(collector)
            frame = ""
            try:
                deadline = time.perf_counter() + (interval if once else duration)
                while True:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    time.sleep(min(interval, max(remaining, 0.01)))
                    frame = dashboard.frame()
                    if once:
                        break
                    out.write(_REPAINT + frame + "\n")
                    out.flush()
                if once:
                    out.write(frame + "\n")
                    out.flush()
            except KeyboardInterrupt:  # pragma: no cover - interactive exit
                pass
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
    finally:
        disable()
        live.close()
    return frame
