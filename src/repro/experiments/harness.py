"""Measurement harness shared by every figure/table benchmark.

Section VI runs each query configuration with 100 randomly generated
preference vectors and reports mean and standard deviation of query time
and of the number of top-k queries. This harness does the same (the vector
count is configurable; benchmarks default to fewer for wall-time reasons)
and additionally cross-checks that all algorithms return identical answers
— every benchmark run is therefore also an integration test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import mean, stdev

import numpy as np

from repro.core.engine import DurableTopKEngine
from repro.core.query import DurableTopKQuery
from repro.core.record import Dataset
from repro.scoring import LinearPreference, random_preference

__all__ = [
    "default_parameters",
    "AlgorithmRow",
    "SweepResult",
    "run_algorithm_suite",
    "run_sweep",
]

#: All five algorithms, slowest first (the order the paper's legends use).
ALL_ALGORITHMS = ["t-base", "s-base", "t-hop", "s-band", "s-hop"]


def default_parameters(n: int) -> dict:
    """The paper's default query setting (Table III), scaled to ``n``.

    Defaults: ``k = 10``, ``tau = 10%`` of the time domain, ``|I| = 50%``
    anchored at the most recent timestamp.
    """
    tau = max(1, n // 10)
    interval_length = max(1, n // 2)
    return {
        "k": 10,
        "tau": tau,
        "interval": (n - interval_length, n - 1),
    }


@dataclass
class AlgorithmRow:
    """Aggregated measurements of one algorithm at one parameter setting."""

    algorithm: str
    mean_ms: float
    std_ms: float
    mean_topk_queries: float
    mean_durability_queries: float
    mean_candidate_queries: float
    mean_candidate_set: float
    mean_answer_size: float
    runs: int

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "mean_ms": round(self.mean_ms, 3),
            "std_ms": round(self.std_ms, 3),
            "topk_queries": round(self.mean_topk_queries, 1),
            "durability_queries": round(self.mean_durability_queries, 1),
            "candidate_queries": round(self.mean_candidate_queries, 1),
            "candidate_set": round(self.mean_candidate_set, 1),
            "answer_size": round(self.mean_answer_size, 1),
        }


@dataclass
class SweepResult:
    """One parameter sweep: ``rows[param_value][algorithm] -> AlgorithmRow``."""

    parameter: str
    dataset: str
    rows: dict = field(default_factory=dict)

    def series(self, metric: str = "mean_ms") -> dict[str, list[float]]:
        """Per-algorithm metric series across the sweep (plot-ready)."""
        out: dict[str, list[float]] = {}
        for value in self.rows:
            for algo, row in self.rows[value].items():
                out.setdefault(algo, []).append(getattr(row, metric))
        return out

    def parameter_values(self) -> list:
        return list(self.rows)


def run_algorithm_suite(
    dataset: Dataset,
    algorithms: list[str] | None = None,
    k: int = 10,
    tau: int | None = None,
    interval: tuple[int, int] | None = None,
    n_preferences: int = 10,
    seed: int = 0,
    engine: DurableTopKEngine | None = None,
    check_agreement: bool = True,
) -> dict[str, AlgorithmRow]:
    """Measure every requested algorithm on one query configuration.

    Each preference vector produces one timed run per algorithm; rows
    aggregate over vectors. With ``check_agreement`` (default) a mismatch
    between any two algorithms' answers raises immediately.
    """
    algorithms = algorithms or ALL_ALGORITHMS
    params = default_parameters(dataset.n)
    tau = tau if tau is not None else params["tau"]
    interval = interval if interval is not None else params["interval"]
    engine = engine or DurableTopKEngine(dataset, skyband_k_max=_skyband_k(algorithms, k))
    engine.prepare(algorithms)
    query = DurableTopKQuery(k=k, tau=tau, interval=interval)
    rng = np.random.default_rng(seed)

    samples: dict[str, dict[str, list[float]]] = {
        a: {"ms": [], "topk": [], "dur": [], "cand": [], "cset": [], "answer": []}
        for a in algorithms
    }
    for _ in range(n_preferences):
        scorer = LinearPreference(random_preference(rng, dataset.d))
        reference_ids: list[int] | None = None
        for name in algorithms:
            start = time.perf_counter()
            result = engine.query(query, scorer, algorithm=name)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            if check_agreement:
                if reference_ids is None:
                    reference_ids = result.ids
                elif result.ids != reference_ids:
                    raise AssertionError(
                        f"algorithm disagreement on {dataset.name}: {name} returned "
                        f"{len(result.ids)} ids, expected {len(reference_ids)}"
                    )
            bucket = samples[name]
            bucket["ms"].append(elapsed_ms)
            bucket["topk"].append(result.stats.topk_queries)
            bucket["dur"].append(result.stats.durability_topk_queries)
            bucket["cand"].append(result.stats.candidate_topk_queries)
            bucket["cset"].append(result.stats.candidate_set_size)
            bucket["answer"].append(len(result.ids))

    rows: dict[str, AlgorithmRow] = {}
    for name, bucket in samples.items():
        rows[name] = AlgorithmRow(
            algorithm=name,
            mean_ms=mean(bucket["ms"]),
            std_ms=stdev(bucket["ms"]) if len(bucket["ms"]) > 1 else 0.0,
            mean_topk_queries=mean(bucket["topk"]),
            mean_durability_queries=mean(bucket["dur"]),
            mean_candidate_queries=mean(bucket["cand"]),
            mean_candidate_set=mean(bucket["cset"]),
            mean_answer_size=mean(bucket["answer"]),
            runs=n_preferences,
        )
    return rows


def run_sweep(
    dataset: Dataset,
    parameter: str,
    values: list,
    algorithms: list[str] | None = None,
    n_preferences: int = 5,
    seed: int = 0,
    base_k: int = 10,
    base_tau_fraction: float = 0.10,
    base_interval_fraction: float = 0.50,
) -> SweepResult:
    """Sweep one query parameter, fixing the others at paper defaults.

    ``parameter`` is one of ``"tau_fraction"``, ``"k"``,
    ``"interval_fraction"``. Fractions are of the dataset size, as in
    Table III.
    """
    if parameter not in ("tau_fraction", "k", "interval_fraction"):
        raise ValueError(f"unknown sweep parameter {parameter!r}")
    algorithms = algorithms or ALL_ALGORITHMS
    n = dataset.n
    engine = DurableTopKEngine(
        dataset,
        skyband_k_max=_skyband_k(algorithms, max(values) if parameter == "k" else base_k),
    )
    sweep = SweepResult(parameter=parameter, dataset=dataset.name)
    for value in values:
        k = base_k
        tau = max(1, int(n * base_tau_fraction))
        interval_length = max(1, int(n * base_interval_fraction))
        if parameter == "k":
            k = int(value)
        elif parameter == "tau_fraction":
            tau = max(1, int(n * value))
        else:
            interval_length = max(1, int(n * value))
        interval = (n - interval_length, n - 1)
        sweep.rows[value] = run_algorithm_suite(
            dataset,
            algorithms=algorithms,
            k=k,
            tau=tau,
            interval=interval,
            n_preferences=n_preferences,
            seed=seed,
            engine=engine,
        )
    return sweep


def _skyband_k(algorithms: list[str], k: int) -> int | None:
    """S-Band needs the offline index; skip building it otherwise.

    The index rounds up to the next power of two internally, giving the
    paper's ``k <= k_bar <= 2k`` level selection.
    """
    return max(k, 2) if "s-band" in algorithms else None
