"""The service throughput benchmark (and its CLI/CI entry point).

Compares two ways of putting the in-memory engine behind many clients:

* **naive** — :class:`~repro.service.service.LockedEngineService`: one
  global lock around a bare engine, driven closed-loop (a blocking call
  is the only way to talk to a lock). Every request serialises, and any
  preference evicted from the engine's small index LRU pays its rebuild
  under the lock.
* **pooled** — :class:`~repro.service.service.DurableTopKService`: the
  session-pooled, batching, admission-controlled serving layer, driven
  pipelined (clients submit their share up front and collect responses;
  see :func:`~repro.service.workload.run_pipelined`) — the mode a
  queueing service exists to support and a bare lock cannot offer.

Both sides serve the *same* Zipfian request stream with the same number
of client threads. On a single core the speedup is pure avoided work:
the pool builds each preference-bound index once, while the naive LRU
(8 entries against a much larger preference catalogue) rebuilds hot-ish
preferences over and over. Timing runs are interleaved naive/pooled and
the best round of each side is compared, which cancels warmup drift.

``verify=True`` additionally replays every request serially through a
fresh engine and checks the concurrent answers are identical — the mode
the CI smoke job runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.engine import DurableTopKEngine
from repro.data import independent_uniform
from repro.experiments.report import format_table
from repro.experiments.resultstore import BenchMetric
from repro.service import (
    DurableTopKService,
    EngineBackend,
    LockedEngineService,
    MetricsSnapshot,
    WorkloadGenerator,
    WorkloadSpec,
    run_closed_loop,
    run_pipelined,
)

__all__ = ["ServiceBenchResult", "service_throughput_bench", "SMOKE_DEFAULTS"]

#: Scaled-down parameters for the CI smoke run (seconds, not minutes).
SMOKE_DEFAULTS = {
    "n": 6_000,
    "requests": 200,
    "clients": 4,
    "workers": 4,
    "n_preferences": 24,
    "rounds": 1,
}


@dataclass
class ServiceBenchResult:
    """Report text plus raw numbers (mirrors ``FigureResult``).

    ``metrics`` is the bench's structured telemetry: the
    :class:`~repro.experiments.resultstore.BenchMetric` list the CLI and
    benchmark suite persist as ``BENCH_<name>.json`` for
    ``repro perf-report`` / ``perf-gate`` to diff.
    """

    name: str
    report: str
    data: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.report


@dataclass
class _Round:
    """One timed drive of one serving strategy."""

    snapshot: MetricsSnapshot
    responses: list
    wall_seconds: float

    @property
    def rps(self) -> float:
        return len(self.responses) / self.wall_seconds


def _run_naive(dataset, stream, clients: int) -> _Round:
    service = LockedEngineService(DurableTopKEngine(dataset))
    start = time.perf_counter()
    responses = run_closed_loop(service.query, stream, clients=clients)
    wall = time.perf_counter() - start
    snapshot = service.metrics.snapshot()
    service.close()
    return _Round(snapshot, responses, wall)


def _run_pooled(
    dataset, stream, clients: int, workers: int, pool_capacity: int
) -> tuple[_Round, dict]:
    with DurableTopKService(
        EngineBackend(DurableTopKEngine(dataset)),
        workers=workers,
        max_queue=max(4096, 4 * len(stream)),
        max_batch=32,
        pool_capacity=pool_capacity,
    ) as service:
        start = time.perf_counter()
        responses = run_pipelined(service.submit, stream, clients=clients)
        wall = time.perf_counter() - start
        snapshot = service.metrics.snapshot()
        pool_stats = service.pool.stats()
    return _Round(snapshot, responses, wall), pool_stats


def _side_row(label: str, best: _Round, pool_hit: float | None) -> dict:
    snap = best.snapshot
    return {
        "service": label,
        "req/s": f"{best.rps:.0f}",
        "p50 ms": f"{snap.latency_p50 * 1e3:.2f}",
        "p95 ms": f"{snap.latency_p95 * 1e3:.2f}",
        "p99 ms": f"{snap.latency_p99 * 1e3:.2f}",
        "rejected": snap.rejected_total,
        "pool hit": "-" if pool_hit is None else f"{pool_hit:.0%}",
        "batch": f"{snap.mean_batch_size:.2f}" if snap.batches else "-",
    }


def service_throughput_bench(
    n: int = 80_000,
    requests: int = 1200,
    clients: int = 8,
    workers: int = 8,
    n_preferences: int = 128,
    zipf_s: float = 0.9,
    rounds: int = 2,
    seed: int = 7,
    verify: bool = False,
    pool_capacity: int | None = None,
) -> ServiceBenchResult:
    """Run naive-vs-pooled under one workload; see module docstring.

    The workload keeps queries cheap relative to index builds (selective
    ``tau``, small intervals over a large dataset), the regime where the
    serving strategy — not raw query cost — decides throughput. One
    untimed pooled round runs first so allocator/CPU warmup is not
    attributed to either side. ``pool_capacity=None`` sizes the session
    pool to the preference catalogue.
    """
    if pool_capacity is None:
        pool_capacity = n_preferences
    dataset = independent_uniform(n, 2, seed=seed)
    spec = WorkloadSpec(
        n_preferences=n_preferences,
        d=2,
        zipf_s=zipf_s,
        k_choices=(5, 10),
        tau_fractions=(0.05, 0.10),
        interval_fractions=(0.02, 0.05),
        algorithms=("t-hop",),
        seed=seed,
    )
    generator = WorkloadGenerator(spec, dataset.n)
    stream = generator.requests(requests)

    _run_pooled(dataset, stream, clients, workers, pool_capacity)  # warmup

    naive_rounds: list[_Round] = []
    pooled_rounds: list[tuple[_Round, dict]] = []
    for _ in range(max(1, rounds)):
        naive_rounds.append(_run_naive(dataset, stream, clients))
        pooled_rounds.append(
            _run_pooled(dataset, stream, clients, workers, pool_capacity)
        )
    naive_best = max(naive_rounds, key=lambda r: r.rps)
    pooled_best, pool_stats = max(pooled_rounds, key=lambda rp: rp[0].rps)

    incorrect = sum(
        1
        for a, b in zip(naive_best.responses, pooled_best.responses)
        if not (a.ok and b.ok and a.result.ids == b.result.ids)
    )
    rejected = sum(1 for r in pooled_best.responses if not r.ok)
    verified = None
    if verify:
        verified = 0
        reference = DurableTopKEngine(dataset)
        for request, response in zip(stream, pooled_best.responses):
            expected = reference.query(
                request.as_query(), request.scorer, request.algorithm
            )
            if response.ok and response.result.ids == expected.ids:
                verified += 1

    speedup = pooled_best.rps / naive_best.rps if naive_best.rps else float("inf")
    header = (
        f"service throughput: {clients} clients, {workers} workers, "
        f"{requests} requests, best of {max(1, rounds)} interleaved round(s)\n"
        f"workload: n={n} d=2, {n_preferences} preferences (zipf s={zipf_s}), "
        f"t-hop, tau~{spec.tau_fractions}, |I|~{spec.interval_fractions}\n"
        f"drivers: naive=closed-loop (blocking lock), "
        f"pooled=pipelined submit/collect"
    )
    rows = [
        _side_row("naive-locked", naive_best, None),
        _side_row("session-pooled", pooled_best, pooled_best.snapshot.pool_hit_rate),
    ]
    lines = [
        header,
        format_table(rows),
        f"speedup (pooled/naive): {speedup:.2f}x   "
        f"incorrect: {incorrect}   rejected: {rejected}",
    ]
    if verified is not None:
        lines.append(f"serial verification: {verified}/{requests} identical")
    report = "\n".join(lines)
    return ServiceBenchResult(
        name="service_throughput",
        report=report,
        data={
            "naive": {
                **naive_best.snapshot.as_dict(),
                "wall_seconds": round(naive_best.wall_seconds, 3),
                "rps": round(naive_best.rps, 1),
            },
            "pooled": {
                **pooled_best.snapshot.as_dict(),
                "wall_seconds": round(pooled_best.wall_seconds, 3),
                "rps": round(pooled_best.rps, 1),
            },
            "pool": pool_stats,
            "speedup": round(speedup, 3),
            "incorrect": incorrect,
            "rejected": rejected,
            "verified": verified,
            "clients": clients,
            "workers": workers,
            "requests": requests,
        },
        metrics=[
            BenchMetric("pooled_rps", round(pooled_best.rps, 1), "req/s", "higher", 0.25),
            BenchMetric("naive_rps", round(naive_best.rps, 1), "req/s", "higher", 0.25),
            # The speedup is a same-machine ratio, so it survives a
            # machine change and gates everywhere.
            BenchMetric("speedup", round(speedup, 3), "x", "higher", 0.30, portable=True),
            BenchMetric(
                "pooled_p95_ms",
                round(pooled_best.snapshot.latency_p95 * 1e3, 3),
                "ms",
                "lower",
                0.35,
            ),
            BenchMetric("incorrect", incorrect, "", "lower", 0.0, portable=True),
            BenchMetric("rejected", rejected, "", "lower", 0.0, abs_noise=5, portable=True),
        ],
    )
