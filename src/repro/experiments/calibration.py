"""Measuring machine constants for the cost-based planner.

The planner's :class:`~repro.core.planner.CostModel` ships with defaults
calibrated on one machine. This module re-measures the two ratios that
matter on *your* machine — the cost of one top-k building-block query
versus one sequential per-record step, and per-record sort cost — by
running micro-benchmarks on a provided (or synthetic) dataset.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.planner import CostModel
from repro.core.record import Dataset
from repro.index.range_topk import ScoreArrayTopKIndex

__all__ = ["calibrate_cost_model"]


def _time_per_call(fn, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def calibrate_cost_model(
    dataset: Dataset | None = None,
    k: int = 10,
    repeats: int = 200,
    seed: int = 0,
) -> CostModel:
    """Measure a :class:`CostModel` from micro-benchmarks.

    Parameters
    ----------
    dataset:
        Workload to calibrate on (default: 20k IND records, 2-D).
    k:
        Representative top-k parameter.
    repeats:
        Micro-benchmark repetitions per primitive.

    The returned model preserves the planner's contract: only ratios
    matter, and ``per_record`` is normalised to 1.
    """
    if dataset is None:
        rng = np.random.default_rng(seed)
        dataset = Dataset(rng.random((20_000, 2)), name="calibration")
    rng = np.random.default_rng(seed)
    scores = dataset.values @ (rng.random(dataset.d) + 0.01)
    index = ScoreArrayTopKIndex(scores)
    n = dataset.n

    # Primitive 1: one top-k query on a random tau-sized window.
    windows = rng.integers(0, max(1, n - n // 10), size=repeats)

    def one_topk():
        lo = int(windows[one_topk.i % repeats])
        one_topk.i += 1
        index.topk(k, lo, lo + n // 10)

    one_topk.i = 0
    topk_s = _time_per_call(one_topk, repeats)

    # Primitive 2: one per-record step (score lookup + compare + append),
    # the body of T-Base's slide loop.
    sink: list[float] = []

    def per_record():
        i = per_record.i % n
        per_record.i += 1
        s = index.score(i)
        if s > 0.5:
            sink.append(s)
        if len(sink) > 64:
            sink.clear()

    per_record.i = 0
    record_s = _time_per_call(per_record, repeats * 50)

    # Primitive 3: per-record cost inside a large sort.
    block = min(n, 8_192)

    def one_sort():
        ids = np.arange(block)
        np.lexsort((ids, scores[:block]))

    sort_s = _time_per_call(one_sort, max(1, repeats // 20)) / block

    per_record_unit = max(record_s, 1e-9)
    return CostModel(
        topk_query=topk_s / per_record_unit,
        per_record=1.0,
        per_candidate=3.0,
        sort_per_record=max(sort_s / per_record_unit, 0.1),
    )
