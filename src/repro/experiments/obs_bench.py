"""The observability overhead benchmark (and its CLI/CI entry point).

Instrumentation that distorts the system it watches is worse than no
instrumentation, so this bench puts a number on both modes of
:mod:`repro.obs`:

* **disabled** (the default everywhere): every ``trace_span`` call site
  collapses to one module-global boolean check and a shared no-op
  context manager. The bench times that fast path directly (a tight
  no-op span loop), counts how many span call sites one request
  actually crosses, and derives a *worst-case* throughput overhead as
  if every call sat on the critical path. The CI smoke gate asserts
  this bound stays under 3% of per-request wall time.
* **enabled**: full span capture, slowest-N retention, stitched trees.
  Measured head-to-head — interleaved disabled/enabled drives of the
  same pipelined workload against one warm service, best round of each
  side — and reported as a throughput delta. This is the price of
  turning tracing on in production, recorded in
  ``results/obs_overhead.txt``.

Tracing must also never change an answer: the bench zips the enabled
and disabled rounds' responses and checks ids *and* per-query
``QueryStats`` are byte-identical, which the smoke gate enforces.

The report ends with the slowest enabled-round trace rendered as a
waterfall — the artifact ``repro trace`` produces on demand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.engine import DurableTopKEngine
from repro.data import independent_uniform
from repro.obs import (
    TRACES,
    disable,
    enable,
    format_waterfall,
    spans_started,
    trace_span,
)
from repro.obs.slo import SLOMonitor
from repro.experiments.resultstore import BenchMetric
from repro.service import (
    DurableTopKService,
    EngineBackend,
    MetricsCollector,
    MetricsSnapshot,
    WorkloadGenerator,
    WorkloadSpec,
    run_pipelined,
)

__all__ = [
    "ObsBenchResult",
    "SMOKE_DEFAULTS",
    "capture_traces",
    "noop_span_cost_ns",
    "obs_overhead_bench",
    "slo_record_cost_ns",
]

#: Scaled-down parameters for the CI smoke run (seconds, not minutes).
SMOKE_DEFAULTS = {
    "n": 6_000,
    "requests": 200,
    "clients": 4,
    "workers": 4,
    "n_preferences": 24,
    "rounds": 1,
}

#: The smoke gate: worst-case disabled-path overhead must stay under this.
DISABLED_OVERHEAD_BOUND = 0.03

#: The smoke gate for SLO burn-rate accounting: the per-request cost of
#: feeding the monitor must stay under 1% of per-request wall time.
SLO_OVERHEAD_BOUND = 0.01


@dataclass
class ObsBenchResult:
    """Report text plus raw numbers (mirrors ``ServiceBenchResult``).

    ``metrics`` is the structured telemetry persisted as
    ``BENCH_<name>.json`` for ``repro perf-report`` / ``perf-gate``.
    """

    name: str
    report: str
    data: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.report


def noop_span_cost_ns(iterations: int = 200_000) -> float:
    """Nanoseconds per disabled ``trace_span`` call (the always-paid path).

    Must run with tracing disabled; the caller (the bench) guarantees it.
    """
    start = time.perf_counter()
    for _ in range(iterations):
        with trace_span("obs.bench.noop"):
            pass
    return (time.perf_counter() - start) / iterations * 1e9


def slo_record_cost_ns(iterations: int = 100_000) -> float:
    """Nanoseconds of SLO accounting per *answered* request.

    One answered response feeds the monitor exactly twice — a latency
    observation and a good-outcome rejection event (staleness only when
    the result carries it) — so this times that pair against a live
    monitor with the stock SLO set. The deque timestamps all land inside
    one slow window, so nothing prunes: the measured cost is the
    steady-state append path, not amortised cleanup luck.
    """
    monitor = SLOMonitor()
    start = time.perf_counter()
    for _ in range(iterations):
        monitor.observe("latency", 0.001)
        monitor.record("rejections", bad=False)
    return (time.perf_counter() - start) / iterations * 1e9


def _workload(n: int, n_preferences: int, zipf_s: float, requests: int, seed: int):
    dataset = independent_uniform(n, 2, seed=seed)
    spec = WorkloadSpec(
        n_preferences=n_preferences,
        d=2,
        zipf_s=zipf_s,
        k_choices=(5, 10),
        tau_fractions=(0.05, 0.10),
        interval_fractions=(0.02, 0.05),
        algorithms=("t-hop",),
        seed=seed,
    )
    generator = WorkloadGenerator(spec, dataset.n)
    return dataset, spec, generator.requests(requests)


@dataclass
class _Round:
    """One timed pipelined drive with tracing either off or on."""

    snapshot: MetricsSnapshot
    responses: list
    wall_seconds: float
    spans: int  # spans started during this drive (0 when disabled)

    @property
    def rps(self) -> float:
        return len(self.responses) / self.wall_seconds


def _drive(service, stream, clients: int, traced: bool) -> _Round:
    service.metrics.reset()
    before = spans_started()
    if traced:
        enable()
    try:
        start = time.perf_counter()
        responses = run_pipelined(service.submit, stream, clients=clients)
        wall = time.perf_counter() - start
    finally:
        if traced:
            disable()
    return _Round(
        service.metrics.snapshot(), responses, wall, spans_started() - before
    )


def obs_overhead_bench(
    n: int = 60_000,
    requests: int = 1000,
    clients: int = 8,
    workers: int = 8,
    n_preferences: int = 64,
    zipf_s: float = 0.9,
    rounds: int = 2,
    seed: int = 7,
) -> ObsBenchResult:
    """Measure tracing overhead, disabled and enabled; see module docstring.

    One warm service serves every drive so the comparison is pool-warm
    on both sides; drives interleave disabled/enabled and the best round
    of each side is compared, which cancels warmup drift exactly like
    the service bench.
    """
    disable()  # the bench owns the tracing flag from here on
    dataset, spec, stream = _workload(n, n_preferences, zipf_s, requests, seed)
    off_rounds: list[_Round] = []
    on_rounds: list[_Round] = []
    TRACES.clear()
    # Every drive runs with SLO burn-rate monitoring live, so the
    # measured throughput already *includes* its cost on both sides; the
    # gated bound below is the micro-measured worst case on top.
    with DurableTopKService(
        EngineBackend(DurableTopKEngine(dataset)),
        workers=workers,
        max_queue=max(4096, 4 * len(stream)),
        max_batch=32,
        pool_capacity=n_preferences,
        metrics=MetricsCollector(slos=SLOMonitor()),
    ) as service:
        _drive(service, stream, clients, traced=False)  # warmup
        for _ in range(max(1, rounds)):
            off_rounds.append(_drive(service, stream, clients, traced=False))
            on_rounds.append(_drive(service, stream, clients, traced=True))
    off_best = max(off_rounds, key=lambda r: r.rps)
    on_best = max(on_rounds, key=lambda r: r.rps)

    # Measured enabled-mode cost: throughput lost by turning tracing on.
    enabled_overhead = 1.0 - on_best.rps / off_best.rps if off_best.rps else 0.0

    # Worst-case disabled-mode cost: no-op span cost times the call sites
    # one request crosses, charged entirely to the critical path. Span
    # counts come from the enabled rounds (the disabled path starts
    # none), so synthetic spans (queue wait, aggregated index.topk) are
    # counted too — overcounting only makes the bound more conservative.
    noop_ns = noop_span_cost_ns()
    spans_per_request = max(r.spans for r in on_rounds) / requests
    per_request_wall = off_best.wall_seconds / requests
    disabled_overhead = (noop_ns * 1e-9 * spans_per_request) / per_request_wall

    # SLO burn-rate accounting, same worst-case treatment: the measured
    # per-request monitor cost charged entirely to the critical path.
    slo_ns = slo_record_cost_ns()
    slo_overhead = (slo_ns * 1e-9) / per_request_wall
    slo_status = off_best.snapshot.slo

    # Tracing must observe, never participate: ids and per-query stats
    # from the enabled round must match the disabled round byte for byte.
    identical = 0
    rejected = 0
    for off, on in zip(off_best.responses, on_best.responses):
        if not (off.ok and on.ok):
            rejected += 1
            continue
        if (
            off.result.ids == on.result.ids
            and off.result.stats == on.result.stats
        ):
            identical += 1
    incorrect = requests - rejected - identical

    slowest = TRACES.slowest(1)
    waterfall = format_waterfall(slowest[0]) if slowest else "(no traces retained)"

    header = (
        f"observability overhead: {clients} clients, {workers} workers, "
        f"{requests} requests, best of {max(1, rounds)} interleaved round(s)\n"
        f"workload: n={n} d=2, {n_preferences} preferences (zipf s={zipf_s}), "
        f"t-hop, tau~{spec.tau_fractions}, |I|~{spec.interval_fractions}"
    )
    lines = [
        header,
        f"tracing disabled: {off_best.rps:.0f} req/s   "
        f"enabled: {on_best.rps:.0f} req/s   "
        f"measured enabled overhead: {enabled_overhead:+.1%}",
        f"disabled fast path: {noop_ns:.0f} ns/span call, "
        f"{spans_per_request:.1f} span call sites/request -> worst-case "
        f"overhead {disabled_overhead:.3%} of per-request wall "
        f"(gate: <{DISABLED_OVERHEAD_BOUND:.0%})",
        f"slo monitoring: {slo_ns:.0f} ns/request accounting -> worst-case "
        f"overhead {slo_overhead:.3%} of per-request wall "
        f"(gate: <{SLO_OVERHEAD_BOUND:.0%}); burn fast/slow: "
        + "  ".join(
            f"{name}={status['fast_burn_rate']:.2f}/{status['slow_burn_rate']:.2f}"
            for name, status in sorted(slo_status.items())
        ),
        f"byte-identity: {identical}/{requests} responses identical "
        f"(ids + stats) across enabled/disabled",
        "",
        "slowest enabled-round trace:",
        waterfall,
    ]
    return ObsBenchResult(
        name="obs_overhead",
        report="\n".join(lines),
        data={
            "off_rps": round(off_best.rps, 1),
            "on_rps": round(on_best.rps, 1),
            "enabled_overhead": round(enabled_overhead, 4),
            "disabled_overhead": round(disabled_overhead, 6),
            "disabled_overhead_bound": DISABLED_OVERHEAD_BOUND,
            "noop_ns": round(noop_ns, 1),
            "spans_per_request": round(spans_per_request, 2),
            "slo_ns": round(slo_ns, 1),
            "slo_overhead": round(slo_overhead, 6),
            "slo_overhead_bound": SLO_OVERHEAD_BOUND,
            "slo": slo_status,
            "identical": identical,
            "incorrect": incorrect,
            "rejected": rejected,
            "requests": requests,
            "off": off_best.snapshot.as_dict(),
            "on": on_best.snapshot.as_dict(),
        },
        metrics=[
            BenchMetric("off_rps", round(off_best.rps, 1), "req/s", "higher", 0.25),
            # Overhead fractions hover near zero and can dip negative in
            # noise; the additive floor is the honest band.
            BenchMetric(
                "enabled_overhead",
                round(enabled_overhead, 4),
                "frac",
                "lower",
                0.0,
                abs_noise=0.10,
            ),
            BenchMetric(
                "disabled_overhead",
                round(disabled_overhead, 6),
                "frac",
                "lower",
                0.0,
                abs_noise=0.01,
            ),
            BenchMetric(
                "slo_overhead",
                round(slo_overhead, 6),
                "frac",
                "lower",
                0.0,
                abs_noise=0.005,
            ),
            BenchMetric(
                "spans_per_request",
                round(spans_per_request, 2),
                "",
                "lower",
                0.25,
                portable=True,
            ),
            BenchMetric("incorrect", incorrect, "", "lower", 0.0, portable=True),
        ],
    )


def capture_traces(
    n: int = 12_000,
    requests: int = 120,
    clients: int = 4,
    workers: int = 4,
    n_preferences: int = 12,
    backend: str = "engine",
    shards: int = 2,
    top: int = 5,
    seed: int = 7,
    zipf_s: float = 0.9,
) -> list:
    """Drive a traced workload and return the ``top`` slowest traces.

    Backs the ``repro trace`` CLI. ``backend="sharded"`` runs the
    multi-process coordinator so the returned trees stitch coordinator
    and worker spans across process boundaries — the cross-layer
    waterfall the obs PR exists to produce.
    """
    dataset, _, stream = _workload(n, n_preferences, zipf_s, requests, seed)
    cleanup = None
    if backend == "sharded":
        from repro.service import ShardedBackend
        from repro.shard import ShardCoordinator, ShardedDataset

        sharded = ShardedDataset(dataset, shards)
        coordinator = ShardCoordinator(sharded, pool_capacity=64)
        backend_obj = ShardedBackend(coordinator)
        cleanup = sharded.close
    elif backend == "engine":
        backend_obj = EngineBackend(DurableTopKEngine(dataset))
    else:
        raise ValueError(f"unknown trace backend {backend!r}")
    TRACES.clear()
    enable()
    try:
        with DurableTopKService(
            backend_obj,
            workers=workers,
            max_queue=max(4096, 4 * len(stream)),
            max_batch=16,
            pool_capacity=n_preferences,
        ) as service:
            run_pipelined(service.submit, stream, clients=clients)
    finally:
        disable()
        if cleanup is not None:
            cleanup()
    return TRACES.slowest(top)
