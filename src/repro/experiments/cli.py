"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig8 --workload nba2
    python -m repro run all --out results/
    python -m repro serve-bench --out results/
    python -m repro serve-bench --smoke

Each experiment prints the same table/series its benchmark counterpart
saves, so results can be regenerated without pytest. ``serve-bench``
drives the concurrent serving layer (naive lock vs session-pooled
service); ``--smoke`` runs it small with serial verification and exits
non-zero on any rejected or incorrect response — the CI gate.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

__all__ = ["main", "EXPERIMENTS"]


def _fig8(args):
    from repro.experiments.figures import figure8_vary_tau, nba2_dataset, network2_dataset

    data = nba2_dataset(args.n) if args.workload == "nba2" else network2_dataset(args.n)
    return figure8_vary_tau(data, n_preferences=args.preferences)


def _fig9(args):
    from repro.experiments.figures import figure9_vary_k, nba2_dataset, network2_dataset

    data = nba2_dataset(args.n) if args.workload == "nba2" else network2_dataset(args.n)
    return figure9_vary_k(data, n_preferences=args.preferences)


def _fig10(args):
    from repro.experiments.figures import figure10_vary_interval, nba2_dataset, network2_dataset

    data = nba2_dataset(args.n) if args.workload == "nba2" else network2_dataset(args.n)
    return figure10_vary_interval(data, n_preferences=args.preferences)


def _fig11(args):
    from repro.experiments.figures import figure11_vary_dimension

    return figure11_vary_dimension(n=min(args.n, 12_000), n_preferences=args.preferences)


def _fig12(args):
    from repro.experiments.figures import figure12_scalability

    kind = "anti" if args.workload == "anti" else "ind"
    sizes = [args.n // 2, args.n, args.n * 2]
    return figure12_scalability(kind, sizes=sizes, n_preferences=args.preferences)


def _fig13(args):
    from repro.experiments.figures import figure13_runtime_distribution

    return figure13_runtime_distribution(n=min(args.n, 16_000), n_preferences=args.preferences)


def _table4(args):
    from repro.experiments.tables import table4_dbms_vary_tau

    return table4_dbms_vary_tau(n=min(args.n * 2, 40_000))


def _table5(args):
    from repro.experiments.tables import table5_dbms_vary_interval

    return table5_dbms_vary_interval(n=min(args.n * 2, 40_000))


def _table6(args):
    from repro.experiments.tables import table6_dbms_datasets

    return table6_dbms_datasets()


#: Experiment id -> (runner, description).
EXPERIMENTS = {
    "fig8": (_fig8, "vary tau, all five algorithms"),
    "fig9": (_fig9, "vary k, all five algorithms"),
    "fig10": (_fig10, "vary |I|, all five algorithms"),
    "fig11": (_fig11, "vary dimensionality on Network-X"),
    "fig12": (_fig12, "scalability on Syn (use --workload anti for ANTI)"),
    "fig13": (_fig13, "runtime distribution over NBA 5-d subsets"),
    "table4": (_table4, "MiniDB backend, vary tau"),
    "table5": (_table5, "MiniDB backend, vary |I|"),
    "table6": (_table6, "MiniDB backend, dataset sizes"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the durable top-k paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--workload", default="nba2", choices=["nba2", "network2", "ind", "anti"])
    run.add_argument("--n", type=int, default=20_000, help="dataset size")
    run.add_argument("--preferences", type=int, default=3, help="preference vectors per point")
    run.add_argument("--out", type=Path, default=None, help="directory for report files")

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the concurrent serving layer (naive lock vs pooled service)",
    )
    serve.add_argument("--n", type=int, default=80_000, help="dataset size")
    serve.add_argument("--requests", type=int, default=1200, help="requests per round")
    serve.add_argument("--clients", type=int, default=8, help="client threads")
    serve.add_argument("--workers", type=int, default=8, help="service worker threads")
    serve.add_argument(
        "--preferences", type=int, default=128, help="distinct preference vectors"
    )
    serve.add_argument("--zipf", type=float, default=0.9, help="zipf exponent")
    serve.add_argument("--rounds", type=int, default=2, help="timed rounds per side")
    serve.add_argument(
        "--verify",
        action="store_true",
        help="replay every request serially and check answers match",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="small run with --verify; exit 1 on any rejected/incorrect response",
    )
    serve.add_argument(
        "--out",
        type=Path,
        default=Path("results"),
        help="directory for service_throughput.txt (default: results/)",
    )
    return parser


def _serve_bench(args) -> int:
    from repro.experiments.service_bench import SMOKE_DEFAULTS, service_throughput_bench

    kwargs = {
        "n": args.n,
        "requests": args.requests,
        "clients": args.clients,
        "workers": args.workers,
        "n_preferences": args.preferences,
        "zipf_s": args.zipf,
        "rounds": args.rounds,
        "verify": args.verify or args.smoke,
    }
    if args.smoke:
        kwargs.update(SMOKE_DEFAULTS)
        kwargs["verify"] = True
    start = time.perf_counter()
    result = service_throughput_bench(**kwargs)
    elapsed = time.perf_counter() - start
    print(result.report)
    print(f"[serve-bench finished in {elapsed:.1f}s]")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / f"{result.name}.txt").write_text(result.report + "\n")
    if args.smoke:
        failures = []
        if result.data["incorrect"]:
            failures.append(f"{result.data['incorrect']} incorrect response(s)")
        if result.data["rejected"]:
            failures.append(f"{result.data['rejected']} rejected response(s)")
        if result.data["verified"] != result.data["requests"]:
            failures.append(
                f"serial verification {result.data['verified']}/"
                f"{result.data['requests']}"
            )
        if failures:
            print("SMOKE FAILURE: " + "; ".join(failures))
            return 1
        print("smoke ok: all responses served and serially verified")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0
    if args.command == "serve-bench":
        return _serve_bench(args)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, _ = EXPERIMENTS[name]
        start = time.perf_counter()
        result = runner(args)
        elapsed = time.perf_counter() - start
        print(result.report)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{result.name}.txt").write_text(result.report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
