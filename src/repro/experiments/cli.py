"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig8 --workload nba2
    python -m repro run all --out results/
    python -m repro serve-bench --out results/
    python -m repro serve-bench --smoke
    python -m repro cache-bench --out results/
    python -m repro cache-bench --smoke
    python -m repro ingest-bench --out results/
    python -m repro ingest-bench --smoke
    python -m repro shard-bench --shards 1,2,4
    python -m repro shard-bench --smoke
    python -m repro batch-bench --sizes 1,4,8,16
    python -m repro batch-bench --smoke
    python -m repro obs-bench --out results/
    python -m repro obs-bench --smoke
    python -m repro gateway --port 8334
    python -m repro gateway-bench --out results/
    python -m repro gateway-bench --smoke
    python -m repro perf-report --baseline benchmarks/baselines --current results
    python -m repro perf-gate --baseline benchmarks/baselines --current results
    python -m repro top --once
    python -m repro trace --backend sharded --shards 2 --top 3
    python -m repro stream --workload nba2 --k 3 --tau 500 --lookahead

Each experiment prints the same table/series its benchmark counterpart
saves, so results can be regenerated without pytest. ``serve-bench``
drives the concurrent serving layer (naive lock vs session-pooled
service); ``cache-bench`` drives the same pipelined workload with and
without the semantic answer cache and reports the p95 speedup and hit
rate (its ``--smoke`` re-derives every served answer — ids, durations
and stats — on an uncached engine, including a live-ingest phase);
``ingest-bench`` drives the live ingestion pipeline (appends
racing queries) and reports throughput, latency and freshness;
``shard-bench`` drives the multi-process sharded backend and reports the
throughput-vs-shards scaling curve; ``batch-bench`` compares a serial
``query`` loop against ``query_batch`` on same-preference Zipfian
batches and reports the per-query CPU speedup curve; ``obs-bench``
measures the tracing overhead in both modes and checks traced answers
stay byte-identical; ``gateway`` serves the durable top-k service over
TCP (length-prefixed JSON frames, per-tenant API keys) until
interrupted, and ``gateway-bench`` compares client-observed open-loop
latency over real localhost sockets against the same service driven
in-process, gating the socket p95 at 1.5x the in-process p95 (its
``--smoke`` additionally re-derives every socket-served answer
byte-identically on a fresh engine). For all of them, ``--smoke`` runs
small with serial verification and exits non-zero on any rejected or
incorrect response — the CI gates. Every saved report is stamped with an environment
fingerprint and pairs with a schema'd ``BENCH_<name>.json`` telemetry
file; ``perf-report`` diffs the current telemetry against an archived
baseline (``--promote`` refreshes the baseline), ``perf-gate`` is the
same diff with a non-zero exit on any regression beyond its noise band
— the CI perf smoke. ``top`` repaints a live terminal dashboard over
the observability stack (``--once`` renders a single plain frame for
non-tty use). ``trace`` drives a traced workload and prints the slowest
requests as per-layer waterfalls (``--backend sharded`` stitches
coordinator and worker-process spans into one tree); ``--log-json``
(global) switches diagnostics to structured JSON log lines. ``stream`` replays a
dataset as an arrival stream through the online
:class:`~repro.core.streaming.StreamingDurableMonitor` and prints each
record's durability decision the moment it is decidable.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

__all__ = ["main", "EXPERIMENTS"]


def _fig8(args):
    from repro.experiments.figures import figure8_vary_tau, nba2_dataset, network2_dataset

    data = nba2_dataset(args.n) if args.workload == "nba2" else network2_dataset(args.n)
    return figure8_vary_tau(data, n_preferences=args.preferences)


def _fig9(args):
    from repro.experiments.figures import figure9_vary_k, nba2_dataset, network2_dataset

    data = nba2_dataset(args.n) if args.workload == "nba2" else network2_dataset(args.n)
    return figure9_vary_k(data, n_preferences=args.preferences)


def _fig10(args):
    from repro.experiments.figures import figure10_vary_interval, nba2_dataset, network2_dataset

    data = nba2_dataset(args.n) if args.workload == "nba2" else network2_dataset(args.n)
    return figure10_vary_interval(data, n_preferences=args.preferences)


def _fig11(args):
    from repro.experiments.figures import figure11_vary_dimension

    return figure11_vary_dimension(n=min(args.n, 12_000), n_preferences=args.preferences)


def _fig12(args):
    from repro.experiments.figures import figure12_scalability

    kind = "anti" if args.workload == "anti" else "ind"
    sizes = [args.n // 2, args.n, args.n * 2]
    return figure12_scalability(kind, sizes=sizes, n_preferences=args.preferences)


def _fig13(args):
    from repro.experiments.figures import figure13_runtime_distribution

    return figure13_runtime_distribution(n=min(args.n, 16_000), n_preferences=args.preferences)


def _table4(args):
    from repro.experiments.tables import table4_dbms_vary_tau

    return table4_dbms_vary_tau(n=min(args.n * 2, 40_000))


def _table5(args):
    from repro.experiments.tables import table5_dbms_vary_interval

    return table5_dbms_vary_interval(n=min(args.n * 2, 40_000))


def _table6(args):
    from repro.experiments.tables import table6_dbms_datasets

    return table6_dbms_datasets()


#: Experiment id -> (runner, description).
EXPERIMENTS = {
    "fig8": (_fig8, "vary tau, all five algorithms"),
    "fig9": (_fig9, "vary k, all five algorithms"),
    "fig10": (_fig10, "vary |I|, all five algorithms"),
    "fig11": (_fig11, "vary dimensionality on Network-X"),
    "fig12": (_fig12, "scalability on Syn (use --workload anti for ANTI)"),
    "fig13": (_fig13, "runtime distribution over NBA 5-d subsets"),
    "table4": (_table4, "MiniDB backend, vary tau"),
    "table5": (_table5, "MiniDB backend, vary |I|"),
    "table6": (_table6, "MiniDB backend, dataset sizes"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the durable top-k paper's figures and tables.",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON log lines (one object per line) on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--workload", default="nba2", choices=["nba2", "network2", "ind", "anti"])
    run.add_argument("--n", type=int, default=20_000, help="dataset size")
    run.add_argument("--preferences", type=int, default=3, help="preference vectors per point")
    run.add_argument("--out", type=Path, default=None, help="directory for report files")

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the concurrent serving layer (naive lock vs pooled service)",
    )
    serve.add_argument("--n", type=int, default=80_000, help="dataset size")
    serve.add_argument("--requests", type=int, default=1200, help="requests per round")
    serve.add_argument("--clients", type=int, default=8, help="client threads")
    serve.add_argument("--workers", type=int, default=8, help="service worker threads")
    serve.add_argument(
        "--preferences", type=int, default=128, help="distinct preference vectors"
    )
    serve.add_argument("--zipf", type=float, default=0.9, help="zipf exponent")
    serve.add_argument("--rounds", type=int, default=2, help="timed rounds per side")
    serve.add_argument(
        "--verify",
        action="store_true",
        help="replay every request serially and check answers match",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="small run with --verify; exit 1 on any rejected/incorrect response",
    )
    serve.add_argument(
        "--pool-capacity",
        type=int,
        default=None,
        help="session pool capacity (default: sized to --preferences)",
    )
    serve.add_argument(
        "--out",
        type=Path,
        default=Path("results"),
        help="directory for service_throughput.txt (default: results/)",
    )

    cache = sub.add_parser(
        "cache-bench",
        help="benchmark the semantic answer cache (uncached vs cached service)",
    )
    cache.add_argument("--n", type=int, default=60_000, help="dataset size")
    cache.add_argument("--requests", type=int, default=1200, help="requests per round")
    cache.add_argument("--clients", type=int, default=8, help="client threads")
    cache.add_argument("--workers", type=int, default=8, help="service worker threads")
    cache.add_argument(
        "--preferences", type=int, default=96, help="distinct preference vectors"
    )
    cache.add_argument("--zipf", type=float, default=1.1, help="preference zipf exponent")
    cache.add_argument(
        "--shapes", type=int, default=8, help="query shapes per preference"
    )
    cache.add_argument(
        "--shape-zipf", type=float, default=1.2, help="shape zipf exponent"
    )
    cache.add_argument("--rounds", type=int, default=2, help="timed rounds per side")
    cache.add_argument(
        "--pool-capacity",
        type=int,
        default=None,
        help="session pool capacity (default: sized to --preferences)",
    )
    cache.add_argument(
        "--cache-mb", type=int, default=64, help="answer cache capacity in MiB"
    )
    cache.add_argument(
        "--verify",
        action="store_true",
        help="re-derive every served answer on an uncached engine "
        "(ids, durations, stats) and run the live-ingest equivalence phase",
    )
    cache.add_argument(
        "--smoke",
        action="store_true",
        help="small run with --verify; exit 1 on any stale/incorrect response",
    )
    cache.add_argument(
        "--out",
        type=Path,
        default=Path("results"),
        help="directory for cache_speedup.txt (default: results/)",
    )

    ingest = sub.add_parser(
        "ingest-bench",
        help="benchmark live ingestion (appends racing durable top-k queries)",
    )
    ingest.add_argument("--n", type=int, default=40_000, help="seeded dataset size")
    ingest.add_argument("--requests", type=int, default=800, help="requests per round")
    ingest.add_argument("--clients", type=int, default=4, help="client threads")
    ingest.add_argument("--workers", type=int, default=4, help="service worker threads")
    ingest.add_argument("--writers", type=int, default=1, help="writer threads")
    ingest.add_argument(
        "--batch-rows", type=int, default=64, help="rows per append micro-batch"
    )
    ingest.add_argument(
        "--preferences", type=int, default=32, help="distinct preference vectors"
    )
    ingest.add_argument("--seal-rows", type=int, default=4096, help="tail size per seal")
    ingest.add_argument(
        "--verify", type=int, default=0, metavar="SAMPLE",
        help="re-derive SAMPLE responses serially against the oracle",
    )
    ingest.add_argument(
        "--smoke",
        action="store_true",
        help="small run verifying every response; exit 1 on any mismatch",
    )
    ingest.add_argument(
        "--out",
        type=Path,
        default=Path("results"),
        help="directory for ingest_throughput.txt (default: results/)",
    )

    shard = sub.add_parser(
        "shard-bench",
        help="benchmark multi-process sharded serving (throughput vs shard count)",
    )
    shard.add_argument("--n", type=int, default=60_000, help="dataset size")
    shard.add_argument("--requests", type=int, default=800, help="requests per round")
    shard.add_argument("--clients", type=int, default=8, help="client threads")
    shard.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts to sweep (default: 1,2,4)",
    )
    shard.add_argument(
        "--preferences", type=int, default=64, help="distinct preference vectors"
    )
    shard.add_argument("--zipf", type=float, default=0.9, help="zipf exponent")
    shard.add_argument("--rounds", type=int, default=2, help="timed rounds per count")
    shard.add_argument(
        "--future", type=float, default=0.0, help="share of look-ahead queries"
    )
    shard.add_argument(
        "--verify",
        action="store_true",
        help="re-derive every response on an unsharded engine and compare",
    )
    shard.add_argument(
        "--smoke",
        action="store_true",
        help="small run with --verify; exit 1 on any rejected/incorrect response",
    )
    shard.add_argument(
        "--out",
        type=Path,
        default=Path("results"),
        help="directory for shard_throughput.txt (default: results/)",
    )

    batch = sub.add_parser(
        "batch-bench",
        help="benchmark batched query execution (serial loop vs query_batch)",
    )
    batch.add_argument("--n", type=int, default=30_000, help="dataset size")
    batch.add_argument(
        "--sizes",
        default="1,4,8,16",
        help="comma-separated batch sizes to sweep (default: 1,4,8,16)",
    )
    batch.add_argument(
        "--batches", type=int, default=8, help="same-preference batches per size"
    )
    batch.add_argument(
        "--preferences", type=int, default=16, help="distinct preference vectors"
    )
    batch.add_argument(
        "--shapes", type=int, default=6, help="query shapes per preference"
    )
    batch.add_argument(
        "--zipf", type=float, default=1.1, help="preference zipf exponent"
    )
    batch.add_argument(
        "--shape-zipf", type=float, default=1.2, help="shape zipf exponent"
    )
    batch.add_argument(
        "--future", type=float, default=0.2, help="share of look-ahead queries"
    )
    batch.add_argument(
        "--requests", type=int, default=400, help="service-round pipelined requests"
    )
    batch.add_argument(
        "--verify",
        action="store_true",
        help="re-derive the service round serially on a reference engine",
    )
    batch.add_argument(
        "--smoke",
        action="store_true",
        help="small run with --verify; exit 1 on any mismatched/rejected response",
    )
    batch.add_argument(
        "--out",
        type=Path,
        default=Path("results"),
        help="directory for batch_speedup.txt (default: results/)",
    )

    obs = sub.add_parser(
        "obs-bench",
        help="measure tracing overhead (disabled fast path and enabled mode)",
    )
    obs.add_argument("--n", type=int, default=60_000, help="dataset size")
    obs.add_argument("--requests", type=int, default=1000, help="requests per round")
    obs.add_argument("--clients", type=int, default=8, help="client threads")
    obs.add_argument("--workers", type=int, default=8, help="service worker threads")
    obs.add_argument(
        "--preferences", type=int, default=64, help="distinct preference vectors"
    )
    obs.add_argument("--zipf", type=float, default=0.9, help="zipf exponent")
    obs.add_argument("--rounds", type=int, default=2, help="interleaved rounds per side")
    obs.add_argument(
        "--smoke",
        action="store_true",
        help="small run; exit 1 if the disabled-path bound or byte-identity fails",
    )
    obs.add_argument(
        "--out",
        type=Path,
        default=Path("results"),
        help="directory for obs_overhead.txt (default: results/)",
    )

    gateway = sub.add_parser(
        "gateway",
        help="serve the durable top-k service over TCP until interrupted",
    )
    gateway.add_argument("--host", default="127.0.0.1", help="bind address")
    gateway.add_argument("--port", type=int, default=8334, help="bind port (0 = OS pick)")
    gateway.add_argument("--n", type=int, default=60_000, help="demo dataset size")
    gateway.add_argument("--workers", type=int, default=4, help="service worker threads")
    gateway.add_argument(
        "--api-key",
        action="append",
        default=None,
        metavar="KEY=TENANT",
        help="accept KEY for TENANT (repeatable; default: dev-key=dev)",
    )
    gateway.add_argument(
        "--tenant-rate", type=float, default=1000.0, help="token-bucket refill req/s"
    )
    gateway.add_argument(
        "--tenant-burst", type=float, default=200.0, help="token-bucket burst size"
    )
    gateway.add_argument(
        "--tenant-inflight", type=int, default=256, help="per-tenant queue quota"
    )

    gwbench = sub.add_parser(
        "gateway-bench",
        help="benchmark socket-served vs in-process latency at equal offered load",
    )
    gwbench.add_argument("--n", type=int, default=60_000, help="dataset size")
    gwbench.add_argument("--requests", type=int, default=1000, help="requests per round")
    gwbench.add_argument(
        "--rate", type=float, default=250.0, help="offered open-loop arrival rate (req/s)"
    )
    gwbench.add_argument("--clients", type=int, default=8, help="socket client connections")
    gwbench.add_argument("--workers", type=int, default=8, help="service worker threads")
    gwbench.add_argument(
        "--preferences", type=int, default=64, help="distinct preference vectors"
    )
    gwbench.add_argument("--zipf", type=float, default=0.9, help="zipf exponent")
    gwbench.add_argument("--rounds", type=int, default=2, help="timed rounds per side")
    gwbench.add_argument(
        "--verify",
        action="store_true",
        help="re-derive every socket-served answer on a fresh engine",
    )
    gwbench.add_argument(
        "--smoke",
        action="store_true",
        help="small run with --verify; exit 1 on any non-identical/rejected "
        "response or a wire p95 price above the SLO ceiling",
    )
    gwbench.add_argument(
        "--pool-capacity",
        type=int,
        default=None,
        help="session pool capacity (default: sized to --preferences)",
    )
    gwbench.add_argument(
        "--out",
        type=Path,
        default=Path("results"),
        help="directory for gateway_throughput.txt (default: results/)",
    )

    for name, blurb in [
        (
            "perf-report",
            "diff current BENCH_*.json telemetry against an archived baseline",
        ),
        (
            "perf-gate",
            "same diff, but exit 1 on any regression beyond its noise band (CI)",
        ),
    ]:
        perf = sub.add_parser(name, help=blurb)
        perf.add_argument(
            "--baseline",
            type=Path,
            default=Path("benchmarks/baselines"),
            help="directory of archived BENCH_*.json records",
        )
        perf.add_argument(
            "--current",
            type=Path,
            default=Path("results"),
            help="directory of freshly produced BENCH_*.json records",
        )
        if name == "perf-report":
            perf.add_argument(
                "--promote",
                action="store_true",
                help="after reporting, archive the current records as the new baseline",
            )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over the observability stack (demo workload)",
    )
    top.add_argument(
        "--duration", type=float, default=30.0, help="seconds to run (live mode)"
    )
    top.add_argument(
        "--interval", type=float, default=1.0, help="seconds between repaints"
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single plain frame and exit (no ANSI; for non-tty use)",
    )

    trace = sub.add_parser(
        "trace",
        help="drive a traced workload and print the slowest traces as waterfalls",
    )
    trace.add_argument("--n", type=int, default=12_000, help="dataset size")
    trace.add_argument("--requests", type=int, default=120, help="requests to serve")
    trace.add_argument("--clients", type=int, default=4, help="client threads")
    trace.add_argument("--workers", type=int, default=4, help="service worker threads")
    trace.add_argument(
        "--preferences", type=int, default=12, help="distinct preference vectors"
    )
    trace.add_argument(
        "--backend",
        default="engine",
        choices=["engine", "sharded"],
        help="sharded stitches coordinator + worker-process spans into one tree",
    )
    trace.add_argument(
        "--shards", type=int, default=2, help="shard count for --backend sharded"
    )
    trace.add_argument("--top", type=int, default=3, help="slowest traces to print")

    stream = sub.add_parser(
        "stream",
        help="replay a dataset as an arrival stream of durability decisions",
    )
    stream.add_argument(
        "--workload", default="nba2", choices=["nba2", "network2", "ind"],
        help="dataset to replay",
    )
    stream.add_argument("--n", type=int, default=2_000, help="records to replay")
    stream.add_argument("--k", type=int, default=3, help="rank threshold")
    stream.add_argument("--tau", type=int, default=200, help="durability duration")
    stream.add_argument(
        "--weights", default=None,
        help="comma-separated preference weights (default: uniform)",
    )
    stream.add_argument(
        "--lookahead", action="store_true",
        help="also resolve look-ahead durability as later arrivals decide it",
    )
    stream.add_argument(
        "--limit", type=int, default=25,
        help="print at most this many durable arrivals (summary always prints)",
    )
    return parser


def _save_result(result, out: Path) -> None:
    """Persist one experiment result: stamped ``.txt`` plus ``BENCH_*.json``.

    The text report gets the environment-fingerprint header (so archived
    artifacts self-describe the box they ran on); results that carry
    structured ``metrics`` also emit a schema'd ``BENCH_<name>.json``
    record and append to the ``BENCH_HISTORY.jsonl`` trajectory — the
    inputs to ``perf-report`` / ``perf-gate``.
    """
    from repro.experiments.resultstore import (
        BenchRecord,
        environment_fingerprint,
        fingerprint_header,
        save_bench_record,
    )

    out.mkdir(parents=True, exist_ok=True)
    env = environment_fingerprint()
    (out / f"{result.name}.txt").write_text(
        fingerprint_header(env) + "\n" + result.report + "\n"
    )
    metrics = getattr(result, "metrics", None)
    if metrics:
        save_bench_record(
            BenchRecord(name=result.name, metrics=list(metrics), environment=env), out
        )


def _finish_bench(label, result, elapsed, out, smoke, failures, ok_message) -> int:
    """Shared tail of the bench subcommands: print, save, smoke-gate.

    ``failures`` are the subcommand-specific smoke checks (already
    evaluated); any entry fails the smoke run with exit code 1.
    """
    print(result.report)
    print(f"[{label} finished in {elapsed:.1f}s]")
    if out is not None:
        _save_result(result, out)
    if smoke:
        if failures:
            print("SMOKE FAILURE: " + "; ".join(failures))
            return 1
        print(ok_message)
    return 0


def _response_failures(data) -> list[str]:
    """Smoke checks every serving bench shares: nothing wrong, nothing refused."""
    failures = []
    if data["incorrect"]:
        failures.append(f"{data['incorrect']} incorrect response(s)")
    if data["rejected"]:
        failures.append(f"{data['rejected']} rejected response(s)")
    return failures


def _serve_bench(args) -> int:
    from repro.experiments.service_bench import SMOKE_DEFAULTS, service_throughput_bench

    kwargs = {
        "n": args.n,
        "requests": args.requests,
        "clients": args.clients,
        "workers": args.workers,
        "n_preferences": args.preferences,
        "zipf_s": args.zipf,
        "rounds": args.rounds,
        "verify": args.verify or args.smoke,
        "pool_capacity": args.pool_capacity,
    }
    if args.smoke:
        kwargs.update(SMOKE_DEFAULTS)
        kwargs["verify"] = True
    start = time.perf_counter()
    result = service_throughput_bench(**kwargs)
    elapsed = time.perf_counter() - start
    failures = []
    if args.smoke:
        failures = _response_failures(result.data)
        if result.data["verified"] != result.data["requests"]:
            failures.append(
                f"serial verification {result.data['verified']}/"
                f"{result.data['requests']}"
            )
    return _finish_bench(
        "serve-bench",
        result,
        elapsed,
        args.out,
        args.smoke,
        failures,
        "smoke ok: all responses served and serially verified",
    )


def _cache_bench(args) -> int:
    from repro.experiments.cache_bench import SMOKE_DEFAULTS, cache_speedup_bench

    kwargs = {
        "n": args.n,
        "requests": args.requests,
        "clients": args.clients,
        "workers": args.workers,
        "n_preferences": args.preferences,
        "zipf_s": args.zipf,
        "shapes_per_preference": args.shapes,
        "shape_zipf_s": args.shape_zipf,
        "rounds": args.rounds,
        "pool_capacity": args.pool_capacity,
        "cache_bytes": args.cache_mb * 1024 * 1024,
        "verify": args.verify or args.smoke,
    }
    if args.smoke:
        kwargs.update(SMOKE_DEFAULTS)
        kwargs["verify"] = True
    start = time.perf_counter()
    result = cache_speedup_bench(**kwargs)
    elapsed = time.perf_counter() - start
    failures = []
    if args.smoke:
        failures = _response_failures(result.data)
        if result.data["verified"] != result.data["requests"]:
            failures.append(
                f"serial re-derivation {result.data['verified']}/"
                f"{result.data['requests']}"
            )
        ingest = result.data["ingest"]
        if ingest and ingest["incorrect"]:
            failures.append(
                f"{ingest['incorrect']} live-ingest response(s) diverged from "
                "their frozen snapshot prefix"
            )
        if ingest and ingest["verified"] + ingest["rejected"] != ingest["requests"]:
            failures.append(
                f"live-ingest re-derivation covered "
                f"{ingest['verified'] + ingest['rejected']}/{ingest['requests']}"
            )
    return _finish_bench(
        "cache-bench",
        result,
        elapsed,
        args.out,
        args.smoke,
        failures,
        "smoke ok: every cached answer byte-identical to the uncached engine, "
        "including under live ingest",
    )


def _ingest_bench(args) -> int:
    from repro.experiments.ingest_bench import SMOKE_DEFAULTS, ingest_throughput_bench

    kwargs = {
        "n0": args.n,
        "requests": args.requests,
        "clients": args.clients,
        "workers": args.workers,
        "writers": args.writers,
        "batch_rows": args.batch_rows,
        "n_preferences": args.preferences,
        "seal_rows": args.seal_rows,
        "verify_sample": args.verify,
    }
    if args.smoke:
        kwargs.update(SMOKE_DEFAULTS)
    start = time.perf_counter()
    result = ingest_throughput_bench(**kwargs)
    elapsed = time.perf_counter() - start
    failures = []
    if args.smoke:
        failures = _response_failures(result.data)
        if not result.data["seals"]:
            failures.append("the background sealer never sealed a segment")
    return _finish_bench(
        "ingest-bench",
        result,
        elapsed,
        args.out,
        args.smoke,
        failures,
        "smoke ok: all responses served while ingesting and serially re-derived",
    )


def _shard_bench(args) -> int:
    from repro.experiments.shard_bench import SMOKE_DEFAULTS, shard_throughput_bench

    kwargs = {
        "n": args.n,
        "requests": args.requests,
        "clients": args.clients,
        "shard_counts": tuple(int(s) for s in args.shards.split(",")),
        "n_preferences": args.preferences,
        "zipf_s": args.zipf,
        "rounds": args.rounds,
        "future_fraction": args.future,
        "verify": args.verify or args.smoke,
    }
    if args.smoke:
        kwargs.update(SMOKE_DEFAULTS)
        kwargs["verify"] = True
    start = time.perf_counter()
    result = shard_throughput_bench(**kwargs)
    elapsed = time.perf_counter() - start
    failures = []
    if args.smoke:
        failures = _response_failures(result.data)
        if any(result.data["restarts"].values()):
            failures.append(f"unexpected worker restarts: {result.data['restarts']}")
        expected = len(kwargs["shard_counts"]) * result.data["requests"]
        if result.data["verified"] != expected:
            failures.append(
                f"serial verification {result.data['verified']}/{expected}"
            )
    return _finish_bench(
        "shard-bench",
        result,
        elapsed,
        args.out,
        args.smoke,
        failures,
        "smoke ok: every sharded answer byte-identical to the unsharded engine",
    )


def _batch_bench(args) -> int:
    from repro.experiments.batch_bench import SMOKE_DEFAULTS, batch_speedup_bench

    kwargs = {
        "n": args.n,
        "batch_sizes": tuple(int(s) for s in args.sizes.split(",")),
        "batches_per_size": args.batches,
        "n_preferences": args.preferences,
        "shapes_per_preference": args.shapes,
        "zipf_s": args.zipf,
        "shape_zipf_s": args.shape_zipf,
        "future_fraction": args.future,
        "service_requests": args.requests,
        "verify": args.verify or args.smoke,
    }
    if args.smoke:
        kwargs.update(SMOKE_DEFAULTS)
        kwargs["verify"] = True
    start = time.perf_counter()
    result = batch_speedup_bench(**kwargs)
    elapsed = time.perf_counter() - start
    failures = []
    if args.smoke:
        failures = _response_failures(result.data)
        if result.data["mismatches"]:
            failures.append(
                f"{result.data['mismatches']} batch(es) diverged from the "
                "serial loop"
            )
        served = result.data["requests"] - result.data["rejected"]
        if result.data["verified"] != served:
            failures.append(
                f"serial verification {result.data['verified']}/{served}"
            )
    return _finish_bench(
        "batch-bench",
        result,
        elapsed,
        args.out,
        args.smoke,
        failures,
        "smoke ok: every batched answer byte-identical to the serial reference",
    )


def _obs_bench(args) -> int:
    from repro.experiments.obs_bench import (
        DISABLED_OVERHEAD_BOUND,
        SLO_OVERHEAD_BOUND,
        SMOKE_DEFAULTS,
        obs_overhead_bench,
    )

    kwargs = {
        "n": args.n,
        "requests": args.requests,
        "clients": args.clients,
        "workers": args.workers,
        "n_preferences": args.preferences,
        "zipf_s": args.zipf,
        "rounds": args.rounds,
    }
    if args.smoke:
        kwargs.update(SMOKE_DEFAULTS)
    start = time.perf_counter()
    result = obs_overhead_bench(**kwargs)
    elapsed = time.perf_counter() - start
    failures = []
    if args.smoke:
        failures = _response_failures(result.data)
        if result.data["disabled_overhead"] > DISABLED_OVERHEAD_BOUND:
            failures.append(
                f"disabled-path overhead bound {result.data['disabled_overhead']:.3%} "
                f"exceeds {DISABLED_OVERHEAD_BOUND:.0%}"
            )
        if result.data["slo_overhead"] > SLO_OVERHEAD_BOUND:
            failures.append(
                f"SLO-monitoring overhead {result.data['slo_overhead']:.3%} "
                f"exceeds {SLO_OVERHEAD_BOUND:.0%} of per-request wall"
            )
        if result.data["identical"] != result.data["requests"]:
            failures.append(
                f"byte-identity {result.data['identical']}/{result.data['requests']}"
            )
    return _finish_bench(
        "obs-bench",
        result,
        elapsed,
        args.out,
        args.smoke,
        failures,
        "smoke ok: disabled path and SLO accounting within bounds, "
        "traced answers byte-identical",
    )


def _gateway_serve(args) -> int:
    """``repro gateway`` — serve a demo-backed service until interrupted."""
    from repro.core.engine import DurableTopKEngine
    from repro.data import independent_uniform
    from repro.gateway import DurableTopKGateway, Tenant
    from repro.service import DurableTopKService, EngineBackend

    pairs = args.api_key if args.api_key else ["dev-key=dev"]
    keys = {}
    for pair in pairs:
        key, _, tenant = pair.partition("=")
        if not key or not tenant:
            print(f"--api-key must be KEY=TENANT, got {pair!r}")
            return 2
        keys[key] = Tenant(
            tenant,
            rate=args.tenant_rate,
            burst=args.tenant_burst,
            max_inflight=args.tenant_inflight,
        )
    from repro.cache import SemanticAnswerCache

    dataset = independent_uniform(args.n, 2, seed=7)
    with DurableTopKService(
        EngineBackend(DurableTopKEngine(dataset)),
        workers=args.workers,
        cache=SemanticAnswerCache(),
    ) as service:
        gateway = DurableTopKGateway(
            service, keys, host=args.host, port=args.port
        ).start()
        tenants = ", ".join(sorted(t.name for t in keys.values()))
        print(
            f"gateway serving n={args.n} on {args.host}:{gateway.port} "
            f"({args.workers} workers; tenants: {tenants}) — Ctrl-C to drain"
        )
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("draining...")
        finally:
            gateway.close()
    return 0


def _gateway_bench(args) -> int:
    from repro.experiments.gateway_bench import (
        SLO_P95_RATIO,
        SMOKE_DEFAULTS,
        gateway_throughput_bench,
    )

    kwargs = {
        "n": args.n,
        "requests": args.requests,
        "rate": args.rate,
        "clients": args.clients,
        "workers": args.workers,
        "n_preferences": args.preferences,
        "zipf_s": args.zipf,
        "rounds": args.rounds,
        "pool_capacity": args.pool_capacity,
        "verify": args.verify or args.smoke,
    }
    if args.smoke:
        kwargs.update(SMOKE_DEFAULTS)
        kwargs["verify"] = True
    start = time.perf_counter()
    result = gateway_throughput_bench(**kwargs)
    elapsed = time.perf_counter() - start
    failures = []
    if args.smoke:
        failures = _response_failures(result.data)
        if result.data["verified"] != result.data["requests"]:
            failures.append(
                f"socket re-derivation {result.data['verified']}/"
                f"{result.data['requests']}"
            )
        if result.data["p95_ratio"] > SLO_P95_RATIO:
            failures.append(
                f"wire p95 price {result.data['p95_ratio']:.2f}x exceeds the "
                f"{SLO_P95_RATIO}x SLO"
            )
    return _finish_bench(
        "gateway-bench",
        result,
        elapsed,
        args.out,
        args.smoke,
        failures,
        "smoke ok: every socket-served answer byte-identical on a fresh engine, "
        f"wire p95 price within {SLO_P95_RATIO}x SLO",
    )


def _perf(args, gate_mode: bool) -> int:
    from repro.experiments.perf import compare_dirs, format_report, gate, promote

    deltas, missing_current, missing_baseline = compare_dirs(args.baseline, args.current)
    print(format_report(deltas, missing_current, missing_baseline))
    verdict = gate(deltas)
    if gate_mode:
        if not deltas:
            # A gate with nothing to compare is a misconfiguration, not a pass.
            print(
                "perf-gate: no overlapping BENCH records between "
                f"{args.baseline} and {args.current}"
            )
            return 1
        return verdict
    if getattr(args, "promote", False):
        promoted = promote(args.current, args.baseline)
        print(
            f"promoted {len(promoted)} record(s) to {args.baseline}: "
            + ", ".join(promoted)
        )
    return 0


def _top(args) -> int:
    from repro.experiments.top import run_top

    run_top(duration=args.duration, interval=args.interval, once=args.once)
    return 0


def _trace(args) -> int:
    from repro.experiments.obs_bench import capture_traces
    from repro.obs import format_waterfall

    traces = capture_traces(
        n=args.n,
        requests=args.requests,
        clients=args.clients,
        workers=args.workers,
        n_preferences=args.preferences,
        backend=args.backend,
        shards=args.shards,
        top=args.top,
    )
    if not traces:
        print("no traces captured")
        return 1
    print(
        f"slowest {len(traces)} of {args.requests} requests "
        f"({args.backend} backend):\n"
    )
    for trace in traces:
        print(format_waterfall(trace))
        print()
    return 0


def _stream(args) -> int:
    from repro.core.streaming import StreamingDurableMonitor
    from repro.scoring import LinearPreference

    if args.workload == "nba2":
        from repro.experiments.figures import nba2_dataset

        data = nba2_dataset(args.n)
    elif args.workload == "network2":
        from repro.experiments.figures import network2_dataset

        data = network2_dataset(args.n)
    else:
        from repro.data import independent_uniform

        data = independent_uniform(args.n, 2, seed=0)
    if args.weights is not None:
        weights = [float(w) for w in args.weights.split(",")]
    else:
        weights = [1.0 / data.d] * data.d
    scorer = LinearPreference(weights)
    scorer.validate_for(data.d)
    scores = scorer.scores(data.values)

    monitor = StreamingDurableMonitor(args.k, args.tau, track_lookahead=args.lookahead)
    print(
        f"streaming {data.name}: n={data.n}, k={args.k}, tau={args.tau}, "
        f"u={[round(w, 4) for w in weights]}"
        + (" (+look-ahead)" if args.lookahead else "")
    )
    printed = 0
    ahead_durable = 0
    for t in range(data.n):
        durable, resolutions = monitor.append(scores[t])
        if durable and printed < args.limit:
            rec = data.record(t)
            stamp = rec.timestamp if rec.timestamp is not None else t
            label = f" {rec.label}" if rec.label else ""
            print(
                f"  t={t} [{stamp}]{label} score={scores[t]:.4f} "
                f"durable on arrival (top-{args.k} of its last {args.tau})"
            )
            printed += 1
        for res in resolutions:
            ahead_durable += res.durable
            if res.durable and printed < args.limit:
                print(
                    f"  t={res.t} look-ahead durable "
                    f"(stood {args.tau} arrivals, decided at t={res.decided_at})"
                )
                printed += 1
    for res in monitor.finish():
        ahead_durable += res.durable
    total = len(monitor.durable_ids)
    if total > printed:
        print(f"  ... and more (printed {printed}, use --limit to raise)")
    print(
        f"{total}/{data.n} records look-back durable on arrival"
        + (f"; {ahead_durable} look-ahead durable" if args.lookahead else "")
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_json:
        from repro.obs import configure_json_logging

        configure_json_logging()
    if args.command == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0
    if args.command == "serve-bench":
        return _serve_bench(args)
    if args.command == "cache-bench":
        return _cache_bench(args)
    if args.command == "ingest-bench":
        return _ingest_bench(args)
    if args.command == "shard-bench":
        return _shard_bench(args)
    if args.command == "batch-bench":
        return _batch_bench(args)
    if args.command == "obs-bench":
        return _obs_bench(args)
    if args.command == "gateway":
        return _gateway_serve(args)
    if args.command == "gateway-bench":
        return _gateway_bench(args)
    if args.command == "perf-report":
        return _perf(args, gate_mode=False)
    if args.command == "perf-gate":
        return _perf(args, gate_mode=True)
    if args.command == "top":
        return _top(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "stream":
        return _stream(args)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, _ = EXPERIMENTS[name]
        start = time.perf_counter()
        result = runner(args)
        elapsed = time.perf_counter() - start
        print(result.report)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
        if args.out is not None:
            _save_result(result, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
