"""Diffing bench telemetry against an archived baseline (``repro perf-report``).

Reads two directories of ``BENCH_*.json`` records — an archived
*baseline* (checked in under ``benchmarks/baselines/`` for smoke scale,
or any previously saved ``results/`` tree) and the *current* run — and
compares them metric by metric. A metric regresses when it moves in its
worse direction by more than its noise band:

    worsening > max(noise * |baseline|, abs_noise)

Two guards keep the gate honest rather than merely strict:

* **Noise bands are per metric.** A 3% swing in a wall-clock throughput
  number on a busy CI runner is weather; a 3% swing in a deterministic
  page count is a real algorithmic change. Each
  :class:`~repro.experiments.resultstore.BenchMetric` carries its own
  band, and ``abs_noise`` gives near-zero metrics (overhead fractions
  that legitimately dip negative) an additive floor.
* **Machine-bound metrics only gate on comparable machines.** A
  baseline recorded on a 1-core box says nothing about wall time on an
  8-core runner. Metrics marked ``portable`` (ratios, counts) gate
  everywhere; the rest gate only when the environment fingerprints
  agree on cpu count, python minor version and platform, and otherwise
  downgrade to informational rows.

``repro perf-gate`` exits nonzero iff any gated metric regresses — the
CI hook. ``repro perf-report --promote`` copies the current records
over the baseline, which is the *only* sanctioned way to refresh it
(see EXPERIMENTS.md for the policy).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.experiments.resultstore import (
    BenchMetric,
    BenchRecord,
    load_bench_dir,
    save_bench_record,
)

__all__ = [
    "MetricDelta",
    "comparable_environments",
    "compare_records",
    "compare_dirs",
    "format_report",
    "gate",
    "promote",
]

#: Environment-fingerprint keys that must agree for machine-bound
#: (non-portable) metrics to be gated rather than informational.
COMPARABILITY_KEYS = ("cpu_count", "python", "platform", "machine")


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between baseline and current run."""

    bench: str
    metric: BenchMetric  # the current metric (carries unit/better/noise)
    baseline: float
    current: float
    gated: bool  # False -> informational only (incomparable machines)

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def ratio(self) -> float:
        """Relative change, signed so positive always means *worse*."""
        if self.baseline == 0:
            return 0.0
        worsening = self.delta if self.metric.better == "lower" else -self.delta
        return worsening / abs(self.baseline)

    @property
    def worsening(self) -> float:
        """Absolute movement in the metric's worse direction (<= 0 is fine)."""
        return self.delta if self.metric.better == "lower" else -self.delta

    @property
    def band(self) -> float:
        """The indifference band: movement inside it is noise."""
        return max(self.metric.noise * abs(self.baseline), self.metric.abs_noise)

    @property
    def regressed(self) -> bool:
        return self.gated and self.worsening > self.band

    @property
    def improved(self) -> bool:
        return -self.worsening > self.band


def comparable_environments(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """Whether machine-bound numbers from *a* and *b* may be compared.

    Python is compared at minor-version granularity: 3.11.7 vs 3.11.9
    measures the same interpreter for our purposes, 3.11 vs 3.12 does
    not.
    """

    def minor(version: str) -> str:
        return ".".join(str(version).split(".")[:2])

    for key in COMPARABILITY_KEYS:
        va, vb = a.get(key), b.get(key)
        if key == "python":
            va, vb = minor(va or ""), minor(vb or "")
        if va != vb:
            return False
    return True


def compare_records(base: BenchRecord, curr: BenchRecord) -> list[MetricDelta]:
    """Per-metric deltas for one bench (metrics present in both runs)."""
    machines_match = comparable_environments(base.environment, curr.environment)
    deltas: list[MetricDelta] = []
    for metric in curr.metrics:
        baseline = base.metric(metric.name)
        if baseline is None:
            continue
        deltas.append(
            MetricDelta(
                bench=curr.name,
                metric=metric,
                baseline=baseline.value,
                current=metric.value,
                gated=metric.portable or machines_match,
            )
        )
    return deltas


def compare_dirs(
    baseline_dir: str | Path, current_dir: str | Path
) -> tuple[list[MetricDelta], list[str], list[str]]:
    """Diff every bench present in both dirs.

    Returns ``(deltas, missing_from_current, missing_from_baseline)``.
    A bench absent from the *current* run is reported, not failed — CI
    smoke jobs run a subset of the full bench battery; a bench absent
    from the *baseline* is new and gates from the next promote onward.
    """
    base = load_bench_dir(baseline_dir)
    curr = load_bench_dir(current_dir)
    deltas: list[MetricDelta] = []
    for name in sorted(set(base) & set(curr)):
        deltas.extend(compare_records(base[name], curr[name]))
    missing_current = sorted(set(base) - set(curr))
    missing_baseline = sorted(set(curr) - set(base))
    return deltas, missing_current, missing_baseline


def _fmt_value(value: float, unit: str) -> str:
    text = f"{value:.4g}"
    return f"{text} {unit}".rstrip()


def format_report(
    deltas: list[MetricDelta],
    missing_current: list[str],
    missing_baseline: list[str],
) -> str:
    """Human-readable diff table, regressions first."""
    lines = ["perf-report: current vs baseline", ""]
    if not deltas:
        lines.append("no overlapping benches/metrics to compare")

    def sort_key(d: MetricDelta) -> tuple:
        return (not d.regressed, not d.improved, d.bench, d.metric.name)

    for d in sorted(deltas, key=sort_key):
        if d.regressed:
            tag = "REGRESSED"
        elif d.improved:
            tag = "improved"
        elif not d.gated:
            tag = "info (machines differ)"
        else:
            tag = "ok"
        lines.append(
            f"  [{tag:>21}] {d.bench}.{d.metric.name}: "
            f"{_fmt_value(d.baseline, d.metric.unit)} -> "
            f"{_fmt_value(d.current, d.metric.unit)} "
            f"({d.ratio:+.1%} vs band {d.band / abs(d.baseline):.1%})"
            if d.baseline
            else f"  [{tag:>21}] {d.bench}.{d.metric.name}: "
            f"{_fmt_value(d.baseline, d.metric.unit)} -> "
            f"{_fmt_value(d.current, d.metric.unit)} "
            f"(abs band {d.band:.4g})"
        )
    if missing_current:
        lines.append("")
        lines.append(
            "benches in baseline but not in this run (not gated): "
            + ", ".join(missing_current)
        )
    if missing_baseline:
        lines.append("")
        lines.append(
            "new benches with no baseline yet (gate after promote): "
            + ", ".join(missing_baseline)
        )
    regressed = [d for d in deltas if d.regressed]
    lines.append("")
    if regressed:
        lines.append(f"{len(regressed)} regression(s) beyond noise bands")
    else:
        gated = sum(1 for d in deltas if d.gated)
        lines.append(f"no regressions ({gated} gated, {len(deltas) - gated} informational)")
    return "\n".join(lines)


def gate(deltas: list[MetricDelta]) -> int:
    """CI verdict: 1 if any gated metric regressed, else 0."""
    return 1 if any(d.regressed for d in deltas) else 0


def promote(current_dir: str | Path, baseline_dir: str | Path) -> list[str]:
    """Copy current records over the baseline (re-validating each one).

    Promotion re-serialises through :class:`BenchRecord` rather than
    copying bytes, so a hand-edited or truncated record can never become
    the baseline. History is not carried over — the baseline is a state,
    not a trajectory.
    """
    promoted: list[str] = []
    for name, record in sorted(load_bench_dir(current_dir).items()):
        save_bench_record(record, baseline_dir, history=False)
        promoted.append(name)
    return promoted
