"""One function per figure of Section VI.

Each function runs the corresponding experiment at a configurable
(laptop-sized) scale, returns the raw sweep data, and renders the same
series the paper plots — query time means/stds in panel (a), top-k query
counts and candidate-set sizes in panel (b). The benchmark files under
``benchmarks/`` are thin wrappers that also assert the qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, stdev

import numpy as np

from repro.core.record import Dataset
from repro.data import (
    generate_nba,
    generate_network,
    nba_variant,
    network_variant,
    synthetic_dataset,
)
from repro.experiments.harness import run_algorithm_suite, run_sweep
from repro.experiments.report import format_series, format_table
from repro.experiments.resultstore import BenchMetric

__all__ = [
    "FigureResult",
    "suite_metrics",
    "figure8_vary_tau",
    "figure9_vary_k",
    "figure10_vary_interval",
    "figure11_vary_dimension",
    "figure12_scalability",
    "figure13_runtime_distribution",
    "nba2_dataset",
    "network2_dataset",
]

#: Sweep values, as fractions/absolutes mirroring Table III (downsampled).
TAU_FRACTIONS = [0.01, 0.05, 0.10, 0.25, 0.50]
K_VALUES = [5, 10, 25, 50]
INTERVAL_FRACTIONS = [0.10, 0.30, 0.50, 0.80]
DIMENSIONS = [2, 3, 5, 10, 20, 37]


@dataclass
class FigureResult:
    """A rendered experiment: report text plus raw per-point data.

    ``metrics`` is the structured telemetry persisted as
    ``BENCH_<name>.json`` for ``repro perf-report`` / ``perf-gate``.
    """

    name: str
    report: str
    data: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.report


def suite_metrics(rows_by_param: dict) -> list[BenchMetric]:
    """Per-algorithm telemetry aggregated across one sweep's settings.

    Two numbers per algorithm: the mean query time (machine-bound, wide
    band — the figures run at laptop scale) and the mean top-k subquery
    count, which is deterministic given the seed and therefore portable
    with a tight band — the early-warning metric for an algorithmic
    change hiding behind wall-clock noise.
    """
    per_algo: dict[str, list] = {}
    for rows in rows_by_param.values():
        for name, row in rows.items():
            per_algo.setdefault(name, []).append(row)
    metrics: list[BenchMetric] = []
    for name, rows in sorted(per_algo.items()):
        metrics.append(
            BenchMetric(
                f"{name}_mean_ms",
                round(mean(r.mean_ms for r in rows), 3),
                "ms",
                "lower",
                0.35,
            )
        )
        metrics.append(
            BenchMetric(
                f"{name}_topk_queries",
                round(mean(r.mean_topk_queries for r in rows), 2),
                "",
                "lower",
                0.02,
                portable=True,
            )
        )
    return metrics


def nba2_dataset(n: int = 20_000, seed: int = 7) -> Dataset:
    """The NBA-2 workload (points, assists)."""
    return nba_variant(generate_nba(n, seed=seed), 2)


def network2_dataset(n: int = 20_000, seed: int = 11) -> Dataset:
    """The Network-2 workload (first two attributes)."""
    return network_variant(generate_network(n, seed=seed), 2)


def _sweep_report(sweep, title: str) -> str:
    parts = [
        format_series(
            sweep.parameter,
            sweep.parameter_values(),
            sweep.series("mean_ms"),
            title=f"{title} — (a) query time [ms]",
        ),
        format_series(
            sweep.parameter,
            sweep.parameter_values(),
            sweep.series("mean_topk_queries"),
            value_format="{:.0f}",
            title=f"{title} — (b) # top-k queries",
        ),
        format_series(
            sweep.parameter,
            sweep.parameter_values(),
            {
                "s-band |C|": sweep.series("mean_candidate_set")["s-band"],
                "answer |S|": sweep.series("mean_answer_size")["t-hop"],
            }
            if "s-band" in sweep.series("mean_candidate_set")
            else {"answer |S|": sweep.series("mean_answer_size")["t-hop"]},
            value_format="{:.0f}",
            title=f"{title} — candidate-set vs answer size",
        ),
    ]
    return "\n\n".join(parts)


def figure8_vary_tau(dataset: Dataset, n_preferences: int = 3, seed: int = 0) -> FigureResult:
    """Figure 8: all five algorithms as the durability tau varies."""
    sweep = run_sweep(
        dataset, "tau_fraction", TAU_FRACTIONS, n_preferences=n_preferences, seed=seed
    )
    return FigureResult(
        name=f"fig8-{dataset.name}",
        report=_sweep_report(sweep, f"Figure 8 ({dataset.name}): vary tau"),
        data={"sweep": sweep},
        metrics=suite_metrics(sweep.rows),
    )


def figure9_vary_k(dataset: Dataset, n_preferences: int = 3, seed: int = 0) -> FigureResult:
    """Figure 9: all five algorithms as k varies."""
    sweep = run_sweep(dataset, "k", K_VALUES, n_preferences=n_preferences, seed=seed)
    return FigureResult(
        name=f"fig9-{dataset.name}",
        report=_sweep_report(sweep, f"Figure 9 ({dataset.name}): vary k"),
        data={"sweep": sweep},
        metrics=suite_metrics(sweep.rows),
    )


def figure10_vary_interval(
    dataset: Dataset, n_preferences: int = 3, seed: int = 0
) -> FigureResult:
    """Figure 10: all five algorithms as the query interval length varies."""
    sweep = run_sweep(
        dataset,
        "interval_fraction",
        INTERVAL_FRACTIONS,
        n_preferences=n_preferences,
        seed=seed,
    )
    return FigureResult(
        name=f"fig10-{dataset.name}",
        report=_sweep_report(sweep, f"Figure 10 ({dataset.name}): vary |I|"),
        data={"sweep": sweep},
        metrics=suite_metrics(sweep.rows),
    )


def figure11_vary_dimension(
    n: int = 12_000,
    dimensions: list[int] | None = None,
    n_preferences: int = 3,
    seed: int = 0,
) -> FigureResult:
    """Figure 11: T-Base/T-Hop/S-Band/S-Hop across Network-X dimensions.

    S-Base is omitted, as in the paper ("clearly inferior").
    """
    dimensions = dimensions or DIMENSIONS
    full = generate_network(n, seed=11)
    algorithms = ["t-base", "t-hop", "s-band", "s-hop"]
    rows = {}
    for d in dimensions:
        data = network_variant(full, d)
        rows[d] = run_algorithm_suite(
            data, algorithms=algorithms, n_preferences=n_preferences, seed=seed
        )
    series_ms = {a: [rows[d][a].mean_ms for d in dimensions] for a in algorithms}
    series_q = {a: [rows[d][a].mean_topk_queries for d in dimensions] for a in algorithms}
    series_c = {
        "s-band |C|": [rows[d]["s-band"].mean_candidate_set for d in dimensions],
        "answer |S|": [rows[d]["t-hop"].mean_answer_size for d in dimensions],
    }
    report = "\n\n".join(
        [
            format_series("d", dimensions, series_ms, title="Figure 11 — (1) query time [ms] vs d"),
            format_series(
                "d", dimensions, series_q, value_format="{:.0f}",
                title="Figure 11 — (2) # top-k queries vs d",
            ),
            format_series(
                "d", dimensions, series_c, value_format="{:.0f}",
                title="Figure 11 — candidate-set size |C| vs d",
            ),
        ]
    )
    return FigureResult(
        name="fig11-network",
        report=report,
        data={"rows": rows},
        metrics=suite_metrics(rows),
    )


def figure12_scalability(
    kind: str,
    sizes: list[int] | None = None,
    n_preferences: int = 3,
    seed: int = 0,
    with_band: bool = True,
) -> FigureResult:
    """Figure 12: scalability over Syn-X (IND or ANTI) sizes.

    The query interval scales with the data (fixed 50% fraction), as in
    the paper.
    """
    sizes = sizes or [10_000, 20_000, 40_000]
    algorithms = ["s-base", "t-hop", "s-hop"] + (["s-band"] if with_band else [])
    rows = {}
    for n in sizes:
        data = synthetic_dataset(kind, n, 2, seed=1)
        rows[n] = run_algorithm_suite(
            data, algorithms=algorithms, n_preferences=n_preferences, seed=seed
        )
    series_ms = {a: [rows[n][a].mean_ms for n in sizes] for a in algorithms}
    series_q = {a: [rows[n][a].mean_topk_queries for n in sizes] for a in algorithms}
    parts = [
        format_series("n", sizes, series_ms, title=f"Figure 12 ({kind.upper()}) — (a) query time [ms]"),
        format_series(
            "n", sizes, series_q, value_format="{:.0f}",
            title=f"Figure 12 ({kind.upper()}) — (b) # top-k queries",
        ),
    ]
    if with_band:
        series_c = {
            "s-band |C|": [rows[n]["s-band"].mean_candidate_set for n in sizes],
            "answer |S|": [rows[n]["t-hop"].mean_answer_size for n in sizes],
        }
        parts.append(
            format_series(
                "n", sizes, series_c, value_format="{:.0f}",
                title=f"Figure 12 ({kind.upper()}) — |C| vs |S|",
            )
        )
    return FigureResult(
        name=f"fig12-{kind}",
        report="\n\n".join(parts),
        data={"rows": rows},
        metrics=suite_metrics(rows),
    )


def figure13_runtime_distribution(
    n: int = 16_000,
    n_subsets: int = 12,
    n_preferences: int = 2,
    tau_fraction: float = 0.03,
    seed: int = 0,
) -> FigureResult:
    """Figure 13: runtime distribution over random 5-d NBA attribute subsets.

    T-Hop and S-Hop should cluster tightly; S-Band's runtimes spread wide
    because its candidate set tracks the data distribution. ``tau_fraction``
    defaults below the Table III default so that candidate sets are large
    enough for their spread to dominate S-Band's cost at laptop scale.
    """
    full = generate_nba(n, seed=7)
    rng = np.random.default_rng(seed)
    algorithms = ["t-hop", "s-band", "s-hop"]
    tau = max(1, int(n * tau_fraction))
    times: dict[str, list[float]] = {a: [] for a in algorithms}
    topk_counts: dict[str, list[float]] = {a: [] for a in algorithms}
    candidate_sizes: list[float] = []
    for _ in range(n_subsets):
        dims = sorted(rng.choice(15, size=5, replace=False).tolist())
        data = full.select_attributes(dims, name=f"nba5-{dims}")
        rows = run_algorithm_suite(
            data, algorithms=algorithms, tau=tau, n_preferences=n_preferences, seed=seed
        )
        for a in algorithms:
            times[a].append(rows[a].mean_ms)
            topk_counts[a].append(rows[a].mean_topk_queries)
        candidate_sizes.append(rows["s-band"].mean_candidate_set)
    summary = [
        {
            "algorithm": a,
            "mean_ms": round(mean(ts), 2),
            "std_ms": round(stdev(ts) if len(ts) > 1 else 0.0, 2),
            "min_ms": round(min(ts), 2),
            "max_ms": round(max(ts), 2),
            "spread": round(max(ts) / max(min(ts), 1e-9), 2),
        }
        for a, ts in times.items()
    ]
    report = format_table(
        summary,
        ["algorithm", "mean_ms", "std_ms", "min_ms", "max_ms", "spread"],
        title=f"Figure 13 — runtime distribution over {n_subsets} random 5-d NBA subsets",
    )
    report += (
        f"\ns-band |C| across subsets: min={min(candidate_sizes):.0f} "
        f"max={max(candidate_sizes):.0f} "
        f"(x{max(candidate_sizes) / max(min(candidate_sizes), 1):.1f})"
    )
    return FigureResult(
        name="fig13-nba5",
        report=report,
        data={
            "times": times,
            "topk_counts": topk_counts,
            "candidate_sizes": candidate_sizes,
        },
        metrics=[
            BenchMetric(
                f"{a}_mean_ms", round(mean(ts), 3), "ms", "lower", 0.35
            )
            for a, ts in sorted(times.items())
        ]
        + [
            # The reproduced claim: S-Band's runtime spread dwarfs the
            # hop algorithms'. Spread is a same-run ratio, so portable.
            BenchMetric(
                "sband_spread",
                round(max(times["s-band"]) / max(min(times["s-band"]), 1e-9), 2),
                "x",
                "higher",
                0.50,
                portable=True,
            ),
        ],
    )
