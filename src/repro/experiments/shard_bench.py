"""The shard scaling benchmark (and its CLI/CI entry point).

Drives the same Zipfian request stream closed-loop through
``DurableTopKService(ShardedBackend(...))`` at several shard counts and
reports the throughput-vs-shards curve. One shard is the baseline: the
full scatter-gather machinery (pipes, pickled sub-requests, the merge)
with none of the parallelism, so the curve isolates what extra
*processes* buy — on an N-core machine the work escapes the GIL and the
curve should climb until shards exceed cores, while on one core it
should hold roughly flat (the IPC tax, paid but not repaid).

``verify=True`` re-derives every response of every shard count on one
unsharded in-process engine and counts mismatches — byte-identical ids
is the exactness contract of the scatter-gather merge. The CI smoke job
(``repro shard-bench --smoke``) runs a scaled-down verified round and
exits non-zero on any rejection, mismatch, or unexpected worker
restart.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.engine import DurableTopKEngine
from repro.data import independent_uniform
from repro.experiments.report import format_table
from repro.experiments.resultstore import BenchMetric
from repro.service import (
    DurableTopKService,
    MetricsSnapshot,
    ShardedBackend,
    WorkloadGenerator,
    WorkloadSpec,
    run_closed_loop,
)
from repro.shard import ShardCoordinator, ShardedDataset, partition_spans

__all__ = ["ShardBenchResult", "shard_throughput_bench", "SMOKE_DEFAULTS"]

#: Scaled-down parameters for the CI smoke run (seconds, not minutes).
#: Shard count 3 keeps multi-span straddling in play; the FUTURE share
#: exercises the reversed merge path under concurrency.
SMOKE_DEFAULTS = {
    "n": 4_000,
    "requests": 160,
    "clients": 4,
    "shard_counts": (1, 3),
    "n_preferences": 16,
    "rounds": 1,
    "future_fraction": 0.25,
}


@dataclass
class ShardBenchResult:
    """Report text plus raw numbers (mirrors ``ServiceBenchResult``).

    ``metrics`` is the structured telemetry persisted as
    ``BENCH_<name>.json`` for ``repro perf-report`` / ``perf-gate``.
    """

    name: str
    report: str
    data: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.report


@dataclass
class _Round:
    """One timed closed-loop drive at one shard count."""

    snapshot: MetricsSnapshot
    responses: list
    wall_seconds: float
    coordinator_stats: dict

    @property
    def rps(self) -> float:
        return len(self.responses) / self.wall_seconds


def _run_sharded(dataset, stream, clients, shards, workers, rounds):
    """Warm up once, then time ``rounds`` drives; return the best round."""
    sharded = ShardedDataset(dataset, shards)
    coordinator = ShardCoordinator(sharded, pool_capacity=256)
    best: _Round | None = None
    try:
        with DurableTopKService(
            ShardedBackend(coordinator),
            workers=workers,
            max_queue=max(4096, 4 * len(stream)),
            max_batch=16,
            pool_capacity=256,
        ) as service:
            coordinator.health_check()
            run_closed_loop(service.query, stream, clients=clients)  # warmup
            for _ in range(max(1, rounds)):
                # Full reset per round: percentiles, fanout and
                # throughput must describe this round only, not the
                # cumulative history including the warmup drive.
                # (reset(), unlike swapping in a fresh collector, keeps
                # the backend's metrics_source registered.)
                service.metrics.reset()
                start = time.perf_counter()
                responses = run_closed_loop(service.query, stream, clients=clients)
                wall = time.perf_counter() - start
                candidate = _Round(
                    service.metrics.snapshot(),
                    responses,
                    wall,
                    coordinator.stats(),
                )
                if best is None or candidate.rps > best.rps:
                    best = candidate
    finally:
        sharded.close()
    assert best is not None
    return best


def _row(shards, workers, best, baseline_rps):
    snap = best.snapshot
    speedup = best.rps / baseline_rps if baseline_rps else 1.0
    return {
        "shards": shards,
        "workers": workers,
        "req/s": f"{best.rps:.0f}",
        "speedup": f"{speedup:.2f}x",
        "p50 ms": f"{snap.latency_p50 * 1e3:.2f}",
        "p95 ms": f"{snap.latency_p95 * 1e3:.2f}",
        "p99 ms": f"{snap.latency_p99 * 1e3:.2f}",
        "fanout": f"{snap.mean_fanout:.2f}",
        "rejected": snap.rejected_total,
        "restarts": best.coordinator_stats["restarts"],
    }


def shard_throughput_bench(
    n: int = 60_000,
    requests: int = 800,
    clients: int = 8,
    shard_counts: Sequence[int] = (1, 2, 4),
    n_preferences: int = 64,
    zipf_s: float = 0.9,
    rounds: int = 2,
    seed: int = 7,
    future_fraction: float = 0.0,
    verify: bool = False,
) -> ShardBenchResult:
    """Throughput vs shard count under one workload; see module docstring.

    Service worker threads are sized at ``2 * shards`` (at least 4):
    they mostly sleep in pipe waits, so over-provisioning them keeps
    every shard process fed without thread-count becoming the variable
    under test.
    """
    dataset = independent_uniform(n, 2, seed=seed)
    spec = WorkloadSpec(
        n_preferences=n_preferences,
        d=2,
        zipf_s=zipf_s,
        k_choices=(5, 10),
        tau_fractions=(0.05, 0.10),
        interval_fractions=(0.02, 0.05),
        algorithms=("t-hop",),
        future_fraction=future_fraction,
        seed=seed,
    )
    generator = WorkloadGenerator(spec, dataset.n)
    stream = generator.requests(requests)

    bests: dict[int, _Round] = {}
    for shards in shard_counts:
        workers = max(4, 2 * shards)
        bests[shards] = _run_sharded(dataset, stream, clients, shards, workers, rounds)

    baseline = min(shard_counts)
    baseline_rps = bests[baseline].rps
    rows = []
    for shards in shard_counts:
        rows.append(_row(shards, max(4, 2 * shards), bests[shards], baseline_rps))

    incorrect = 0
    rejected = 0
    verified = None
    for best in bests.values():
        rejected += sum(1 for response in best.responses if not response.ok)
    if verify:
        verified = 0
        reference = DurableTopKEngine(dataset)
        # One serial reference pass; the same stream is replayed at every
        # shard count, so the expected answers are shared across counts.
        expected_ids = [
            reference.query(request.as_query(), request.scorer, request.algorithm).ids
            for request in stream
        ]
        for best in bests.values():
            for response, expected in zip(best.responses, expected_ids):
                if not response.ok:
                    continue  # counted in `rejected`, not a merge mismatch
                if response.result.ids == expected:
                    verified += 1
                else:
                    incorrect += 1

    cores = os.cpu_count() or 1
    curve = {shards: round(bests[shards].rps, 1) for shards in shard_counts}
    peak = max(shard_counts, key=lambda s: bests[s].rps)
    header = (
        f"shard scaling: {clients} clients, closed-loop, {requests} requests, "
        f"best of {max(1, rounds)} round(s), {cores} core(s)\n"
        f"workload: n={n} d=2, {n_preferences} preferences (zipf s={zipf_s}), "
        f"t-hop, tau~{spec.tau_fractions}, |I|~{spec.interval_fractions}, "
        f"future={future_fraction}\n"
        f"one worker process per shard; speedup is vs the {baseline}-shard "
        f"baseline (same scatter-gather machinery, no parallelism)"
    )
    lines = [
        header,
        format_table(rows),
        f"peak: {curve[peak]:.0f} req/s at {peak} shard(s)   "
        f"incorrect: {incorrect}   rejected: {rejected}   "
        f"restarts: {sum(b.coordinator_stats['restarts'] for b in bests.values())}",
    ]
    if verified is not None:
        total = len(shard_counts) * requests
        lines.append(f"serial verification: {verified}/{total} identical")
    if cores < 4:
        lines.append(
            f"note: only {cores} core(s) visible — the scaling assertion "
            f"(>= 2x at 4 shards) is meaningful on 4+ cores"
        )
    report = "\n".join(lines)
    restarts = {shards: bests[shards].coordinator_stats["restarts"] for shards in bests}
    return ShardBenchResult(
        name="shard_throughput",
        report=report,
        data={
            "curve": curve,
            "per_shard": {
                shards: {
                    **bests[shards].snapshot.as_dict(),
                    "wall_seconds": round(bests[shards].wall_seconds, 3),
                    "rps": round(bests[shards].rps, 1),
                    "coordinator": bests[shards].coordinator_stats,
                }
                for shards in shard_counts
            },
            "offered_fanout": {
                shards: generator.fanout_profile(stream, partition_spans(dataset.n, shards))
                for shards in shard_counts
            },
            "baseline_shards": baseline,
            "speedup": {
                shards: round(bests[shards].rps / baseline_rps, 3)
                for shards in shard_counts
            },
            "incorrect": incorrect,
            "rejected": rejected,
            "restarts": restarts,
            "verified": verified,
            "requests": requests,
            "clients": clients,
            "cores": cores,
        },
        metrics=[
            BenchMetric(
                "peak_rps", round(bests[peak].rps, 1), "req/s", "higher", 0.25
            ),
            # Scaling shape is a same-run ratio; it gates across machines
            # with matching core counts (cpu_count is part of the
            # fingerprint, so a 1-core flat curve never gates an 8-core
            # run).
            BenchMetric(
                "peak_speedup",
                round(bests[peak].rps / baseline_rps, 3),
                "x",
                "higher",
                0.30,
            ),
            BenchMetric("incorrect", incorrect, "", "lower", 0.0, portable=True),
            BenchMetric(
                "rejected", rejected, "", "lower", 0.0, abs_noise=5, portable=True
            ),
            BenchMetric(
                "restarts",
                sum(restarts.values()),
                "",
                "lower",
                0.0,
                abs_noise=2,
                portable=True,
            ),
        ],
    )
