"""The batched-execution benchmark (and its CLI/CI entry point).

Measures what one shared index traversal buys: the same same-preference
request batches run twice through one warm
:class:`~repro.core.engine.EngineSession` — once as a serial ``query``
loop, once through ``query_batch`` — and the per-query *CPU* time
(``time.process_time``) of the two sides is compared per batch size.
The workload draws each preference's queries from a small Zipfian-hot
shape catalogue (``WorkloadSpec.shapes_per_preference``), the
dashboard-tile traffic the serving layer actually batches: repeated
shapes dedupe onto one execution, near-duplicates share memoised
durability windows, and the batch's opening windows collapse into one
vectorised ``np.partition`` pass.

Because both sides execute anyway, the benchmark *always* checks the
batched answers byte-for-byte (ids and per-query ``QueryStats``)
against the serial loop — a timing figure over wrong answers is
worthless. ``verify=True`` (the ``--smoke`` gate) additionally drives a
pipelined round through ``DurableTopKService`` and re-derives every
response on a fresh reference engine, covering the service's
single-flight fan-out path end to end.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.engine import DurableTopKEngine
from repro.data import independent_uniform
from repro.experiments.report import format_table
from repro.experiments.resultstore import BenchMetric
from repro.service import (
    DurableTopKService,
    EngineBackend,
    WorkloadGenerator,
    WorkloadSpec,
    run_pipelined,
)

__all__ = ["BatchBenchResult", "batch_speedup_bench", "SMOKE_DEFAULTS"]

#: Scaled-down parameters for the CI smoke run (seconds, not minutes).
#: Size 1 keeps the no-batching baseline in the curve; 16 is the
#: acceptance point of the >= 3x per-query CPU claim.
SMOKE_DEFAULTS = {
    "n": 6_000,
    "batch_sizes": (1, 8, 16),
    "batches_per_size": 3,
    "n_preferences": 8,
    "service_requests": 120,
}


@dataclass
class BatchBenchResult:
    """Report text plus raw numbers (mirrors ``ServiceBenchResult``).

    ``metrics`` is the structured telemetry persisted as
    ``BENCH_<name>.json`` for ``repro perf-report`` / ``perf-gate``.
    """

    name: str
    report: str
    data: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.report


def _flight_signature(request) -> tuple:
    return (request.k, request.tau, request.interval, request.direction,
            request.algorithm)


def _compare(batched, serial) -> int:
    """Mismatches between one batch's two executions (byte-identity)."""
    bad = 0
    for got, want in zip(batched, serial):
        if got.ids != want.ids or got.stats.as_dict() != want.stats.as_dict():
            bad += 1
    return bad


def batch_speedup_bench(
    n: int = 30_000,
    batch_sizes: Sequence[int] = (1, 4, 8, 16),
    batches_per_size: int = 8,
    n_preferences: int = 16,
    shapes_per_preference: int = 6,
    zipf_s: float = 1.1,
    shape_zipf_s: float = 1.2,
    future_fraction: float = 0.2,
    seed: int = 7,
    verify: bool = False,
    service_requests: int = 400,
    service_clients: int = 8,
    service_workers: int = 4,
) -> BatchBenchResult:
    """Per-query CPU, serial loop vs ``query_batch``, per batch size.

    Every batch is a same-preference group exactly as the service's
    per-preference batching produces them (``preference_batch``); both
    sides run against the same warm session, so the measured gap is the
    shared traversal, dedupe and vectorised priming — not cache warmth.
    """
    dataset = independent_uniform(n, 2, seed=seed)
    spec = WorkloadSpec(
        n_preferences=n_preferences,
        d=2,
        zipf_s=zipf_s,
        k_choices=(5, 10),
        tau_fractions=(0.04, 0.08),
        interval_fractions=(0.02, 0.04),
        algorithms=("t-hop",),
        future_fraction=future_fraction,
        seed=seed,
        shapes_per_preference=shapes_per_preference,
        shape_zipf_s=shape_zipf_s,
    )
    generator = WorkloadGenerator(spec, dataset.n)
    engine = DurableTopKEngine(dataset)

    mismatches = 0
    rows = []
    per_size: dict[int, dict] = {}
    sessions: dict = {}
    for size in batch_sizes:
        batches = [generator.preference_batch(size) for _ in range(batches_per_size)]
        serial_cpu = 0.0
        batched_cpu = 0.0
        queries = 0
        distinct = 0
        for batch in batches:
            key = id(batch[0].scorer)
            session = sessions.get(key)
            if session is None:
                session = engine.session(batch[0].scorer)
                sessions[key] = session
            queries_of = [request.as_query() for request in batch]
            algorithms = [request.algorithm for request in batch]
            # Untimed warmup: index build and first-touch allocations
            # belong to neither side.
            session.query_batch(queries_of, algorithm=algorithms)

            start = time.process_time()
            serial = [
                session.query(query, algorithm=name)
                for query, name in zip(queries_of, algorithms)
            ]
            serial_cpu += time.process_time() - start

            start = time.process_time()
            batched = session.query_batch(queries_of, algorithm=algorithms)
            batched_cpu += time.process_time() - start

            mismatches += _compare(batched, serial)
            queries += len(batch)
            distinct += len({_flight_signature(request) for request in batch})

        speedup = serial_cpu / batched_cpu if batched_cpu > 0 else float("inf")
        per_size[size] = {
            "serial_ms_per_query": round(serial_cpu / queries * 1e3, 4),
            "batched_ms_per_query": round(batched_cpu / queries * 1e3, 4),
            "speedup": round(speedup, 3),
            "queries": queries,
            "unique_fraction": round(distinct / queries, 3),
        }
        rows.append(
            {
                "batch": size,
                "serial ms/q": f"{serial_cpu / queries * 1e3:.3f}",
                "batched ms/q": f"{batched_cpu / queries * 1e3:.3f}",
                "speedup": f"{speedup:.2f}x",
                "unique": f"{distinct}/{queries}",
            }
        )
    for session in sessions.values():
        session.close()

    # ------------------------------------------------------------------
    # Service-level round: the same traffic shape through the batching,
    # single-flight service — measures what reaches the backend.
    # ------------------------------------------------------------------
    service_generator = WorkloadGenerator(spec, dataset.n)
    stream = service_generator.requests(service_requests)
    rejected = 0
    incorrect = 0
    verified = None
    with DurableTopKService(
        EngineBackend(engine),
        workers=service_workers,
        max_queue=max(4096, 4 * len(stream)),
        max_batch=max(batch_sizes),
        pool_capacity=max(64, n_preferences),
    ) as service:
        responses = run_pipelined(service.submit, stream, clients=service_clients)
        snapshot = service.metrics.snapshot()
    rejected = sum(1 for response in responses if not response.ok)
    if verify:
        verified = 0
        reference = DurableTopKEngine(dataset)
        for request, response in zip(stream, responses):
            if not response.ok:
                continue
            expected = reference.query(
                request.as_query(), request.scorer, request.algorithm
            )
            if response.result.ids == expected.ids:
                verified += 1
            else:
                incorrect += 1

    cores = os.cpu_count() or 1
    peak = max(batch_sizes)
    header = (
        f"batched execution: one traversal answers a whole batch "
        f"({cores} core(s), CPU time via process_time)\n"
        f"workload: n={n} d=2, {n_preferences} preferences (zipf s={zipf_s}), "
        f"{shapes_per_preference} shapes/preference (zipf s={shape_zipf_s}), "
        f"t-hop, tau~{spec.tau_fractions}, |I|~{spec.interval_fractions}, "
        f"future={future_fraction}\n"
        f"{batches_per_size} same-preference batches per size, both sides on "
        f"one warm session; byte-identity checked on every batch"
    )
    lines = [
        header,
        format_table(rows),
        f"per-query CPU drop at batch {peak}: "
        f"{per_size[peak]['speedup']:.2f}x   mismatches: {mismatches}",
        f"service round ({service_requests} pipelined requests): "
        f"{snapshot.throughput:.0f} req/s, mean batch "
        f"{snapshot.mean_batch_size:.2f}, {snapshot.coalesced} coalesced, "
        f"{rejected} rejected",
    ]
    if verified is not None:
        lines.append(
            f"serial verification (service round): {verified}/"
            f"{service_requests} identical, {incorrect} incorrect"
        )
    report = "\n".join(lines)
    return BatchBenchResult(
        name="batch_speedup",
        report=report,
        data={
            "batch_sizes": list(batch_sizes),
            "per_size": per_size,
            "speedup": {size: per_size[size]["speedup"] for size in batch_sizes},
            "mismatches": mismatches,
            "incorrect": incorrect,
            "rejected": rejected,
            "verified": verified,
            "requests": service_requests,
            "coalesced": snapshot.coalesced,
            "mean_batch_size": round(snapshot.mean_batch_size, 3),
            "throughput_rps": round(snapshot.throughput, 1),
            "cores": cores,
        },
        metrics=[
            # CPU-time ratio on one warm session: the cleanest
            # machine-independent number this bench produces.
            BenchMetric(
                "peak_speedup",
                round(per_size[peak]["speedup"], 3),
                "x",
                "higher",
                0.25,
                portable=True,
            ),
            BenchMetric(
                "throughput_rps",
                round(snapshot.throughput, 1),
                "req/s",
                "higher",
                0.25,
            ),
            BenchMetric(
                "mean_batch_size",
                round(snapshot.mean_batch_size, 3),
                "",
                "higher",
                0.30,
                portable=True,
            ),
            BenchMetric("mismatches", mismatches, "", "lower", 0.0, portable=True),
            BenchMetric("incorrect", incorrect, "", "lower", 0.0, portable=True),
        ],
    )
