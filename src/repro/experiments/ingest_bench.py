"""Ingest throughput & freshness benchmark (and its CLI/CI entry point).

Measures the live ingestion pipeline end to end: a
:class:`~repro.ingest.live.LiveDataset` (background sealer + compactor)
behind the session-pooled :class:`~repro.service.service.DurableTopKService`
via :class:`~repro.service.backends.LiveBackend`, with writer threads
appending micro-batches flat out *while* closed-loop clients query.

Two rounds run over the same request stream:

* **static** — no writers; the service answers over the seeded prefix.
  This is the in-benchmark replica of the static-dataset baseline in
  ``results/service_throughput.txt``.
* **live** — writers ingest for the whole round. The gates compare this
  round's p95 latency against the static round (ingestion may cost at
  most 2x) and require a sustained append rate.

Freshness is measured per response as *staleness*: the number of rows
that landed between the snapshot a query answered over and its
completion (converted to milliseconds via the measured append rate). A
snapshot is always current as of execution start, so staleness ≈ rows
ingested during one query execution — the lag a dashboard tile would
observe.

``verify_sample > 0`` re-derives that many responses serially: because
the dataset is append-only, the snapshot a response served equals the
final dataset's prefix of ``snapshot_n`` rows, so the brute-force oracle
over that prefix must reproduce the concurrent answer exactly. The CI
smoke job runs with every response verified.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.reference import brute_force_durable_topk
from repro.experiments.report import format_table
from repro.experiments.resultstore import BenchMetric
from repro.ingest.live import LiveDataset
from repro.service import (
    DurableTopKService,
    LiveBackend,
    WorkloadGenerator,
    WorkloadSpec,
    percentile,
    run_closed_loop,
)

__all__ = ["IngestBenchResult", "ingest_throughput_bench", "SMOKE_DEFAULTS"]

#: Scaled-down parameters for the CI smoke run (seconds, not minutes).
SMOKE_DEFAULTS = {
    "n0": 6_000,
    "requests": 120,
    "clients": 4,
    "workers": 4,
    "writers": 1,
    "n_preferences": 16,
    "seal_rows": 1_000,
    "verify_sample": None,  # None = verify everything
    "max_ingest_rows": 60_000,
    "target_rate": None,  # burst mode: the smoke also exercises saturation
}


@dataclass
class IngestBenchResult:
    """Report text plus raw numbers (mirrors ``ServiceBenchResult``).

    ``metrics`` is the structured telemetry persisted as
    ``BENCH_<name>.json`` for ``repro perf-report`` / ``perf-gate``.
    """

    name: str
    report: str
    data: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.report


def _drive(service, stream, clients: int) -> tuple[list, float]:
    start = time.perf_counter()
    responses = run_closed_loop(service.query, stream, clients=clients)
    return responses, time.perf_counter() - start


def _latency_ms(responses) -> dict[str, float]:
    totals = sorted(r.total_seconds for r in responses)
    return {
        "p50": percentile(totals, 50) * 1e3,
        "p95": percentile(totals, 95) * 1e3,
        "p99": percentile(totals, 99) * 1e3,
    }


def ingest_throughput_bench(
    n0: int = 40_000,
    d: int = 2,
    requests: int = 800,
    clients: int = 4,
    workers: int = 4,
    writers: int = 1,
    batch_rows: int = 64,
    n_preferences: int = 32,
    zipf_s: float = 0.9,
    seal_rows: int = 4096,
    compact_fanout: int = 8,
    seed: int = 7,
    verify_sample: int | None = 0,
    max_ingest_rows: int = 200_000,
    target_rate: float | None = 25_000.0,
) -> IngestBenchResult:
    """Run the static and live rounds; see the module docstring.

    ``verify_sample``: how many live-round responses to re-derive
    serially against the brute-force oracle (``None`` = all, 0 = none).
    ``max_ingest_rows`` caps the volume written during the live round
    (shared across writers): the append path is so much faster than the
    query path that an uncapped writer would grow the dataset — and with
    it compaction and index-rebuild costs — without bound while clients
    drain their requests. ``target_rate`` paces the writers (rows/sec,
    ``None`` = flat out): the gated experiment offers a steady load well
    above the 10k/s bar and checks the pipeline absorbs it without
    falling behind *and* without starving queries; an unpaced writer
    measures burst capacity instead (~400k rows/s on one core) but
    monopolises the GIL, which answers a different question. The append
    rate is measured over the writers' active time only.
    """
    rng = np.random.default_rng(seed)
    seeded = rng.random((n0, d))

    live = LiveDataset(d, seal_rows=seal_rows, compact_fanout=compact_fanout, name="ingest")
    live.extend(seeded)
    live.seal()
    setup_seals = live.seals  # so reported seals are the background sealer's
    live.start_maintenance()

    spec = WorkloadSpec(
        n_preferences=n_preferences,
        d=d,
        zipf_s=zipf_s,
        k_choices=(5, 10),
        tau_fractions=(0.05, 0.10),
        interval_fractions=(0.02, 0.05),
        algorithms=("t-hop", "t-base"),
        seed=seed,
    )
    # Intervals are drawn against the seeded size, so every request stays
    # valid as the dataset grows past it.
    generator = WorkloadGenerator(spec, n0)
    stream = generator.requests(requests)

    with DurableTopKService(
        LiveBackend(live),
        workers=workers,
        max_queue=max(4096, 4 * requests),
        max_batch=16,
        pool_capacity=n_preferences,
    ) as service:
        # Warmup + static round: no writers, fixed dataset.
        run_closed_loop(service.query, stream[: max(8, requests // 10)], clients=clients)
        static_responses, static_wall = _drive(service, stream, clients)

        # Live round: writers ingest micro-batches while clients query.
        stop = threading.Event()
        appended = [0] * writers
        write_walls = [0.0] * writers
        quota = max_ingest_rows // max(1, writers)

        pace = (
            batch_rows * writers / target_rate if target_rate else 0.0
        )  # seconds between one writer's batches

        def writer(w: int) -> None:
            wrng = np.random.default_rng(seed + 1000 + w)
            start = time.perf_counter()
            due = start
            while not stop.is_set() and appended[w] < quota:
                live.extend(wrng.random((batch_rows, d)))
                appended[w] += batch_rows
                if pace:
                    due += pace
                    delay = due - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
            write_walls[w] = time.perf_counter() - start

        threads = [
            threading.Thread(target=writer, args=(w,), name=f"ingest-writer-{w}")
            for w in range(writers)
        ]
        for thread in threads:
            thread.start()
        live_responses, live_wall = _drive(service, stream, clients)
        stop.set()
        for thread in threads:
            thread.join()

    total_appended = sum(appended)
    appends_per_sec = total_appended / max(max(write_walls), 1e-9)
    staleness_rows = sorted(
        r.result.extra.get("staleness_rows", 0) for r in live_responses if r.ok
    )
    staleness_p95_rows = percentile(staleness_rows, 95) if staleness_rows else 0.0
    staleness_p95_ms = (
        staleness_p95_rows / appends_per_sec * 1e3 if appends_per_sec else 0.0
    )

    rejected = sum(1 for r in live_responses + static_responses if not r.ok)
    static_lat = _latency_ms(static_responses)
    live_lat = _latency_ms(live_responses)

    # Serial re-derivation: a snapshot of an append-only dataset is a
    # prefix of the final frozen dataset, so each concurrent answer must
    # equal the brute-force oracle over its own prefix.
    verified = incorrect = None
    if verify_sample is None or verify_sample > 0:
        frozen = live.freeze()
        pick = range(len(stream)) if verify_sample is None else range(
            0, len(stream), max(1, len(stream) // verify_sample)
        )
        verified = incorrect = 0
        for i in pick:
            request, response = stream[i], live_responses[i]
            if not response.ok:
                continue  # already counted in `rejected`, not a wrong answer
            n_snap = response.result.extra["snapshot_n"]
            scores = request.scorer.scores(frozen.values[:n_snap])
            lo, hi = request.interval
            expected = brute_force_durable_topk(
                scores, request.k, lo, min(hi, n_snap - 1), request.tau
            )
            if response.result.ids == expected:
                verified += 1
            else:
                incorrect += 1

    pacing = f"paced at {target_rate:.0f} rows/s" if target_rate else "unpaced (burst)"
    header = (
        f"ingest throughput & freshness: {writers} writer(s) x {batch_rows}-row batches "
        f"({pacing}), {clients} clients, {workers} workers, {requests} requests/round\n"
        f"workload: seeded n0={n0} d={d}, {n_preferences} preferences (zipf s={zipf_s}), "
        f"t-hop/t-base, tau~{spec.tau_fractions}, |I|~{spec.interval_fractions}\n"
        f"pipeline: seal_rows={seal_rows}, compact_fanout={compact_fanout}, "
        f"background sealer+compactor"
    )
    rows = [
        {
            "round": "static (no ingest)",
            "req/s": f"{len(static_responses) / static_wall:.0f}",
            "p50 ms": f"{static_lat['p50']:.2f}",
            "p95 ms": f"{static_lat['p95']:.2f}",
            "appends/s": "-",
            "stale p95": "-",
        },
        {
            "round": "live (ingesting)",
            "req/s": f"{len(live_responses) / live_wall:.0f}",
            "p50 ms": f"{live_lat['p50']:.2f}",
            "p95 ms": f"{live_lat['p95']:.2f}",
            "appends/s": f"{appends_per_sec:.0f}",
            "stale p95": f"{staleness_p95_rows:.0f} rows / {staleness_p95_ms:.1f} ms",
        },
    ]
    lines = [
        header,
        format_table(rows),
        (
            f"ingested {total_appended} rows; final n={live.n}, "
            f"segments={live.segment_count}, background seals={live.seals - setup_seals}, "
            f"compactions={live.compactions}; rejected: {rejected}; "
            f"p95 ratio (live/static): {live_lat['p95'] / max(static_lat['p95'], 1e-9):.2f}x"
        ),
    ]
    if verified is not None:
        lines.append(
            f"serial re-derivation: {verified} identical, {incorrect} incorrect"
        )
    report = "\n".join(lines)
    return IngestBenchResult(
        name="ingest_throughput",
        report=report,
        data={
            "appends_per_sec": round(appends_per_sec, 1),
            "total_appended": total_appended,
            "final_n": live.n,
            "segments": live.segment_count,
            "seals": live.seals - setup_seals,  # background sealer only
            "compactions": live.compactions,
            "static_latency_ms": {k: round(v, 3) for k, v in static_lat.items()},
            "live_latency_ms": {k: round(v, 3) for k, v in live_lat.items()},
            "p95_ratio": round(live_lat["p95"] / max(static_lat["p95"], 1e-9), 3),
            "staleness_p95_rows": round(staleness_p95_rows, 1),
            "staleness_p95_ms": round(staleness_p95_ms, 3),
            "rejected": rejected,
            "verified": verified,
            "incorrect": incorrect,
            "requests": requests,
            "clients": clients,
            "workers": workers,
            "writers": writers,
        },
        metrics=[
            BenchMetric(
                "appends_per_sec", round(appends_per_sec, 1), "rows/s", "higher", 0.25
            ),
            # Same-machine ratio: how much ingestion inflates query p95.
            BenchMetric(
                "p95_ratio",
                round(live_lat["p95"] / max(static_lat["p95"], 1e-9), 3),
                "x",
                "lower",
                0.35,
                portable=True,
            ),
            BenchMetric(
                "live_p95_ms", round(live_lat["p95"], 3), "ms", "lower", 0.35
            ),
            BenchMetric(
                "staleness_p95_rows",
                round(staleness_p95_rows, 1),
                "rows",
                "lower",
                0.50,
                abs_noise=200,
            ),
            BenchMetric(
                "rejected", rejected, "", "lower", 0.0, abs_noise=5, portable=True
            ),
        ]
        # Only a verified run can honestly claim an incorrect-count of 0.
        + (
            [BenchMetric("incorrect", incorrect, "", "lower", 0.0, portable=True)]
            if incorrect is not None
            else []
        ),
    )
