"""Plain-text report formatting for experiment output.

Benchmarks print the same rows/series the paper's figures plot; these
helpers keep that output aligned and diff-friendly (EXPERIMENTS.md embeds
them verbatim).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_sweep"]


def format_table(rows: Iterable[Mapping], columns: Sequence[str] | None = None, title: str = "") -> str:
    """ASCII table from dict rows.

    >>> print(format_table([{"a": 1, "b": 2}], ["a", "b"]))
    a | b
    --+--
    1 | 2
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    table = [[str(r.get(c, "")) for c in columns] for r in rows]
    widths = [max(len(columns[i]), *(len(row[i]) for row in table)) for i in range(len(columns))]
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in table)
    out = "\n".join([header, rule, body])
    return f"{title}\n{out}" if title else out


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.2f}",
    title: str = "",
) -> str:
    """One row per x value, one column per series (a figure panel as text)."""
    rows = []
    for i, x in enumerate(x_values):
        row = {x_label: x}
        for name, values in series.items():
            row[name] = value_format.format(values[i]) if i < len(values) else ""
        rows.append(row)
    return format_table(rows, [x_label] + list(series.keys()), title=title)


def format_sweep(sweep, metric: str = "mean_ms", value_format: str = "{:.2f}", title: str = "") -> str:
    """Render a :class:`~repro.experiments.harness.SweepResult` panel."""
    series = sweep.series(metric)
    label = f"{sweep.parameter}"
    return format_series(
        label,
        sweep.parameter_values(),
        series,
        value_format=value_format,
        title=title or f"{sweep.dataset}: {metric} vs {sweep.parameter}",
    )
