"""The semantic answer cache benchmark (and its CLI/CI entry point).

Measures what structural answer reuse buys on dashboard-tile traffic:
the same Zipfian shape-catalogue request stream (hot preferences, each
repeating a small set of query shapes verbatim —
``WorkloadSpec.shapes_per_preference``) is driven pipelined through
:class:`~repro.service.service.DurableTopKService` twice:

* **uncached** — the PR 8 serving configuration: session pool and
  batching only, every request executes.
* **cached** — the same service fronted by a
  :class:`~repro.cache.SemanticAnswerCache` (exact-tier replay before
  admission) with :class:`~repro.cache.WindowMemo` containment seeding
  underneath (seeded tier). Exact hits skip the queue entirely, which
  is why the win shows up in tail latency, not just throughput: queue
  wait dominates p95 under pipelined load, and a hit removes the
  request from the queue altogether.

Timing rounds are interleaved uncached/cached and the best round of
each side is compared (cancels warmup drift); the answer cache persists
across cached rounds, as it would in a long-lived service.

``verify=True`` (the ``--smoke`` gate) re-derives every served answer
on a fresh, uncached reference engine and requires byte-identity (ids,
durations *and* per-query ``QueryStats``) — a cache that changes
answers or even their cost accounting is broken. It then runs a
concurrent-ingest phase: a cached service over a
:class:`~repro.ingest.live.LiveDataset` races a writer thread (appends,
seals, compactions) and every response is re-derived from the frozen
prefix its snapshot version pins — cached answers must be impossible to
serve stale by construction.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache import SemanticAnswerCache
from repro.core.engine import DurableTopKEngine
from repro.core.record import Dataset
from repro.data import independent_uniform
from repro.experiments.report import format_table
from repro.experiments.resultstore import BenchMetric
from repro.service import (
    DurableTopKService,
    EngineBackend,
    LiveBackend,
    MetricsSnapshot,
    WorkloadGenerator,
    WorkloadSpec,
    run_pipelined,
)

__all__ = ["CacheBenchResult", "cache_speedup_bench", "SMOKE_DEFAULTS"]

#: Scaled-down parameters for the CI smoke run (seconds, not minutes).
SMOKE_DEFAULTS = {
    "n": 6_000,
    "requests": 240,
    "clients": 4,
    "workers": 4,
    "n_preferences": 16,
    "shapes_per_preference": 6,
    # Best-of-3: the cached side's p95 sits in the miss tail (a few ms
    # against sub-ms hits), so single rounds swing with queueing luck.
    "rounds": 3,
    "ingest_requests": 120,
}


@dataclass
class CacheBenchResult:
    """Report text plus raw numbers (mirrors ``ServiceBenchResult``).

    ``metrics`` is the structured telemetry persisted as
    ``BENCH_<name>.json`` for ``repro perf-report`` / ``perf-gate``.
    """

    name: str
    report: str
    data: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.report


@dataclass
class _Round:
    """One timed pipelined drive of one side."""

    snapshot: MetricsSnapshot
    responses: list
    wall_seconds: float

    @property
    def rps(self) -> float:
        return len(self.responses) / self.wall_seconds


def _run_side(
    dataset,
    stream,
    clients: int,
    workers: int,
    pool_capacity: int,
    cache: SemanticAnswerCache | None,
) -> _Round:
    """Drive one pipelined round; ``cache is None`` is the uncached side.

    The uncached side also runs without the window memo — it is the
    PR 8 configuration, not this PR minus one tier.
    """
    backend = EngineBackend(DurableTopKEngine(dataset), window_memo=cache is not None)
    with DurableTopKService(
        backend,
        workers=workers,
        max_queue=max(4096, 4 * len(stream)),
        max_batch=32,
        pool_capacity=pool_capacity,
        cache=cache,
    ) as service:
        start = time.perf_counter()
        responses = run_pipelined(service.submit, stream, clients=clients)
        wall = time.perf_counter() - start
        snapshot = service.metrics.snapshot()
    return _Round(snapshot, responses, wall)


def _identical(result, expected) -> bool:
    """Byte-identity of one served answer against the reference engine."""
    return (
        result.ids == expected.ids
        and result.durations == expected.durations
        and result.stats.as_dict() == expected.stats.as_dict()
    )


def _verify_static(dataset, stream, responses) -> tuple[int, int]:
    """Re-derive every served answer on a fresh uncached engine."""
    reference = DurableTopKEngine(dataset)
    verified = incorrect = 0
    for request, response in zip(stream, responses):
        if not response.ok:
            continue
        expected = reference.query(
            request.as_query(), request.scorer, request.algorithm
        )
        if _identical(response.result, expected):
            verified += 1
        else:
            incorrect += 1
    return verified, incorrect


def _verify_live_ingest(
    n0: int,
    requests: int,
    clients: int,
    workers: int,
    pool_capacity: int,
    spec: WorkloadSpec,
    seed: int,
) -> dict:
    """Cached service over a live dataset racing a writer; re-derive all.

    The writer appends rows from a pre-generated master array (with
    seals and compactions riding the maintenance thread), so every
    snapshot a response served is a known prefix of ``master``. Each
    answer is re-derived on a fresh engine over exactly that prefix —
    if the cache ever served across an epoch, the ids diverge here.
    """
    from repro.ingest.live import LiveDataset

    rng = np.random.default_rng(seed + 17)
    total = n0 * 3
    master = rng.random((total, spec.d))

    live = LiveDataset(spec.d, seal_rows=max(512, n0 // 4), name="cache-ingest")
    live.extend(master[:n0])
    live.seal()
    live.start_maintenance()

    generator = WorkloadGenerator(spec, n0)
    stream = generator.requests(requests)

    cache = SemanticAnswerCache()
    stop = threading.Event()

    def writer() -> None:
        at = n0
        while not stop.is_set() and at < total:
            step = min(64, total - at)
            live.extend(master[at : at + step])
            at += step
            time.sleep(0.0005)

    thread = threading.Thread(target=writer, name="cache-bench-writer")
    thread.start()
    try:
        with DurableTopKService(
            LiveBackend(live),
            workers=workers,
            max_queue=max(4096, 4 * requests),
            max_batch=16,
            pool_capacity=pool_capacity,
            cache=cache,
        ) as service:
            # Two passes over the same stream: the second finds cache
            # entries whose epochs the writer has been advancing past,
            # so both exact hits and version-keyed misses race ingest.
            responses = run_pipelined(service.submit, stream, clients=clients)
            responses += run_pipelined(service.submit, stream, clients=clients)
    finally:
        stop.set()
        thread.join()
        live.close()

    engines: dict[int, DurableTopKEngine] = {}
    verified = incorrect = rejected = 0
    for request, response in zip(stream + stream, responses):
        if not response.ok:
            rejected += 1
            continue
        n_snap = response.result.extra["snapshot_n"]
        engine = engines.get(n_snap)
        if engine is None:
            engine = engines[n_snap] = DurableTopKEngine(
                Dataset(master[:n_snap], name=f"prefix-{n_snap}")
            )
        expected = engine.query(
            request.as_query(), request.scorer, request.algorithm
        )
        if (
            response.result.ids == expected.ids
            and response.result.durations == expected.durations
        ):
            verified += 1
        else:
            incorrect += 1
    return {
        "requests": len(responses),
        "verified": verified,
        "incorrect": incorrect,
        "rejected": rejected,
        "final_n": live.n,
        "cache": cache.stats(),
    }


def cache_speedup_bench(
    n: int = 60_000,
    requests: int = 1200,
    clients: int = 8,
    workers: int = 8,
    n_preferences: int = 96,
    zipf_s: float = 1.1,
    shapes_per_preference: int = 8,
    shape_zipf_s: float = 1.2,
    rounds: int = 2,
    pool_capacity: int | None = None,
    cache_bytes: int = 64 * 1024 * 1024,
    seed: int = 7,
    verify: bool = False,
    ingest_requests: int = 240,
) -> CacheBenchResult:
    """Run uncached-vs-cached under one workload; see module docstring.

    ``pool_capacity=None`` sizes the session pool to the preference
    catalogue (satellite: the old 64-session default self-inflicted
    churn under the documented 128-preference workload).
    """
    if pool_capacity is None:
        pool_capacity = max(64, n_preferences)
    dataset = independent_uniform(n, 2, seed=seed)
    spec = WorkloadSpec(
        n_preferences=n_preferences,
        d=2,
        zipf_s=zipf_s,
        k_choices=(5, 10),
        tau_fractions=(0.05, 0.10),
        interval_fractions=(0.02, 0.05),
        algorithms=("t-hop",),
        seed=seed,
        shapes_per_preference=shapes_per_preference,
        shape_zipf_s=shape_zipf_s,
    )
    generator = WorkloadGenerator(spec, dataset.n)

    cache = SemanticAnswerCache(capacity_bytes=cache_bytes)
    # Warmup doubles as cache fill: a long-lived service's steady state,
    # the regime the exact tier is for. Every round draws a *fresh*
    # stream — hits come from the shape catalogues repeating across
    # streams, not from replaying the warmup stream verbatim.
    _run_side(dataset, generator.requests(requests), clients, workers,
              pool_capacity, cache)

    uncached_rounds: list[tuple[list, _Round]] = []
    cached_rounds: list[tuple[list, _Round]] = []
    for _ in range(max(1, rounds)):
        stream = generator.requests(requests)
        uncached_rounds.append(
            (stream, _run_side(dataset, stream, clients, workers, pool_capacity, None))
        )
        cached_rounds.append(
            (stream, _run_side(dataset, stream, clients, workers, pool_capacity, cache))
        )
    _, uncached_best = min(
        uncached_rounds, key=lambda sr: sr[1].snapshot.latency_p95
    )
    cached_stream, cached_best = min(
        cached_rounds, key=lambda sr: sr[1].snapshot.latency_p95
    )

    ok = [r for r in cached_best.responses if r.ok]
    exact_hits = sum(1 for r in ok if r.extra.get("cache") == "exact")
    hit_rate = exact_hits / len(ok) if ok else 0.0
    rejected = sum(
        1
        for r in cached_best.responses + uncached_best.responses
        if not r.ok
    )

    uncached_p95 = uncached_best.snapshot.latency_p95 * 1e3
    cached_p95 = cached_best.snapshot.latency_p95 * 1e3
    p95_speedup = uncached_p95 / max(cached_p95, 1e-9)

    verified = incorrect = None
    ingest = None
    if verify:
        verified, incorrect = _verify_static(
            dataset, cached_stream, cached_best.responses
        )
        ingest = _verify_live_ingest(
            n0=max(2_000, n // 4),
            requests=ingest_requests,
            clients=clients,
            workers=workers,
            pool_capacity=pool_capacity,
            spec=spec,
            seed=seed,
        )

    cache_stats = cache.stats()
    header = (
        f"semantic answer cache: {clients} clients, {workers} workers, "
        f"{requests} requests, best of {max(1, rounds)} interleaved round(s) "
        f"(by p95)\n"
        f"workload: n={n} d=2, {n_preferences} preferences (zipf s={zipf_s}), "
        f"{shapes_per_preference} shapes/preference (zipf s={shape_zipf_s}), "
        f"t-hop, tau~{spec.tau_fractions}, |I|~{spec.interval_fractions}\n"
        f"sides: uncached=PR 8 config (pool+batching), cached=+answer cache "
        f"({cache_bytes // (1024 * 1024)} MiB) and window-memo seeding; "
        f"pool capacity {pool_capacity}"
    )

    def _row(label: str, best: _Round, hits: str) -> dict:
        snap = best.snapshot
        return {
            "service": label,
            "req/s": f"{best.rps:.0f}",
            "p50 ms": f"{snap.latency_p50 * 1e3:.2f}",
            "p95 ms": f"{snap.latency_p95 * 1e3:.2f}",
            "p99 ms": f"{snap.latency_p99 * 1e3:.2f}",
            "exact hits": hits,
            "coalesced": snap.coalesced,
            "rejected": snap.rejected_total,
        }

    rows = [
        _row("uncached", uncached_best, "-"),
        _row("cached", cached_best, f"{exact_hits} ({hit_rate:.0%})"),
    ]
    lines = [
        header,
        format_table(rows),
        (
            f"p95 speedup (uncached/cached): {p95_speedup:.2f}x   "
            f"hit rate: {hit_rate:.1%}   cache: {cache_stats['entries']} entries, "
            f"{cache_stats['bytes']} bytes resident, "
            f"{cache_stats['evictions']} evicted"
        ),
    ]
    if verified is not None:
        lines.append(
            f"serial re-derivation (ids+durations+stats): {verified} identical, "
            f"{incorrect} incorrect"
        )
    if ingest is not None:
        lines.append(
            f"live-ingest re-derivation: {ingest['verified']} identical, "
            f"{ingest['incorrect']} incorrect over {ingest['requests']} responses "
            f"(final n={ingest['final_n']}, "
            f"cache hit rate {ingest['cache']['hit_rate']:.1%})"
        )
    report = "\n".join(lines)
    return CacheBenchResult(
        name="cache_speedup",
        report=report,
        data={
            "uncached": {
                **uncached_best.snapshot.as_dict(),
                "wall_seconds": round(uncached_best.wall_seconds, 3),
                "rps": round(uncached_best.rps, 1),
            },
            "cached": {
                **cached_best.snapshot.as_dict(),
                "wall_seconds": round(cached_best.wall_seconds, 3),
                "rps": round(cached_best.rps, 1),
            },
            "cache": cache_stats,
            "p95_speedup": round(p95_speedup, 3),
            "hit_rate": round(hit_rate, 4),
            "exact_hits": exact_hits,
            "incorrect": incorrect if incorrect is not None else 0,
            "rejected": rejected,
            "verified": verified,
            "ingest": ingest,
            "requests": requests,
            "clients": clients,
            "workers": workers,
            "pool_capacity": pool_capacity,
        },
        metrics=[
            # Same-machine ratio: survives a machine change, gates
            # everywhere. The wide band is deliberate — at high hit
            # rates p95 sits on the sub-ms hit path, whose timing
            # jitters ~2x run to run; the gate is an order-of-magnitude
            # guard (a broken cache lands at ~1x, a degraded hit rate
            # an order below baseline), not a +/-10% tripwire.
            BenchMetric(
                "p95_speedup", round(p95_speedup, 3), "x", "higher", 0.75, portable=True
            ),
            BenchMetric(
                "hit_rate", round(hit_rate, 4), "", "higher", 0.15, portable=True
            ),
            # Context metrics: both p95s are queue-luck dominated at
            # smoke scale (short pipelined bursts), so they carry wide
            # bands — the ratio above is the guarded quantity.
            # At high hit rates the cached p95 is sub-ms hit-path
            # timing, whose absolute value jitters ~2x; the additive
            # floor absorbs that while a miss-dominated regression
            # (tens of ms) still fails by two orders of magnitude.
            BenchMetric(
                "cached_p95_ms", round(cached_p95, 3), "ms", "lower", 0.60, 0.25
            ),
            BenchMetric(
                "uncached_p95_ms", round(uncached_p95, 3), "ms", "lower", 0.60
            ),
            BenchMetric("cached_rps", round(cached_best.rps, 1), "req/s", "higher", 0.40),
            BenchMetric(
                "incorrect",
                (incorrect or 0) + (ingest["incorrect"] if ingest else 0),
                "",
                "lower",
                0.0,
                portable=True,
            ),
            BenchMetric(
                "rejected", rejected, "", "lower", 0.0, abs_noise=5, portable=True
            ),
        ],
    )
