"""Persisting query results and experiment rows as JSON.

Experiment record-keeping: results can be saved with full provenance
(query parameters, algorithm, counters, library version) and reloaded for
later comparison — the harness uses this to diff runs across machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.query import Direction, DurableTopKQuery, DurableTopKResult, QueryStats

__all__ = ["result_to_dict", "result_from_dict", "save_result", "load_result"]


def result_to_dict(result: DurableTopKResult) -> dict[str, Any]:
    """A JSON-serialisable representation with full provenance."""
    import repro

    return {
        "library_version": repro.__version__,
        "algorithm": result.algorithm,
        "query": {
            "k": result.query.k,
            "tau": result.query.tau,
            "interval": list(result.query.interval) if result.query.interval else None,
            "direction": result.query.direction.value,
        },
        "ids": list(result.ids),
        "stats": result.stats.as_dict(),
        "elapsed_seconds": result.elapsed_seconds,
        "durations": (
            {str(t): d for t, d in result.durations.items()} if result.durations else None
        ),
    }


def result_from_dict(payload: dict[str, Any]) -> DurableTopKResult:
    """Inverse of :func:`result_to_dict` (provenance fields are checked
    for presence, not equality)."""
    for field in ("algorithm", "query", "ids", "stats"):
        if field not in payload:
            raise ValueError(f"result payload missing field {field!r}")
    query_payload = payload["query"]
    query = DurableTopKQuery(
        k=query_payload["k"],
        tau=query_payload["tau"],
        interval=tuple(query_payload["interval"]) if query_payload.get("interval") else None,
        direction=Direction(query_payload.get("direction", "past")),
    )
    stats = QueryStats()
    for key, value in payload["stats"].items():
        if hasattr(stats, key) and key != "topk_queries":
            setattr(stats, key, value)
    durations = payload.get("durations")
    return DurableTopKResult(
        ids=list(payload["ids"]),
        query=query,
        algorithm=payload["algorithm"],
        stats=stats,
        elapsed_seconds=payload.get("elapsed_seconds", 0.0),
        durations={int(t): d for t, d in durations.items()} if durations else None,
    )


def save_result(result: DurableTopKResult, path: str | Path) -> Path:
    """Write a result (with provenance) to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2) + "\n")
    return path


def load_result(path: str | Path) -> DurableTopKResult:
    """Load a result previously written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))
