"""Persisting query results, experiment rows and bench telemetry as JSON.

Experiment record-keeping: results can be saved with full provenance
(query parameters, algorithm, counters, library version) and reloaded for
later comparison — the harness uses this to diff runs across machines.

Since the performance-observatory PR this module is also the structured
bench-telemetry layer: every bench emits a schema'd
``BENCH_<name>.json`` record (:class:`BenchRecord`) alongside its
free-text report. A record is a list of :class:`BenchMetric` — metric
name, value, unit, better-direction and a per-metric noise band — plus
an environment fingerprint (cpu count, python version, git sha,
wall/process clocks) so every artifact is self-describing and two runs
can be diffed mechanically (``repro perf-report`` / ``repro perf-gate``).
``save_bench_record`` also appends one compact line per run to
``BENCH_HISTORY.jsonl``, the append-mode perf trajectory of the repo.
"""

from __future__ import annotations

import datetime
import functools
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.query import Direction, DurableTopKQuery, DurableTopKResult, QueryStats

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "BenchMetric",
    "BenchRecord",
    "BENCH_SCHEMA_VERSION",
    "HISTORY_FILE",
    "environment_fingerprint",
    "fingerprint_header",
    "save_bench_record",
    "load_bench_record",
    "load_bench_dir",
    "validate_bench_payload",
]


def result_to_dict(result: DurableTopKResult) -> dict[str, Any]:
    """A JSON-serialisable representation with full provenance."""
    import repro

    return {
        "library_version": repro.__version__,
        "algorithm": result.algorithm,
        "query": {
            "k": result.query.k,
            "tau": result.query.tau,
            "interval": list(result.query.interval) if result.query.interval else None,
            "direction": result.query.direction.value,
        },
        "ids": list(result.ids),
        "stats": result.stats.as_dict(),
        "elapsed_seconds": result.elapsed_seconds,
        "durations": (
            {str(t): d for t, d in result.durations.items()} if result.durations else None
        ),
    }


def result_from_dict(payload: dict[str, Any]) -> DurableTopKResult:
    """Inverse of :func:`result_to_dict` (provenance fields are checked
    for presence, not equality)."""
    for field in ("algorithm", "query", "ids", "stats"):
        if field not in payload:
            raise ValueError(f"result payload missing field {field!r}")
    query_payload = payload["query"]
    query = DurableTopKQuery(
        k=query_payload["k"],
        tau=query_payload["tau"],
        interval=tuple(query_payload["interval"]) if query_payload.get("interval") else None,
        direction=Direction(query_payload.get("direction", "past")),
    )
    stats = QueryStats()
    for key, value in payload["stats"].items():
        if hasattr(stats, key) and key != "topk_queries":
            setattr(stats, key, value)
    durations = payload.get("durations")
    return DurableTopKResult(
        ids=list(payload["ids"]),
        query=query,
        algorithm=payload["algorithm"],
        stats=stats,
        elapsed_seconds=payload.get("elapsed_seconds", 0.0),
        durations={int(t): d for t, d in durations.items()} if durations else None,
    )


def save_result(result: DurableTopKResult, path: str | Path) -> Path:
    """Write a result (with provenance) to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2) + "\n")
    return path


def load_result(path: str | Path) -> DurableTopKResult:
    """Load a result previously written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------------------------
# structured bench telemetry
# --------------------------------------------------------------------------

BENCH_SCHEMA_VERSION = 1

#: The append-mode perf trajectory: one JSON line per bench run.
HISTORY_FILE = "BENCH_HISTORY.jsonl"


@functools.lru_cache(maxsize=1)
def _git_sha() -> str:
    """Short sha of the working tree, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def environment_fingerprint() -> dict[str, Any]:
    """Where and when a measurement was taken, machine-readably.

    ``wall_time`` is the unix epoch at emission and ``process_time`` the
    CPU seconds this process had consumed — together they let a reader
    of the history file order runs and spot wall-vs-CPU skew (a loaded
    box) without trusting the filesystem.
    """
    import repro

    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": sys.platform,
        "machine": platform.machine(),
        "git_sha": _git_sha(),
        "library_version": repro.__version__,
        "wall_time": round(time.time(), 3),
        "process_time": round(time.process_time(), 3),
    }


def fingerprint_header(env: dict | None = None) -> str:
    """Comment lines stamping a ``results/*.txt`` artifact as self-describing.

    Artifacts from a 1-core box (flat shard-scaling curves and the like)
    carry their own caveat this way instead of needing one in a doc.
    """
    env = env or environment_fingerprint()
    stamp = datetime.datetime.fromtimestamp(
        env["wall_time"], tz=datetime.timezone.utc
    ).strftime("%Y-%m-%dT%H:%M:%SZ")
    return (
        f"# env: cores={env['cpu_count']} python={env['python']} "
        f"platform={env['platform']}/{env['machine']} git={env['git_sha']} "
        f"repro={env['library_version']}\n"
        f"# clocks: wall={stamp} process={env['process_time']:.1f}s"
    )


@dataclass(frozen=True)
class BenchMetric:
    """One measured number with enough context to diff it later.

    ``noise`` is the relative band (fraction of the baseline value)
    inside which run-to-run movement is indistinguishable from noise;
    ``abs_noise`` is an additive floor for metrics that live near (or
    cross) zero, where a relative band degenerates. ``portable`` marks
    metrics whose value is machine-independent (ratios, deterministic
    counts) and therefore comparable across differing environment
    fingerprints — machine-bound metrics (wall times, throughputs) are
    only gated when the fingerprints match.
    """

    name: str
    value: float
    unit: str = ""
    better: str = "lower"  # "lower" | "higher"
    noise: float = 0.10
    abs_noise: float = 0.0
    portable: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "better": self.better,
            "noise": self.noise,
            "abs_noise": self.abs_noise,
            "portable": self.portable,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BenchMetric":
        return cls(
            name=payload["name"],
            value=float(payload["value"]),
            unit=payload.get("unit", ""),
            better=payload.get("better", "lower"),
            noise=float(payload.get("noise", 0.10)),
            abs_noise=float(payload.get("abs_noise", 0.0)),
            portable=bool(payload.get("portable", False)),
        )


@dataclass
class BenchRecord:
    """One bench run: named metrics plus the environment that produced them."""

    name: str
    metrics: list[BenchMetric]
    environment: dict[str, Any] = field(default_factory=environment_fingerprint)
    meta: dict[str, Any] = field(default_factory=dict)
    schema_version: int = BENCH_SCHEMA_VERSION

    def metric(self, name: str) -> BenchMetric | None:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        return None

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "environment": dict(self.environment),
            "meta": dict(self.meta),
            "metrics": [m.as_dict() for m in self.metrics],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BenchRecord":
        errors = validate_bench_payload(payload)
        if errors:
            raise ValueError(
                f"invalid bench record {payload.get('name')!r}: " + "; ".join(errors)
            )
        return cls(
            name=payload["name"],
            metrics=[BenchMetric.from_dict(m) for m in payload["metrics"]],
            environment=dict(payload["environment"]),
            meta=dict(payload.get("meta") or {}),
            schema_version=int(payload["schema_version"]),
        )


def validate_bench_payload(payload: dict[str, Any]) -> list[str]:
    """Schema check for one ``BENCH_*.json`` payload; returns problems found."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    for key in ("schema_version", "name", "environment", "metrics"):
        if key not in payload:
            errors.append(f"missing field {key!r}")
    if errors:
        return errors
    if payload["schema_version"] != BENCH_SCHEMA_VERSION:
        errors.append(
            f"schema_version {payload['schema_version']} != {BENCH_SCHEMA_VERSION}"
        )
    env = payload["environment"]
    if not isinstance(env, dict):
        errors.append("environment is not an object")
    else:
        for key in ("cpu_count", "python", "git_sha", "wall_time", "process_time"):
            if key not in env:
                errors.append(f"environment missing {key!r}")
    metrics = payload["metrics"]
    if not isinstance(metrics, list) or not metrics:
        errors.append("metrics must be a non-empty list")
        return errors
    seen: set[str] = set()
    for i, metric in enumerate(metrics):
        if not isinstance(metric, dict):
            errors.append(f"metrics[{i}] is not an object")
            continue
        name = metric.get("name")
        if not name or not isinstance(name, str):
            errors.append(f"metrics[{i}] has no name")
            continue
        if name in seen:
            errors.append(f"duplicate metric {name!r}")
        seen.add(name)
        value = metric.get("value")
        if not isinstance(value, (int, float)) or value != value:  # NaN check
            errors.append(f"metric {name!r} value is not a finite number")
        if metric.get("better", "lower") not in ("lower", "higher"):
            errors.append(f"metric {name!r} better must be 'lower' or 'higher'")
        noise = metric.get("noise", 0.10)
        if not isinstance(noise, (int, float)) or noise < 0:
            errors.append(f"metric {name!r} noise must be >= 0")
    return errors


def save_bench_record(
    record: BenchRecord, out_dir: str | Path, history: bool = True
) -> Path:
    """Write ``BENCH_<name>.json`` (and append the history line) under *out_dir*.

    The per-bench file always holds the latest run — the diffable
    current state; the history file accumulates one compact line per run
    so the perf trajectory survives overwrites.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = record.as_dict()
    errors = validate_bench_payload(payload)
    if errors:
        raise ValueError(f"refusing to save invalid record: {'; '.join(errors)}")
    path = out_dir / f"BENCH_{record.name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if history:
        line = {
            "name": record.name,
            "git_sha": record.environment.get("git_sha"),
            "wall_time": record.environment.get("wall_time"),
            "cpu_count": record.environment.get("cpu_count"),
            "python": record.environment.get("python"),
            "metrics": {m.name: m.value for m in record.metrics},
        }
        with (out_dir / HISTORY_FILE).open("a") as handle:
            handle.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def load_bench_record(path: str | Path) -> BenchRecord:
    """Load and schema-check one ``BENCH_*.json`` file."""
    return BenchRecord.from_dict(json.loads(Path(path).read_text()))


def load_bench_dir(path: str | Path) -> dict[str, BenchRecord]:
    """All ``BENCH_*.json`` records in *path*, keyed by bench name."""
    out: dict[str, BenchRecord] = {}
    for file in sorted(Path(path).glob("BENCH_*.json")):
        record = load_bench_record(file)
        out[record.name] = record
    return out
