"""Tables IV–VI: the DBMS-backed T-Base vs T-Hop comparison over MiniDB."""

from __future__ import annotations

import numpy as np

from repro.core.record import Dataset
from repro.data import synthetic_dataset
from repro.experiments.figures import FigureResult, nba2_dataset
from repro.experiments.report import format_table
from repro.experiments.resultstore import BenchMetric
from repro.minidb import MiniDB, t_base_procedure, t_hop_procedure
from repro.scoring import random_preference

__all__ = ["table4_dbms_vary_tau", "table5_dbms_vary_interval", "table6_dbms_datasets"]


#: Warm repetitions used for the wall-time metric (best-of), so the tables
#: measure the algorithms rather than scheduler noise. Page counts always
#: come from the single cold round.
TIMING_ROUNDS = 3


def _best_of(proc, db: MiniDB, u: np.ndarray, k: int, tau: int, lo: int, hi: int) -> float:
    """Minimum wall time over ``TIMING_ROUNDS`` warm invocations."""
    return min(
        proc(db, u, k, tau, lo, hi, cold=False).elapsed_seconds
        for _ in range(TIMING_ROUNDS)
    )


def _run_pair(db: MiniDB, u: np.ndarray, k: int, tau: int, lo: int, hi: int) -> dict:
    # One cold round defines the page counts (and the answer)...
    hop = t_hop_procedure(db, u, k, tau, lo, hi)
    base = t_base_procedure(db, u, k, tau, lo, hi)
    if hop.ids != base.ids:
        raise AssertionError("DBMS procedures disagree — T-Hop vs T-Base")
    # ...and the best of >= 3 warm rounds defines the seconds.
    return {
        "t-hop s": round(_best_of(t_hop_procedure, db, u, k, tau, lo, hi), 4),
        "t-base s": round(_best_of(t_base_procedure, db, u, k, tau, lo, hi), 4),
        "t-hop pages": hop.physical_reads,
        "t-base pages": base.physical_reads,
        "page ratio": round(base.physical_reads / max(hop.physical_reads, 1), 1),
        "answer": len(hop.ids),
    }


def _table_metrics(rows: list[dict]) -> list[BenchMetric]:
    """Telemetry for one DBMS table: seconds totals and the page story.

    Page counts come from single cold rounds and are deterministic given
    the seed, so they (and their ratio) carry tight portable bands; the
    best-of-3 seconds are machine-bound with a wide band.
    """
    hop_pages = sum(r["t-hop pages"] for r in rows)
    base_pages = sum(r["t-base pages"] for r in rows)
    return [
        BenchMetric(
            "t_hop_s_total",
            round(sum(r["t-hop s"] for r in rows), 4),
            "s",
            "lower",
            0.35,
        ),
        BenchMetric(
            "t_base_s_total",
            round(sum(r["t-base s"] for r in rows), 4),
            "s",
            "lower",
            0.35,
        ),
        BenchMetric("t_hop_pages_total", hop_pages, "pages", "lower", 0.02, portable=True),
        # The table's headline claim: T-Base reads this many times more
        # pages than T-Hop. A drop is a regression of the reproduction.
        BenchMetric(
            "page_ratio",
            round(base_pages / max(hop_pages, 1), 2),
            "x",
            "higher",
            0.10,
            portable=True,
        ),
    ]


def table4_dbms_vary_tau(
    n: int = 40_000,
    tau_fractions: list[float] | None = None,
    k: int = 10,
    seed: int = 0,
) -> FigureResult:
    """Table IV: NBA-2 in MiniDB, varying tau (|I| fixed at 50%)."""
    tau_fractions = tau_fractions or [0.10, 0.20, 0.30, 0.40, 0.50]
    dataset = nba2_dataset(n)
    rng = np.random.default_rng(seed)
    u = random_preference(rng, dataset.d)
    rows = []
    with MiniDB(dataset) as db:
        for frac in tau_fractions:
            tau = max(1, int(n * frac))
            row = _run_pair(db, u, k, tau, n // 2, n - 1)
            rows.append({"tau": f"{int(frac * 100)}%", **row})
    report = format_table(rows, title=f"Table IV — MiniDB backend, NBA-2 (n={n}), vary tau")
    return FigureResult(
        name="table4", report=report, data={"rows": rows}, metrics=_table_metrics(rows)
    )


def table5_dbms_vary_interval(
    n: int = 40_000,
    interval_fractions: list[float] | None = None,
    k: int = 10,
    seed: int = 0,
) -> FigureResult:
    """Table V: NBA-2 in MiniDB, varying |I| (tau fixed at 10%)."""
    interval_fractions = interval_fractions or [0.10, 0.20, 0.30, 0.40, 0.50]
    dataset = nba2_dataset(n)
    rng = np.random.default_rng(seed)
    u = random_preference(rng, dataset.d)
    tau = max(1, n // 10)
    rows = []
    with MiniDB(dataset) as db:
        for frac in interval_fractions:
            length = max(1, int(n * frac))
            row = _run_pair(db, u, k, tau, n - length, n - 1)
            rows.append({"|I|": f"{int(frac * 100)}%", **row})
    report = format_table(rows, title=f"Table V — MiniDB backend, NBA-2 (n={n}), vary |I|")
    return FigureResult(
        name="table5", report=report, data={"rows": rows}, metrics=_table_metrics(rows)
    )


def table6_dbms_datasets(
    nba_n: int = 20_000,
    syn_n: int = 120_000,
    k: int = 10,
    seed: int = 0,
) -> FigureResult:
    """Table VI: NBA-2 / Syn-IND / Syn-ANTI sizes, default query setting.

    The paper's 500M-row tables become 120k rows here; the reproduced
    claim is the widening T-Base/T-Hop gap as data outgrows the buffer
    pool.
    """
    rng = np.random.default_rng(seed)
    rows = []
    workloads: list[tuple[str, Dataset]] = [
        ("NBA-2", nba2_dataset(nba_n)),
        ("Syn-IND", synthetic_dataset("ind", syn_n, 2, seed=1)),
        ("Syn-ANTI", synthetic_dataset("anti", syn_n, 2, seed=1)),
    ]
    for name, dataset in workloads:
        u = random_preference(rng, dataset.d)
        n = dataset.n
        tau = max(1, n // 10)
        with MiniDB(dataset) as db:
            row = _run_pair(db, u, k, tau, n // 2, n - 1)
            size_mb = db.storage_bytes() / 1e6
        rows.append({"dataset": f"{name} ({size_mb:.1f} MB)", **row})
    report = format_table(rows, title="Table VI — MiniDB backend, dataset comparison")
    return FigureResult(
        name="table6", report=report, data={"rows": rows}, metrics=_table_metrics(rows)
    )
