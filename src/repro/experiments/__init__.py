"""Experiment harness regenerating every table and figure of Section VI."""

from repro.experiments.harness import (
    AlgorithmRow,
    SweepResult,
    default_parameters,
    run_algorithm_suite,
    run_sweep,
)
from repro.experiments.report import format_series, format_table

__all__ = [
    "AlgorithmRow",
    "SweepResult",
    "default_parameters",
    "run_algorithm_suite",
    "run_sweep",
    "format_table",
    "format_series",
]
