"""Request/response envelope of the concurrent durable top-k service.

A :class:`QueryRequest` is everything one client asks for: a scoring
function (the user-specified preference, Section II of the paper) plus
the durable top-k parameters ``k``/``tau``/interval/direction and the
algorithm to run. Requests from many client threads are funnelled into
:class:`repro.service.service.DurableTopKService`, which groups them by
*preference key* — requests under the same preference share a warm
:class:`~repro.core.session.QuerySession` and execute back-to-back as a
batch.

A :class:`QueryResponse` pairs the request with either a
:class:`~repro.core.query.DurableTopKResult` or a typed
:class:`QueryRejected` (admission-control refusals never raise inside the
service; they travel to the caller as data, so an open-loop load
generator can count rejections without unwinding its submit loop).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.core.query import Direction, DurableTopKQuery, DurableTopKResult

__all__ = [
    "QueryRequest",
    "QueryResponse",
    "QueryRejected",
    "RejectionReason",
    "preference_key",
]


def preference_key(scorer) -> Hashable:
    """Hashable identity of a scorer's preference.

    Mirrors the engine's LRU key: the preference *content* (``scorer.u``)
    when the scorer carries a weight vector, else the scorer object
    itself (held in the key, so a recycled ``id()`` can never alias two
    scorers). Two equal-weight scorers of the same type therefore share
    a session, exactly as they share a preference-bound index.
    """
    u = getattr(scorer, "u", None)
    if u is None:
        return (type(scorer).__name__, scorer)
    return (type(scorer).__name__, tuple(float(w) for w in u))


class RejectionReason(enum.Enum):
    """Why the service refused to answer a request."""

    #: The bounded admission queue was full at submit time.
    QUEUE_FULL = "queue_full"
    #: The request waited in the queue past its deadline.
    TIMEOUT = "timeout"
    #: The service was shut down before the request was served.
    SHUTDOWN = "shutdown"
    #: Below-normal-priority work dropped while an SLO's fast burn-rate
    #: window was on fire (degradation, not overload — see
    #: :mod:`repro.obs.slo`).
    SHED = "shed"


class QueryRejected(RuntimeError):
    """Typed admission-control rejection."""

    def __init__(self, reason: RejectionReason, message: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class QueryRequest:
    """One durable top-k question, service-ready.

    ``timeout`` bounds the time a request may sit in the admission queue
    (seconds); a request picked up past its deadline is rejected with
    :attr:`RejectionReason.TIMEOUT` instead of executed. ``None`` waits
    indefinitely.

    ``priority`` only matters under duress: requests below 0 are the
    first to be shed when SLO burn-rate monitoring reports a fast burn
    (see :class:`repro.obs.slo.SLOMonitor`). It never reorders the
    queue — admission stays FIFO per preference.
    """

    scorer: Any
    k: int
    tau: int
    interval: tuple[int, int] | None = None
    direction: Direction = Direction.PAST
    algorithm: str = "s-hop"
    timeout: float | None = None
    priority: int = 0

    @property
    def key(self) -> Hashable:
        """The batching/session key (see :func:`preference_key`)."""
        return preference_key(self.scorer)

    def as_query(self) -> DurableTopKQuery:
        """The engine-level query object for this request."""
        return DurableTopKQuery(
            k=self.k, tau=self.tau, interval=self.interval, direction=self.direction
        )


@dataclass
class QueryResponse:
    """The service's answer to one request, with serving metadata.

    Attributes
    ----------
    result:
        The query result, or ``None`` when rejected.
    error:
        The typed rejection, or ``None`` on success.
    wait_seconds / service_seconds / total_seconds:
        Queue wait, execution time, and submit-to-completion latency.
    batch_size:
        Number of same-preference requests served in the same batch.
    pool_hit:
        Whether the serving session came warm from the pool.
    """

    request: QueryRequest
    result: DurableTopKResult | None = None
    error: QueryRejected | None = None
    wait_seconds: float = 0.0
    service_seconds: float = 0.0
    total_seconds: float = 0.0
    batch_size: int = 1
    pool_hit: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the request was answered (not rejected)."""
        return self.error is None

    def unwrap(self) -> DurableTopKResult:
        """The result, raising the typed rejection if there is one."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result
