"""Concurrent durable top-k serving layer.

Turns the single-caller :class:`~repro.core.engine.DurableTopKEngine` /
:class:`~repro.minidb.database.MiniDB` stack into a thread-safe,
multi-client service: bounded admission, per-preference request
batching, a warm session pool, pluggable execution backends, synthetic
workload generation and SLO metrics. See ``README.md`` ("Serving layer")
and ``EXPERIMENTS.md`` ("The service throughput benchmark").
"""

from repro.service.backends import (
    EngineBackend,
    LiveBackend,
    MiniDBBackend,
    ShardedBackend,
)
from repro.service.metrics import MetricsCollector, MetricsSnapshot, percentile
from repro.service.pool import SessionPool
from repro.service.request import (
    QueryRejected,
    QueryRequest,
    QueryResponse,
    RejectionReason,
    preference_key,
)
from repro.service.service import (
    DurableTopKService,
    LockedEngineService,
    shed_low_priority,
)
from repro.service.workload import (
    WorkloadGenerator,
    WorkloadSpec,
    open_loop_arrivals,
    run_closed_loop,
    run_open_loop,
    run_pipelined,
    zipfian_probabilities,
)

__all__ = [
    "DurableTopKService",
    "EngineBackend",
    "LiveBackend",
    "LockedEngineService",
    "MetricsCollector",
    "MetricsSnapshot",
    "MiniDBBackend",
    "QueryRejected",
    "QueryRequest",
    "QueryResponse",
    "RejectionReason",
    "SessionPool",
    "ShardedBackend",
    "WorkloadGenerator",
    "WorkloadSpec",
    "open_loop_arrivals",
    "percentile",
    "preference_key",
    "run_closed_loop",
    "run_open_loop",
    "run_pipelined",
    "shed_low_priority",
    "zipfian_probabilities",
]
