"""Execution backends the service can serve queries through.

A backend knows three things: how to open a per-preference
:class:`~repro.core.session.QuerySession` (the pooled resource), how
to execute one :class:`~repro.service.request.QueryRequest` with such a
session, and which ``dataset_version()`` (content epoch) it currently
serves — the key the semantic answer cache pins entries to. Two
backends ship:

* :class:`EngineBackend` — the in-memory
  :class:`~repro.core.engine.DurableTopKEngine`. Queries under
  *different* preferences run genuinely concurrently: the engine's index
  LRU is lock-guarded, the score-array index is read-only at query time,
  and the service's one-batch-per-preference discipline serialises the
  only per-preference mutable state (the skyline-tree block's memoised
  scores).
* :class:`MiniDBBackend` — the paged MiniDB with its stored procedures.
  The buffer pool (shared LRU + I/O counters) is deliberately *not*
  thread-safe — a real DBMS guards it with latches — so this backend
  serialises execution with one latch per database. Sessions still pool
  per preference, and because session cache hits replay their page
  reads, the per-query page accounting is byte-identical to a serial,
  session-free run (the invariant `tests/test_service.py` pins under
  concurrency).
* :class:`LiveBackend` — a growing
  :class:`~repro.ingest.live.LiveDataset`. Queries snapshot the segment
  list epoch-style and run lock-free against immutable state, so reads
  proceed *while* appends, seals and compactions land; every response
  records the snapshot it served (``extra["snapshot_n"]``), which is
  what the freshness metrics and the serial re-derivation gate key on.
* :class:`ShardedBackend` — a
  :class:`~repro.shard.coordinator.ShardCoordinator` fronting N worker
  *processes*, one per contiguous time span. Execution leaves this
  interpreter entirely (the GIL stops being the throughput ceiling);
  sessions here are thin because the warm per-preference state lives in
  the shard workers' own pools. Responses carry per-shard fanout detail
  in ``extra``, which :class:`~repro.service.metrics.MetricsCollector`
  picks up automatically.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.query import Direction, DurableTopKResult, QueryStats
from repro.core.session import QuerySession
from repro.minidb.procedures import (
    t_base_batch_procedure,
    t_base_procedure,
    t_hop_batch_procedure,
    t_hop_procedure,
)
from repro.service.request import QueryRequest

__all__ = ["EngineBackend", "LiveBackend", "MiniDBBackend", "ShardedBackend"]


class EngineBackend:
    """Serve requests through an in-memory :class:`DurableTopKEngine`.

    ``window_memo=True`` (the default) attaches a persistent
    :class:`~repro.cache.windows.WindowMemo` to every session it opens:
    top-k windows answered by one batch seed later batches under the
    same preference (the cache's *seeded* tier), while each query still
    runs the real algorithm and charges its own stats — outputs stay
    byte-identical to a memo-free run. Benchmarks pass ``False`` for an
    honest uncached baseline.
    """

    name = "engine"

    def __init__(self, engine, window_memo: bool = True) -> None:
        self.engine = engine
        self.window_memo = window_memo

    def dataset_version(self):
        """The served content epoch (immutable datasets stamp one version)."""
        return self.engine.dataset.version

    def make_session(self, scorer) -> QuerySession:
        session = self.engine.session(scorer)
        if self.window_memo:
            from repro.cache import WindowMemo

            session.window_memo = WindowMemo()
        return session

    def execute(self, session, request: QueryRequest) -> DurableTopKResult:
        return session.query(
            request.as_query(), algorithm=request.algorithm
        )

    def execute_batch(
        self, session, requests: list[QueryRequest]
    ) -> list[DurableTopKResult]:
        """One shared index pass for a same-preference batch of requests."""
        return session.query_batch(
            [request.as_query() for request in requests],
            algorithm=[request.algorithm for request in requests],
        )

    def close(self) -> None:
        """Nothing to release; indexes belong to the engine/dataset."""


class LiveBackend:
    """Serve requests over a growing :class:`LiveDataset`.

    The read path takes no locks: each query grabs the live dataset's
    current immutable state (segments + tail prefix) and answers over
    it. Sessions exist to satisfy the pooling contract — the heavy warm
    state (per-segment preference-bound indexes) lives on the immutable
    segments themselves, shared by every session and surviving session
    eviction, so a pool miss costs almost nothing here.
    """

    name = "live"

    def __init__(self, live, window_memo: bool = True) -> None:
        self.live = live
        self.window_memo = window_memo

    def dataset_version(self):
        """The live content epoch: the monotone row-count version stamp."""
        return self.live.version

    def make_session(self, scorer) -> QuerySession:
        scorer.validate_for(self.live.d)
        session = QuerySession(getattr(scorer, "u", None))
        if self.window_memo:
            from repro.cache import WindowMemo

            # One memo per direction: forward and reversed stitched
            # indexes answer over mirrored coordinates, so their windows
            # must never share entries. Both re-bind per batch against
            # the snapshot version (epoch invalidation under ingest).
            session.window_memo = WindowMemo()
            session.window_memo_reverse = WindowMemo()
        return session

    def execute(self, session, request: QueryRequest) -> DurableTopKResult:
        result = self.live.query(
            request.as_query(), request.scorer, algorithm=request.algorithm
        )
        # Freshness: how many rows landed while this query executed.
        result.extra["staleness_rows"] = max(0, self.live.n - result.extra["snapshot_n"])
        return result

    def execute_batch(
        self, session, requests: list[QueryRequest]
    ) -> list[DurableTopKResult]:
        """Answer the whole batch over one epoch snapshot, one shared pass."""
        results = self.live.query_batch(
            [request.as_query() for request in requests],
            requests[0].scorer,
            algorithm=[request.algorithm for request in requests],
            window_memo=session.window_memo,
            window_memo_reverse=session.window_memo_reverse,
        )
        live_n = self.live.n
        for result in results:
            result.extra["staleness_rows"] = max(0, live_n - result.extra["snapshot_n"])
        return results

    def close(self) -> None:
        """Stop the live dataset's maintenance thread."""
        self.live.close()


class ShardedBackend:
    """Serve requests through a multi-process shard coordinator.

    The pooled session is a stub: per-preference warm state (indexes,
    score caches) lives inside each shard worker's own session pool and
    survives independently of this service's pool, so a pool miss here
    costs one pickle round of the scorer and nothing else. The service's
    per-preference batching still pays off — batched requests hit the
    shard workers' warm sessions back to back.

    ``cache`` optionally plugs a coordinator-level
    :class:`~repro.cache.SemanticAnswerCache` in *front of the scatter*:
    cached requests are answered without touching a single worker pipe,
    only the misses fan out, and every gathered answer back-fills the
    cache. Scatter-gather is the most expensive execution path in the
    stack (pickle + pipe round per shard), so this is where structural
    reuse saves the most. The cache is thread-safe and shared across
    service workers; the sharded dataset is immutable, so its one
    version pins every entry.
    """

    name = "sharded"

    def __init__(self, coordinator, cache=None) -> None:
        self.coordinator = coordinator
        self.cache = cache

    def dataset_version(self):
        """The shared-memory dataset's content epoch."""
        return getattr(self.coordinator.dataset, "version", 0)

    def make_session(self, scorer) -> QuerySession:
        scorer.validate_for(self.coordinator.dataset.d)
        return QuerySession(getattr(scorer, "u", None))

    def execute(self, session, request: QueryRequest) -> DurableTopKResult:
        if self.cache is not None:
            version = self.dataset_version()
            cached = self.cache.get(request, version)
            if cached is not None:
                return cached
            result = self.coordinator.query(request)
            self.cache.put(request, version, result)
            return result
        return self.coordinator.query(request)

    def execute_batch(
        self, session, requests: list[QueryRequest]
    ) -> list[DurableTopKResult]:
        """Scatter the batch as one seq-tagged sub-request per shard.

        With a cache attached, cached answers are peeled off first and
        only the remaining misses scatter (fewer pipe rounds, smaller
        sub-batches); the gathered answers then back-fill the cache.
        """
        if self.cache is None:
            return self.coordinator.query_batch(requests)
        version = self.dataset_version()
        results: list[DurableTopKResult | None] = [None] * len(requests)
        misses: list[int] = []
        for i, request in enumerate(requests):
            cached = self.cache.get(request, version)
            if cached is not None:
                results[i] = cached
            else:
                misses.append(i)
        if misses:
            gathered = self.coordinator.query_batch([requests[i] for i in misses])
            for i, result in zip(misses, gathered):
                results[i] = result
                self.cache.put(requests[i], version, result)
        return results  # type: ignore[return-value]

    def metrics_source(self) -> dict:
        """Worker lifecycle counters for the service metrics snapshot.

        Polled by :class:`~repro.service.metrics.MetricsCollector` at
        snapshot time; reads coordinator-local counters only (no pipe
        round-trip), so it is safe to call at any frequency.
        """
        stats = self.coordinator.stats()
        return {
            "shard_restarts": stats["restarts"],
            "shard_revivals": stats["revivals"],
        }

    def close(self) -> None:
        """Stop the shard workers (and their shared block, if owned)."""
        self.coordinator.close()


class MiniDBBackend:
    """Serve requests through MiniDB's T-Base/T-Hop stored procedures.

    Parameters
    ----------
    db:
        An open :class:`~repro.minidb.database.MiniDB`.
    cold:
        Passed through to the procedures: ``True`` (default) empties the
        buffer pool per invocation, which makes every request's page
        counts deterministic and independent of serving order — the
        property the concurrency-equivalence test relies on. ``False``
        keeps the pool warm across requests (realistic serving, page
        counts then depend on interleaving).
    """

    name = "minidb"

    PROCEDURES = {"t-hop": t_hop_procedure, "t-base": t_base_procedure}
    BATCH_PROCEDURES = {
        "t-hop": t_hop_batch_procedure,
        "t-base": t_base_batch_procedure,
    }

    def __init__(self, db, cold: bool = True) -> None:
        self.db = db
        self.cold = cold
        # The buffer pool and pager are shared mutable state without
        # internal latching; one execution latch stands in for them.
        self._latch = threading.Lock()

    def dataset_version(self):
        """MiniDB tables are load-once immutable; one epoch per database."""
        return getattr(self.db, "version", 0)

    def make_session(self, scorer) -> QuerySession:
        u = getattr(scorer, "u", None)
        if u is None:
            raise ValueError(
                "the MiniDB backend needs a preference-vector scorer (scorer.u)"
            )
        return self.db.session(np.asarray(u, dtype=float))

    def _check(self, request: QueryRequest) -> None:
        if request.direction is not Direction.PAST:
            raise ValueError(
                "the MiniDB stored procedures answer look-back queries only"
            )
        if request.algorithm not in self.PROCEDURES:
            raise ValueError(
                f"MiniDB backend serves {sorted(self.PROCEDURES)}, "
                f"not {request.algorithm!r}"
            )

    @staticmethod
    def _result_of(request: QueryRequest, report) -> DurableTopKResult:
        stats = QueryStats(
            durability_topk_queries=report.topk_queries,
            pages_read=report.logical_reads,
        )
        return DurableTopKResult(
            ids=report.ids,
            query=request.as_query(),
            algorithm=report.algorithm,
            stats=stats,
            elapsed_seconds=report.elapsed_seconds,
            extra={
                "logical_reads": report.logical_reads,
                "physical_reads": report.physical_reads,
                "topk_queries": report.topk_queries,
            },
        )

    def execute(self, session, request: QueryRequest) -> DurableTopKResult:
        self._check(request)
        procedure = self.PROCEDURES[request.algorithm]
        lo, hi = request.interval if request.interval is not None else (None, None)
        with self._latch:
            report = procedure(
                self.db,
                session.u,
                request.k,
                request.tau,
                lo,
                hi,
                cold=self.cold,
                session=session,
            )
        return self._result_of(request, report)

    def execute_batch(
        self, session, requests: list[QueryRequest]
    ) -> list[DurableTopKResult]:
        """Run the batch through one warm session, grouped per procedure.

        Duplicate queries inside a group execute once (the batch
        procedures clone their reports under ``cold=True``); per-query
        page counts stay byte-identical to a serial loop.
        """
        for request in requests:
            self._check(request)
        groups: dict[str, list[int]] = {}
        for i, request in enumerate(requests):
            groups.setdefault(request.algorithm, []).append(i)
        results: list[DurableTopKResult | None] = [None] * len(requests)
        with self._latch:
            for algorithm, positions in groups.items():
                queries = []
                for i in positions:
                    request = requests[i]
                    lo, hi = (
                        request.interval if request.interval is not None else (None, None)
                    )
                    queries.append((request.k, request.tau, lo, hi))
                reports = self.BATCH_PROCEDURES[algorithm](
                    self.db, session.u, queries, cold=self.cold, session=session
                )
                for i, report in zip(positions, reports):
                    results[i] = self._result_of(requests[i], report)
        return results

    def close(self) -> None:
        """The database is caller-owned; nothing to release here."""
