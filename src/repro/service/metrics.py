"""Latency and throughput accounting for the serving layer.

The collector answers the questions an SLO dashboard asks of a top-k
serving system: how many requests per second, what the p50/p95/p99
latency is, how often the session pool served a warm session, and how
many requests were turned away (and why). All counters are guarded by
one lock; the service records a handful of events per *batch*, so the
lock is far off the per-query hot path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.service.request import QueryResponse, RejectionReason

__all__ = ["MetricsCollector", "MetricsSnapshot", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches numpy's default ("linear") method so reported figures agree
    with offline analysis — in particular, a p99 over fewer than 100
    samples interpolates between the two top order statistics instead of
    degrading to the sample maximum (nearest-rank behaviour), which
    matters for every short smoke run and warmup window. Returns 0.0 for
    an empty sample set; ``q`` is clamped into [0, 100].
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    q = min(max(q, 0.0), 100.0)
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class MetricsSnapshot:
    """A point-in-time copy of the service counters, plus derived rates."""

    elapsed_seconds: float
    submitted: int
    completed: int
    rejected: dict[str, int]
    batches: int
    pool_hits: int
    pool_misses: int
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_mean: float
    wait_p95: float
    service_p95: float
    extra: dict = field(default_factory=dict)
    #: Requests by scatter width (#shards touched); empty off sharded
    #: backends.
    fanout: dict[int, int] = field(default_factory=dict)
    #: Sub-queries served per shard id; empty off sharded backends.
    shard_queries: dict[int, int] = field(default_factory=dict)
    #: Requests answered by another request's execution (single-flight).
    coalesced: int = 0

    @property
    def throughput(self) -> float:
        """Completed requests per second over the measured window."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.completed / self.elapsed_seconds

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    @property
    def pool_hit_rate(self) -> float:
        checkouts = self.pool_hits + self.pool_misses
        return self.pool_hits / checkouts if checkouts else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    @property
    def mean_fanout(self) -> float:
        """Average #shards a sharded request scattered to (0.0 unsharded)."""
        total = sum(self.fanout.values())
        if not total:
            return 0.0
        return sum(width * count for width, count in self.fanout.items()) / total

    def as_dict(self) -> dict:
        out = {
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": dict(self.rejected),
            "throughput_rps": round(self.throughput, 1),
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "pool_hit_rate": round(self.pool_hit_rate, 4),
            "latency_ms": {
                "p50": round(self.latency_p50 * 1e3, 3),
                "p95": round(self.latency_p95 * 1e3, 3),
                "p99": round(self.latency_p99 * 1e3, 3),
                "mean": round(self.latency_mean * 1e3, 3),
            },
            "wait_p95_ms": round(self.wait_p95 * 1e3, 3),
            "service_p95_ms": round(self.service_p95 * 1e3, 3),
            "coalesced": self.coalesced,
        }
        if self.fanout:
            out["fanout"] = dict(self.fanout)
            out["mean_fanout"] = round(self.mean_fanout, 3)
            out["shard_queries"] = dict(self.shard_queries)
        return out

    def report(self, title: str = "service metrics") -> str:
        """Human-readable multi-line summary (result-file friendly)."""
        rej = ", ".join(f"{k}={v}" for k, v in sorted(self.rejected.items())) or "none"
        lines = [
            title,
            f"  requests: submitted={self.submitted} completed={self.completed} "
            f"rejected=[{rej}]",
            f"  throughput: {self.throughput:.1f} req/s over {self.elapsed_seconds:.2f}s",
            f"  latency ms: p50={self.latency_p50 * 1e3:.2f} "
            f"p95={self.latency_p95 * 1e3:.2f} p99={self.latency_p99 * 1e3:.2f} "
            f"mean={self.latency_mean * 1e3:.2f}",
            f"  queue wait p95: {self.wait_p95 * 1e3:.2f} ms   "
            f"service p95: {self.service_p95 * 1e3:.2f} ms",
            f"  batching: {self.batches} batches, mean size {self.mean_batch_size:.2f}, "
            f"{self.coalesced} coalesced",
            f"  session pool: hit rate {self.pool_hit_rate:.1%} "
            f"({self.pool_hits} hits / {self.pool_misses} misses)",
        ]
        if self.fanout:
            widths = ", ".join(
                f"{width}->{count}" for width, count in sorted(self.fanout.items())
            )
            shares = ", ".join(
                f"s{shard}={count}" for shard, count in sorted(self.shard_queries.items())
            )
            lines.append(
                f"  shard fanout: mean {self.mean_fanout:.2f} "
                f"(width->requests: {widths}; sub-queries: {shares})"
            )
        return "\n".join(lines)


class MetricsCollector:
    """Thread-safe accumulator fed by the service (and readable any time).

    ``completed`` counts *answered* requests only — rejections live in
    ``rejected`` and never pollute the throughput or latency figures.
    Latency samples are kept in a bounded sliding window
    (``sample_window`` most recent responses), so a long-lived service
    reports recent percentiles at constant memory instead of growing a
    list per request forever.
    """

    def __init__(self, sample_window: int = 65_536) -> None:
        if sample_window < 1:
            raise ValueError(f"sample_window must be >= 1, got {sample_window}")
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self.submitted = 0
        self.completed = 0
        self.rejected: dict[str, int] = {}
        self.batches = 0
        self.pool_hits = 0
        self.pool_misses = 0
        self._latency: deque[float] = deque(maxlen=sample_window)
        self._wait: deque[float] = deque(maxlen=sample_window)
        self._service: deque[float] = deque(maxlen=sample_window)
        self.fanout: dict[int, int] = {}
        self.shard_queries: dict[int, int] = {}
        self.coalesced = 0

    # -- recording hooks (called by DurableTopKService) -----------------
    def record_submit(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejection(self, reason: RejectionReason) -> None:
        with self._lock:
            self.rejected[reason.value] = self.rejected.get(reason.value, 0) + 1

    def record_batch(self, pool_hit: bool) -> None:
        with self._lock:
            self.batches += 1
            if pool_hit:
                self.pool_hits += 1
            else:
                self.pool_misses += 1

    def record_coalesced(self, n: int) -> None:
        """Count requests that rode another identical request's execution."""
        with self._lock:
            self.coalesced += n

    def record_response(self, response: QueryResponse) -> None:
        if response.error is not None:
            return  # rejections are counted by record_rejection only
        shards = None
        if response.result is not None:
            shards = response.result.extra.get("shards")
        with self._lock:
            self.completed += 1
            self._latency.append(response.total_seconds)
            self._wait.append(response.wait_seconds)
            self._service.append(response.service_seconds)
            if shards:
                # Sharded backends stamp the scatter set on every result;
                # fold it into the fanout histogram and per-shard shares.
                width = len(shards)
                self.fanout[width] = self.fanout.get(width, 0) + 1
                for shard in shards:
                    self.shard_queries[shard] = self.shard_queries.get(shard, 0) + 1

    def reset_clock(self) -> None:
        """Restart the throughput window (e.g. after warmup)."""
        with self._lock:
            self._started = time.perf_counter()

    # -- reading ---------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            latency = list(self._latency)
            wait = list(self._wait)
            service = list(self._service)
            elapsed = time.perf_counter() - self._started
            return MetricsSnapshot(
                elapsed_seconds=elapsed,
                submitted=self.submitted,
                completed=self.completed,
                rejected=dict(self.rejected),
                batches=self.batches,
                pool_hits=self.pool_hits,
                pool_misses=self.pool_misses,
                latency_p50=percentile(latency, 50),
                latency_p95=percentile(latency, 95),
                latency_p99=percentile(latency, 99),
                latency_mean=sum(latency) / len(latency) if latency else 0.0,
                wait_p95=percentile(wait, 95),
                service_p95=percentile(service, 95),
                fanout=dict(self.fanout),
                shard_queries=dict(self.shard_queries),
                coalesced=self.coalesced,
            )
