"""Latency and throughput accounting for the serving layer.

The collector answers the questions an SLO dashboard asks of a top-k
serving system: how many requests per second, what the p50/p95/p99
latency is, how often the session pool served a warm session, and how
many requests were turned away (and why).

Since the obs PR the collector is a facade over a
:class:`repro.obs.MetricsRegistry`: every service counter is a named
registry series (``service.requests.submitted``,
``service.rejected{reason=...}``, ``service.latency_seconds`` ...), so
the same numbers the snapshot reports are exposable as Prometheus text
via :func:`repro.obs.render_prometheus`. Each collector owns a private
registry by default — bench drivers create or reset one per measured
round — while process-wide series (WAL, pool evictions, shard restarts)
live in the obs global registry. The snapshot/report API is unchanged.

The service records a handful of events per *batch*; each touches a few
per-series locks, far off the per-query hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import MetricsRegistry
from repro.obs.slo import SLOMonitor
from repro.service.request import QueryResponse, RejectionReason

__all__ = ["MetricsCollector", "MetricsSnapshot", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches numpy's default ("linear") method so reported figures agree
    with offline analysis — in particular, a p99 over fewer than 100
    samples interpolates between the two top order statistics instead of
    degrading to the sample maximum (nearest-rank behaviour), which
    matters for every short smoke run and warmup window. Returns 0.0 for
    an empty sample set; ``q`` is clamped into [0, 100].
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    q = min(max(q, 0.0), 100.0)
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class MetricsSnapshot:
    """A point-in-time copy of the service counters, plus derived rates."""

    elapsed_seconds: float
    submitted: int
    completed: int
    rejected: dict[str, int]
    batches: int
    pool_hits: int
    pool_misses: int
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_mean: float
    wait_p95: float
    service_p95: float
    extra: dict = field(default_factory=dict)
    #: Requests by scatter width (#shards touched); empty off sharded
    #: backends.
    fanout: dict[int, int] = field(default_factory=dict)
    #: Sub-queries served per shard id; empty off sharded backends.
    shard_queries: dict[int, int] = field(default_factory=dict)
    #: Requests answered by another request's execution (single-flight),
    #: split by where the absorb happened: inside one batch pickup
    #: (``coalesced_batch``) vs joining an earlier batch's still-open
    #: flight at submit time (``coalesced_inflight``). ``coalesced``
    #: stays the total for back-compat.
    coalesced: int = 0
    coalesced_batch: int = 0
    coalesced_inflight: int = 0
    #: Shard worker processes respawned (lifetime of the backend), and
    #: the subset revived by a health check finding them dead between
    #: requests. Zero off sharded backends.
    shard_restarts: int = 0
    shard_revivals: int = 0
    #: Per-SLO burn-rate status (see :meth:`repro.obs.slo.SLOMonitor.status`);
    #: empty when the collector carries no SLO monitor.
    slo: dict[str, dict] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed requests per second over the measured window."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.completed / self.elapsed_seconds

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    @property
    def pool_hit_rate(self) -> float:
        checkouts = self.pool_hits + self.pool_misses
        return self.pool_hits / checkouts if checkouts else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    @property
    def mean_fanout(self) -> float:
        """Average #shards a sharded request scattered to (0.0 unsharded)."""
        total = sum(self.fanout.values())
        if not total:
            return 0.0
        return sum(width * count for width, count in self.fanout.items()) / total

    def as_dict(self) -> dict:
        out = {
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": dict(self.rejected),
            "throughput_rps": round(self.throughput, 1),
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "pool_hit_rate": round(self.pool_hit_rate, 4),
            "latency_ms": {
                "p50": round(self.latency_p50 * 1e3, 3),
                "p95": round(self.latency_p95 * 1e3, 3),
                "p99": round(self.latency_p99 * 1e3, 3),
                "mean": round(self.latency_mean * 1e3, 3),
            },
            "wait_p95_ms": round(self.wait_p95 * 1e3, 3),
            "service_p95_ms": round(self.service_p95 * 1e3, 3),
            "coalesced": self.coalesced,
            "coalesced_batch": self.coalesced_batch,
            "coalesced_inflight": self.coalesced_inflight,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        if self.fanout:
            out["fanout"] = dict(self.fanout)
            out["mean_fanout"] = round(self.mean_fanout, 3)
            out["shard_queries"] = dict(self.shard_queries)
        if self.shard_restarts or self.shard_revivals:
            out["shard_restarts"] = self.shard_restarts
            out["shard_revivals"] = self.shard_revivals
        if self.slo:
            out["slo"] = {
                name: dict(status) for name, status in self.slo.items()
            }
        return out

    def report(self, title: str = "service metrics") -> str:
        """Human-readable multi-line summary (result-file friendly)."""
        rej = ", ".join(f"{k}={v}" for k, v in sorted(self.rejected.items())) or "none"
        lines = [
            title,
            f"  requests: submitted={self.submitted} completed={self.completed} "
            f"rejected=[{rej}]",
            f"  throughput: {self.throughput:.1f} req/s over {self.elapsed_seconds:.2f}s",
            f"  latency ms: p50={self.latency_p50 * 1e3:.2f} "
            f"p95={self.latency_p95 * 1e3:.2f} p99={self.latency_p99 * 1e3:.2f} "
            f"mean={self.latency_mean * 1e3:.2f}",
            f"  queue wait p95: {self.wait_p95 * 1e3:.2f} ms   "
            f"service p95: {self.service_p95 * 1e3:.2f} ms",
            f"  batching: {self.batches} batches, mean size {self.mean_batch_size:.2f}, "
            f"{self.coalesced} coalesced ({self.coalesced_batch} batch, "
            f"{self.coalesced_inflight} in-flight)",
            f"  session pool: hit rate {self.pool_hit_rate:.1%} "
            f"({self.pool_hits} hits / {self.pool_misses} misses)",
        ]
        cache = self.extra.get("cache")
        if cache:
            lines.append(
                f"  answer cache: hit rate {cache.get('hit_rate', 0.0):.1%} "
                f"({cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses), "
                f"{cache.get('entries', 0)} entries, "
                f"{cache.get('bytes', 0)} bytes resident, "
                f"{cache.get('evictions', 0)} evicted"
            )
        if self.fanout:
            widths = ", ".join(
                f"{width}->{count}" for width, count in sorted(self.fanout.items())
            )
            shares = ", ".join(
                f"s{shard}={count}" for shard, count in sorted(self.shard_queries.items())
            )
            lines.append(
                f"  shard fanout: mean {self.mean_fanout:.2f} "
                f"(width->requests: {widths}; sub-queries: {shares})"
            )
        if self.fanout or self.shard_restarts or self.shard_revivals:
            lines.append(
                f"  shard workers: {self.shard_restarts} restarts "
                f"({self.shard_revivals} health-check revivals)"
            )
        for name, status in sorted(self.slo.items()):
            state = "BURNING" if status.get("burning") else "ok"
            lines.append(
                f"  slo {name}: {state} burn fast={status.get('fast_burn_rate', 0.0):.2f} "
                f"slow={status.get('slow_burn_rate', 0.0):.2f} "
                f"(bad {status.get('bad', 0)}/{status.get('events', 0)} "
                f"over {status.get('description', '')!r})"
            )
        return "\n".join(lines)


class MetricsCollector:
    """Thread-safe accumulator fed by the service (and readable any time).

    ``completed`` counts *answered* requests only — rejections live in
    ``rejected`` and never pollute the throughput or latency figures.
    Latency samples are kept in a bounded sliding window
    (``sample_window`` most recent responses), so a long-lived service
    reports recent percentiles at constant memory instead of growing a
    list per request forever.

    Every counter is a series in ``self.registry`` (private by default;
    pass one to share). ``add_source`` registers a callable polled at
    snapshot time for backend-owned gauges — the sharded backend reports
    its worker restarts/revivals this way, so the service snapshot
    surfaces them like ``fanout`` without the service polling shards.

    Pass an :class:`~repro.obs.slo.SLOMonitor` as ``slos`` to evaluate
    burn rates over the same event stream: every answered response feeds
    the latency (and, when the result carries ``staleness_rows``, the
    staleness) objective, every admission outcome feeds the rejection
    objective, and the monitor's gauges are published into this
    collector's registry so Prometheus export and ``repro top`` see
    them. The per-event cost is a few deque appends — obs-bench gates it
    below 1% of per-request wall time.
    """

    def __init__(
        self,
        sample_window: int = 65_536,
        registry: MetricsRegistry | None = None,
        slos: SLOMonitor | None = None,
    ) -> None:
        if sample_window < 1:
            raise ValueError(f"sample_window must be >= 1, got {sample_window}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slos = slos
        if slos is not None:
            slos.bind_registry(self.registry)
        self._started = time.perf_counter()
        self._submitted = self.registry.counter("service.requests.submitted")
        self._completed = self.registry.counter("service.requests.completed")
        self._batches = self.registry.counter("service.batches")
        self._pool_hits = self.registry.counter("service.pool.hits")
        self._pool_misses = self.registry.counter("service.pool.misses")
        self._latency = self.registry.histogram(
            "service.latency_seconds", window=sample_window
        )
        self._wait = self.registry.histogram(
            "service.wait_seconds", window=sample_window
        )
        self._service = self.registry.histogram(
            "service.time_seconds", window=sample_window
        )
        self._sources: list[Callable[[], dict]] = []

    # -- back-compat attribute surface ----------------------------------
    @property
    def submitted(self) -> int:
        return self._submitted.value

    @property
    def completed(self) -> int:
        return self._completed.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def pool_hits(self) -> int:
        return self._pool_hits.value

    @property
    def pool_misses(self) -> int:
        return self._pool_misses.value

    @property
    def coalesced(self) -> int:
        """Total single-flight absorbs across both modes."""
        return self.coalesced_batch + self.coalesced_inflight

    @property
    def coalesced_batch(self) -> int:
        return self._labeled("service.coalesced", "mode").get("batch", 0)

    @property
    def coalesced_inflight(self) -> int:
        return self._labeled("service.coalesced", "mode").get("inflight", 0)

    def _labeled(self, name: str, label: str, as_int_key: bool = False) -> dict:
        out: dict = {}
        for series in self.registry.collect(kind="counter", prefix=name):
            labels = dict(series.labels)
            if label not in labels:
                continue
            key = int(labels[label]) if as_int_key else labels[label]
            out[key] = series.value
        return out

    @property
    def rejected(self) -> dict[str, int]:
        return self._labeled("service.rejected", "reason")

    @property
    def fanout(self) -> dict[int, int]:
        return self._labeled("service.fanout", "width", as_int_key=True)

    @property
    def shard_queries(self) -> dict[int, int]:
        return self._labeled("service.shard_queries", "shard", as_int_key=True)

    # -- recording hooks (called by DurableTopKService) -----------------
    def record_submit(self) -> None:
        self._submitted.inc()

    def record_rejection(self, reason: RejectionReason) -> None:
        self.registry.counter("service.rejected", reason=reason.value).inc()
        if self.slos is not None:
            self.slos.record("rejections", bad=True)

    def record_batch(self, pool_hit: bool) -> None:
        self._batches.inc()
        if pool_hit:
            self._pool_hits.inc()
        else:
            self._pool_misses.inc()

    def record_coalesced(self, n: int, mode: str = "batch") -> None:
        """Count requests that rode another identical request's execution.

        ``mode`` says where the absorb happened: ``"batch"`` for
        duplicates collapsed inside one batch pickup, ``"inflight"`` for
        submits that joined an earlier batch's still-open flight.
        """
        self.registry.counter("service.coalesced", mode=mode).inc(n)

    def record_response(self, response: QueryResponse) -> None:
        if response.error is not None:
            return  # rejections are counted by record_rejection only
        shards = None
        if response.result is not None:
            shards = response.result.extra.get("shards")
        self._completed.inc()
        self._latency.observe(response.total_seconds)
        self._wait.observe(response.wait_seconds)
        self._service.observe(response.service_seconds)
        if self.slos is not None:
            self.slos.observe("latency", response.total_seconds)
            self.slos.record("rejections", bad=False)
            staleness = None
            if response.result is not None:
                staleness = response.result.extra.get("staleness_rows")
            if staleness is not None:
                self.slos.observe("staleness", float(staleness))
        if shards:
            # Sharded backends stamp the scatter set on every result;
            # fold it into the fanout histogram and per-shard shares.
            self.registry.counter("service.fanout", width=len(shards)).inc()
            for shard in shards:
                self.registry.counter("service.shard_queries", shard=shard).inc()

    def add_source(self, source: Callable[[], dict]) -> None:
        """Poll ``source()`` at snapshot time for backend-owned counters.

        The returned dict's ``shard_restarts``/``shard_revivals`` keys
        land in the matching snapshot fields; anything else lands in
        ``snapshot.extra``. Source failures are surfaced, not swallowed —
        a backend that registers a source promises it stays callable.
        """
        self._sources.append(source)

    def reset_clock(self) -> None:
        """Restart the throughput window only.

        Samples and counters recorded before the call survive — after a
        warmup phase that is almost never what a measurement wants, since
        warmup latencies keep polluting the percentile windows. Use
        :meth:`reset` between warmup and the measured run.
        """
        self._started = time.perf_counter()

    def reset(self) -> None:
        """Full reset: clock, samples and every counter series.

        This is the post-warmup reset: percentiles, throughput and
        counters all start from zero. Snapshot sources stay registered
        (backend-lifetime counters like shard restarts are cumulative by
        design).
        """
        self.registry.reset()
        if self.slos is not None:
            self.slos.reset()
        self._started = time.perf_counter()

    # -- reading ---------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        latency = self._latency.samples()
        wait = self._wait.samples()
        service = self._service.samples()
        elapsed = time.perf_counter() - self._started
        sourced: dict = {}
        for source in self._sources:
            sourced.update(source())
        shard_restarts = int(sourced.pop("shard_restarts", 0))
        shard_revivals = int(sourced.pop("shard_revivals", 0))
        slo = self.slos.status() if self.slos is not None else {}
        return MetricsSnapshot(
            elapsed_seconds=elapsed,
            submitted=self.submitted,
            completed=self.completed,
            rejected=self.rejected,
            batches=self.batches,
            pool_hits=self.pool_hits,
            pool_misses=self.pool_misses,
            latency_p50=percentile(latency, 50),
            latency_p95=percentile(latency, 95),
            latency_p99=percentile(latency, 99),
            latency_mean=sum(latency) / len(latency) if latency else 0.0,
            wait_p95=percentile(wait, 95),
            service_p95=percentile(service, 95),
            extra=sourced,
            fanout=self.fanout,
            shard_queries=self.shard_queries,
            coalesced=self.coalesced,
            coalesced_batch=self.coalesced_batch,
            coalesced_inflight=self.coalesced_inflight,
            shard_restarts=shard_restarts,
            shard_revivals=shard_revivals,
            slo=slo,
        )
