"""Bounded per-preference session pool.

Hot preferences are the whole point of the serving layer: the paper's
interactive workload re-queries the same user preference with different
``k``/``tau``/intervals, and Zipfian popularity means a few preferences
dominate traffic. The pool keeps one warm
:class:`~repro.core.session.QuerySession` per recently-served preference
(bounded, LRU-evicted), so a batch for a hot preference starts with its
block upper bounds, decoded skyline points and score vectors already in
place instead of rebuilding them per request.

The pool only ever holds *idle* sessions. The service checks a session
out for the duration of one batch and back in afterwards; because the
dispatcher admits at most one in-flight batch per preference key, a key
never has two live sessions racing each other (which also makes the
skyline-tree block's lazily-memoised score cache safe without further
locking). Evicted sessions are :meth:`~repro.core.session.QuerySession.close`-d
eagerly — dropping a session is always correct, it only costs future
cache hits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable

from repro.core.session import QuerySession
from repro.obs import global_registry

__all__ = ["SessionPool"]


class SessionPool:
    """LRU-bounded map of preference key -> idle :class:`QuerySession`.

    Parameters
    ----------
    capacity:
        Maximum number of idle sessions retained. Sizing it at or above
        the working set of distinct preferences makes the hit rate
        approach 1.0; sizing below it degrades gracefully to the engine's
        own index LRU. The default covers the documented 64–128
        preference Zipfian workload (a 64-session pool under a
        128-preference working set self-inflicts eviction churn — watch
        ``stats()['churn']``); the service constructor and the bench
        CLIs expose it for sizing to the actual workload.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._idle: "OrderedDict[Hashable, QuerySession]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.checkins = 0
        self._closed = False

    def checkout(
        self, key: Hashable, factory: Callable[[], QuerySession]
    ) -> tuple[QuerySession, bool]:
        """A session for ``key``: ``(session, was_pool_hit)``.

        Misses run ``factory`` *outside* the lock (session construction
        may build a preference-bound index) — safe because the service
        never checks out one key concurrently.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("session pool is closed")
            session = self._idle.pop(key, None)
            if session is not None:
                self.hits += 1
                return session, True
            self.misses += 1
        return factory(), False

    def checkin(self, key: Hashable, session: QuerySession) -> None:
        """Return a session to the pool, evicting the coldest if full."""
        evicted: QuerySession | None = None
        with self._lock:
            self.checkins += 1
            if self._closed:
                evicted = session
            else:
                self._idle[key] = session
                self._idle.move_to_end(key)
                if len(self._idle) > self.capacity:
                    _, evicted = self._idle.popitem(last=False)
                    self.evictions += 1
                    global_registry().counter("service.pool.evictions").inc()
        if evicted is not None:
            evicted.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._idle)

    @property
    def hit_rate(self) -> float:
        checkouts = self.hits + self.misses
        return self.hits / checkouts if checkouts else 0.0

    @property
    def churn(self) -> float:
        """Fraction of checkins that evicted a session.

        Near-zero when capacity covers the preference working set; a
        sustained high churn means the pool is undersized for the
        workload and warm sessions are being destroyed to make room.
        """
        return self.evictions / self.checkins if self.checkins else 0.0

    def stats(self) -> dict[str, float | int]:
        with self._lock:
            idle = len(self._idle)
        return {
            "capacity": self.capacity,
            "idle": idle,
            "hits": self.hits,
            "misses": self.misses,
            "checkins": self.checkins,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
            "churn": round(self.churn, 4),
        }

    def close(self) -> None:
        """Close every idle session and refuse further checkouts."""
        with self._lock:
            self._closed = True
            sessions = list(self._idle.values())
            self._idle.clear()
        for session in sessions:
            session.close()
