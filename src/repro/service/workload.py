"""Multi-client workload generation for the serving layer.

The paper's experiments average over randomly drawn preference vectors
(Section VI); a *serving* workload additionally needs a popularity
distribution over those preferences and an arrival process. This module
provides both:

* **Preference popularity** — Zipfian over a fixed catalogue of
  preference vectors, the standard model for interactive query traffic
  (a few hot preferences dominate, a long tail keeps the caches honest).
* **Query-parameter mix** — ``k``, ``tau`` and interval length drawn per
  request from configurable choice sets (fractions of the dataset size,
  mirroring the Table III sweeps), with an optional share of look-ahead
  (``FUTURE``-direction) queries.
* **Arrival models** — *closed-loop* (``clients`` threads, each issuing
  its next request when the previous one answers: throughput-bound) and
  *open-loop* (Poisson arrivals at a target rate, independent of service
  speed: the model that exposes queueing delay and admission control).

Generation is deterministic given the spec's seed, so the equivalence
tests can replay the exact request stream serially.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.query import Direction
from repro.scoring import LinearPreference, random_preference
from repro.service.request import QueryRequest, QueryResponse

__all__ = [
    "WorkloadSpec",
    "WorkloadGenerator",
    "zipfian_probabilities",
    "open_loop_arrivals",
    "run_closed_loop",
    "run_open_loop",
    "run_pipelined",
]


def zipfian_probabilities(n: int, s: float = 1.1) -> np.ndarray:
    """Zipf(s) popularity over ranks ``1..n``, normalised to sum 1."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if s < 0:
        raise ValueError(f"zipf exponent must be >= 0, got {s}")
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** s
    return weights / weights.sum()


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a synthetic serving workload.

    ``tau_fractions`` and ``interval_fractions`` are fractions of the
    dataset size ``n``; intervals are placed uniformly at random inside
    the time domain. ``future_fraction`` is the share of look-ahead
    queries (keep 0 for the MiniDB backend, whose procedures are
    look-back only).

    ``shapes_per_preference``, when set, pins each preference to a fixed
    catalogue of that many pre-drawn query shapes (``k``/``tau``/
    interval/direction/algorithm) and draws the shape per request
    Zipfian(``shape_zipf_s``) — the dashboard-tile traffic model, where
    a preference's hot panels repeat verbatim and near-duplicates
    overlap heavily. That repetition is what single-flight coalescing
    and the batched shared-pass execution feed on; leave it ``None`` for
    fully independent draws.
    """

    n_preferences: int = 64
    d: int = 2
    zipf_s: float = 1.1
    k_choices: Sequence[int] = (5, 10)
    tau_fractions: Sequence[float] = (0.025, 0.05)
    interval_fractions: Sequence[float] = (0.05, 0.10)
    algorithms: Sequence[str] = ("t-hop",)
    future_fraction: float = 0.0
    timeout: float | None = None
    seed: int = 0
    shapes_per_preference: int | None = None
    shape_zipf_s: float = 1.0


class WorkloadGenerator:
    """Draws :class:`QueryRequest` streams for one dataset size.

    The preference catalogue is materialised once (scorer objects are
    shared across requests, so requests for the same rank share a
    preference key — the property batching and pooling exploit).
    """

    def __init__(self, spec: WorkloadSpec, n: int) -> None:
        if n < 2:
            raise ValueError(f"dataset size must be >= 2, got {n}")
        self.spec = spec
        self.n = n
        self._rng = np.random.default_rng(spec.seed)
        self.scorers = [
            LinearPreference(random_preference(self._rng, spec.d))
            for _ in range(spec.n_preferences)
        ]
        self.popularity = zipfian_probabilities(spec.n_preferences, spec.zipf_s)
        if spec.shapes_per_preference is not None:
            if spec.shapes_per_preference < 1:
                raise ValueError(
                    f"shapes_per_preference must be >= 1, got "
                    f"{spec.shapes_per_preference}"
                )
            # Per-preference shape catalogues: each preference repeats
            # its own small set of query shapes (Zipfian-hot).
            self.shape_popularity = zipfian_probabilities(
                spec.shapes_per_preference, spec.shape_zipf_s
            )
            self.shapes = [
                [self._draw_shape() for _ in range(spec.shapes_per_preference)]
                for _ in range(spec.n_preferences)
            ]
        else:
            self.shape_popularity = None
            self.shapes = None

    def _draw_shape(self) -> tuple:
        """One (k, tau, interval, direction, algorithm) draw."""
        spec, rng, n = self.spec, self._rng, self.n
        k = int(rng.choice(list(spec.k_choices)))
        tau = max(1, int(float(rng.choice(list(spec.tau_fractions))) * n))
        length = max(1, int(float(rng.choice(list(spec.interval_fractions))) * n))
        lo = int(rng.integers(0, max(1, n - length)))
        hi = min(n - 1, lo + length - 1)
        direction = (
            Direction.FUTURE
            if spec.future_fraction > 0 and rng.random() < spec.future_fraction
            else Direction.PAST
        )
        algorithm = str(rng.choice(list(spec.algorithms)))
        return k, tau, (lo, hi), direction, algorithm

    def _request_for(self, rank: int) -> QueryRequest:
        """One request under the preference at popularity ``rank``."""
        spec, rng = self.spec, self._rng
        if self.shapes is not None:
            shape_rank = int(
                rng.choice(len(self.shape_popularity), p=self.shape_popularity)
            )
            k, tau, interval, direction, algorithm = self.shapes[rank][shape_rank]
        else:
            k, tau, interval, direction, algorithm = self._draw_shape()
        return QueryRequest(
            scorer=self.scorers[rank],
            k=k,
            tau=tau,
            interval=interval,
            direction=direction,
            algorithm=algorithm,
            timeout=spec.timeout,
        )

    def request(self) -> QueryRequest:
        """One request drawn from the spec's distributions."""
        rng = self._rng
        return self._request_for(int(rng.choice(len(self.scorers), p=self.popularity)))

    def requests(self, count: int) -> list[QueryRequest]:
        """A deterministic batch of ``count`` requests."""
        return [self.request() for _ in range(count)]

    def preference_batch(self, size: int) -> list[QueryRequest]:
        """``size`` requests under one Zipfian-drawn preference.

        The shape of a same-preference batch exactly as the service's
        per-preference batching sees it — what the batched-execution
        benchmark drives through ``query_batch``.
        """
        rank = int(self._rng.choice(len(self.scorers), p=self.popularity))
        return [self._request_for(rank) for _ in range(size)]

    def fanout_profile(self, requests: Sequence[QueryRequest], spans) -> dict[int, int]:
        """Offered scatter width of a request stream over shard spans.

        ``spans`` are inclusive ownership ranges — either
        :class:`~repro.shard.dataset.ShardSpan` tuples or plain
        ``(lo, hi)`` pairs. Returns a histogram mapping *width* (how
        many spans a request's interval straddles) to request count;
        this is the fanout the workload *offers*, which the serving
        metrics' measured fanout should match.
        """
        ranges = []
        for span in spans:
            if hasattr(span, "lo"):
                ranges.append((span.lo, span.hi))
            else:
                lo, hi = span
                ranges.append((int(lo), int(hi)))
        profile: dict[int, int] = {}
        for request in requests:
            lo, hi = request.as_query().resolve_interval(self.n)
            width = sum(1 for slo, shi in ranges if slo <= hi and shi >= lo)
            profile[width] = profile.get(width, 0) + 1
        return profile


def open_loop_arrivals(
    requests: Iterable[QueryRequest], rate: float, seed: int = 0
) -> Iterator[tuple[float, QueryRequest]]:
    """Pair requests with Poisson inter-arrival delays (seconds).

    ``rate`` is the offered load in requests/second; delays are iid
    exponential with mean ``1/rate``, the standard open-loop model where
    arrivals do not wait for completions.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be > 0, got {rate}")
    rng = np.random.default_rng(seed)
    for request in requests:
        yield float(rng.exponential(1.0 / rate)), request


@dataclass
class _SharedCursor:
    """Hand out requests to closed-loop clients one at a time."""

    requests: Sequence[QueryRequest]
    lock: threading.Lock = field(default_factory=threading.Lock)
    next_index: int = 0

    def take(self) -> tuple[int, QueryRequest] | None:
        with self.lock:
            if self.next_index >= len(self.requests):
                return None
            i = self.next_index
            self.next_index += 1
            return i, self.requests[i]


def run_closed_loop(
    query: Callable[[QueryRequest], QueryResponse],
    requests: Sequence[QueryRequest],
    clients: int = 8,
) -> list[QueryResponse]:
    """Drive ``query`` with ``clients`` threads, each one-at-a-time.

    ``query`` is any blocking request->response callable — a
    :meth:`DurableTopKService.query` bound method, a
    :class:`LockedEngineService`'s, or a plain function — so the same
    driver measures every serving strategy. Responses are returned in
    request order. If ``query`` raises in a client thread, that first
    exception is re-raised here (with the remaining clients drained)
    rather than dying silently inside the thread.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    cursor = _SharedCursor(requests)
    responses: list[QueryResponse | None] = [None] * len(requests)
    errors: list[BaseException] = []

    def client() -> None:
        while True:
            taken = cursor.take()
            if taken is None:
                return
            i, request = taken
            try:
                responses[i] = query(request)
            except BaseException as exc:
                with cursor.lock:
                    errors.append(exc)
                    cursor.next_index = len(requests)  # stop all clients
                return

    threads = [
        threading.Thread(target=client, name=f"closed-loop-client-{i}", daemon=True)
        for i in range(min(clients, max(1, len(requests))))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return responses  # type: ignore[return-value]


def run_pipelined(
    submit: Callable[[QueryRequest], "object"],
    requests: Sequence[QueryRequest],
    clients: int = 8,
) -> list[QueryResponse]:
    """Each client submits its share up front, then collects responses.

    The pipelined model: clients tolerate response latency but not
    admission latency (think dashboard tiles fanning out panel queries).
    Because submits don't wait for completions, the service sees deep
    per-preference queues — the regime where request batching actually
    coalesces work. A lock-based service cannot be driven this way at
    all: its blocking call *is* the admission. Responses come back in
    request order.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    shards = [list(range(i, len(requests), clients)) for i in range(clients)]
    futures: list[object | None] = [None] * len(requests)
    errors: list[BaseException] = []

    def client(shard: list[int]) -> None:
        try:
            for i in shard:
                futures[i] = submit(requests[i])
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(shard,), name=f"pipelined-client-{i}")
        for i, shard in enumerate(shards)
        if shard
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return [future.result() for future in futures]  # type: ignore[union-attr]


def run_open_loop(
    submit: Callable[[QueryRequest], "object"],
    requests: Sequence[QueryRequest],
    rate: float,
    seed: int = 0,
) -> list[QueryResponse]:
    """Submit at a Poisson ``rate`` and gather all responses.

    ``submit`` must return a future with a ``result()`` method (the
    service's :meth:`submit`). The producer never blocks on completions —
    queueing and admission control absorb any mismatch between offered
    and served rate, which is exactly what this driver measures.
    """
    futures = []
    for delay, request in open_loop_arrivals(requests, rate, seed=seed):
        time.sleep(delay)
        futures.append(submit(request))
    return [future.result() for future in futures]
