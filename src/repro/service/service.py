"""The concurrent durable top-k query service.

:class:`DurableTopKService` turns the single-caller engine/MiniDB stack
into a multi-client serving layer:

* **Admission control** — a bounded queue; a submit against a full queue
  is rejected immediately with
  :attr:`~repro.service.request.RejectionReason.QUEUE_FULL`, and a
  request whose queue wait exceeds its ``timeout`` is rejected with
  ``TIMEOUT`` when a worker picks it up. Rejections are typed data on
  the returned future, never exceptions inside the service.
* **Per-preference batching** — pending requests are grouped by
  preference key; a worker drains up to ``max_batch`` same-preference
  requests in one go and serves them with a single warm session. At most
  one batch per key is in flight, so same-preference work is serialised
  (sessions are single-threaded by contract) while distinct preferences
  run in parallel across the worker pool. The whole batch is handed to
  the backend's ``execute_batch`` in one call, so the index traversal
  work (skyline decode, block upper-bound sweeps, window top-k) is
  shared across the batch instead of re-run per request.
* **Single-flight coalescing** — identical in-flight queries (same
  ``(k, tau, interval, direction, algorithm)`` under one preference)
  collapse onto one execution; every waiter gets its own copy of the
  one answer. This works at two ranges: duplicates landing in the same
  batch pickup dedupe inside the batch (``coalesced_batch``), and a
  submit identical to a request *already queued or executing* joins
  that request's flight in a cross-batch
  :class:`~repro.cache.InFlightRegistry` without taking a queue slot
  (``coalesced_inflight``). Followers inherit their leader's fate —
  answer, timeout or shutdown — so no join can hang a future.
* **Semantic answer cache** — pass a
  :class:`~repro.cache.SemanticAnswerCache` as ``cache`` and every
  submit first looks up the query's structure at the backend's current
  ``dataset_version()``; an exact hit replays a clone of the cached
  report and skips admission, queueing and execution entirely (the
  response carries ``extra["cache"] = "exact"``). Batch leaders
  back-fill the cache, keyed on the epoch their answer was actually
  computed at, so ingest invalidates by construction.
* **Session pooling** — the per-preference
  :class:`~repro.core.session.QuerySession` survives between batches in
  a bounded LRU :class:`~repro.service.pool.SessionPool`, so a hot
  preference keeps its preference-bound index and score caches.
* **Metrics** — throughput, latency percentiles, pool hit rate and
  rejection counts accumulate in a
  :class:`~repro.service.metrics.MetricsCollector`.

:class:`LockedEngineService` is the contrast class: the naive way to
make the engine multi-client is one global lock around it. It shares the
service's request/response/metrics surface so benchmarks can swap the
two — `benchmarks/test_service_throughput.py` measures the gap.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Hashable

from repro.cache import InFlight, InFlightRegistry
from repro.core.batch import clone_result
from repro.obs import add_span, current_context, log_event, trace_span
from repro.service.metrics import MetricsCollector
from repro.service.pool import SessionPool
from repro.service.request import (
    QueryRejected,
    QueryRequest,
    QueryResponse,
    RejectionReason,
)

__all__ = ["DurableTopKService", "LockedEngineService", "shed_low_priority"]


def shed_low_priority(request: QueryRequest, monitor) -> RejectionReason | None:
    """Default degradation policy: drop below-normal work during fast burn.

    Consults only the *fast* burn window — degradation must react within
    seconds to be worth anything, and shedding a ``priority < 0`` request
    is cheap and reversible, so it does not wait for the slow window's
    confirmation the way paging would. Normal- and high-priority work is
    never shed; it still competes for the queue as usual.
    """
    if request.priority < 0 and monitor.fast_burning():
        return RejectionReason.SHED
    return None


@dataclass
class _Pending:
    """One queued request with its future and enqueue timestamp.

    ``flight`` is the cross-batch single-flight entry this request
    leads, if any: later identical submits join it instead of queueing,
    and whoever resolves this request also settles the flight.
    """

    request: QueryRequest
    future: "Future[QueryResponse]"
    enqueued: float
    flight: InFlight | None = None


class DurableTopKService:
    """Session-pooled, batching, admission-controlled query service.

    Parameters
    ----------
    backend:
        An execution backend (see :mod:`repro.service.backends`).
    workers:
        Worker threads executing batches.
    max_queue:
        Admission bound on queued (not yet picked up) requests.
    max_batch:
        Maximum same-preference requests served per session checkout.
    pool_capacity:
        Idle sessions retained (see :class:`SessionPool`).
    default_timeout:
        Queue-wait deadline applied to requests that carry none.
    max_concurrent_builds:
        Cold-session constructions allowed at once. A cold checkout
        builds a preference-bound index — tens of milliseconds of
        GIL-holding, cache-hungry work. Letting every worker build
        simultaneously convoys them (measured ~50x slowdown per build at
        8 workers on one core: the classic thundering-herd), so builds
        are single-flighted by default while warm batches keep flowing.
    degradation:
        Admission-time load-shedding policy, consulted only when the
        collector carries an :class:`~repro.obs.slo.SLOMonitor`
        (``metrics.slos``). Called as ``degradation(request, monitor)``;
        a returned :class:`RejectionReason` rejects the request before
        it takes a queue slot — the point is to shed *chosen* work
        (lowest priority first) while the SLO fast window burns, instead
        of letting the queue fill and QUEUE_FULL shed arbitrary work.
        Defaults to :func:`shed_low_priority`; pass ``None`` to disable.
    cache:
        Optional :class:`~repro.cache.SemanticAnswerCache`. Submits
        check it before admission (an exact hit answers without a queue
        slot, session or execution) and batch leaders back-fill it; its
        stats ride along in ``metrics.snapshot().extra["cache"]``.
        Cross-batch single-flighting is always on — it needs no memory
        budget and can never serve stale data (a joined flight executes
        in the future, not the past).
    """

    def __init__(
        self,
        backend,
        workers: int = 4,
        max_queue: int = 1024,
        max_batch: int = 16,
        pool_capacity: int = 128,
        default_timeout: float | None = None,
        metrics: MetricsCollector | None = None,
        max_concurrent_builds: int = 1,
        degradation=shed_low_priority,
        cache=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_concurrent_builds < 1:
            raise ValueError(
                f"max_concurrent_builds must be >= 1, got {max_concurrent_builds}"
            )
        self.backend = backend
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.default_timeout = default_timeout
        self.degradation = degradation
        self.cache = cache
        self.inflight = InFlightRegistry()
        # The epoch lookups and fills key on; backends without a version
        # surface degrade to one constant epoch (static data).
        self._version_of = getattr(backend, "dataset_version", None) or (lambda: 0)
        self.pool = SessionPool(pool_capacity)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        # Backends that own lifecycle counters (the sharded backend's
        # worker restarts/revivals) publish them into the snapshot here.
        source = getattr(backend, "metrics_source", None)
        if source is not None:
            self.metrics.add_source(source)
        if cache is not None:
            self.metrics.add_source(lambda: {"cache": cache.stats()})
        self._build_gate = threading.Semaphore(max_concurrent_builds)

        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._pending: dict[Hashable, deque[_Pending]] = {}
        self._ready: deque[Hashable] = deque()  # keys with work, not in flight
        self._active: set[Hashable] = set()  # keys currently being served
        self._queued = 0
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"durable-topk-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest) -> "Future[QueryResponse]":
        """Enqueue a request; returns a future resolving to a response.

        The cheap reuse tiers run before admission: an exact answer-cache
        hit resolves the future right here (no queue slot, no session,
        no execution; ``extra["cache"] = "exact"``), and a request
        identical to one already queued or executing joins that
        request's flight and is resolved when the flight settles
        (``extra["cache"] = "inflight"``). Only a genuine miss pays
        admission control: a full queue (or a closed service) resolves
        the future immediately with a typed rejection, and under SLO
        fast burn the degradation policy may shed the request before it
        takes a queue slot.
        """
        self.metrics.record_submit()
        future: "Future[QueryResponse]" = Future()
        key = request.key
        if self.cache is not None:
            start = time.perf_counter()
            cached = self.cache.get(request, self._version_of())
            if cached is not None:
                elapsed = time.perf_counter() - start
                response = QueryResponse(
                    request=request,
                    result=cached,
                    service_seconds=elapsed,
                    total_seconds=elapsed,
                    batch_size=0,
                    extra={"cache": "exact"},
                )
                self.metrics.record_response(response)
                future.set_result(response)
                return future
        flight_key = (key, self._flight_signature(request))
        if self.inflight.join(
            flight_key, _Pending(request, future, time.perf_counter())
        ):
            return future
        monitor = self.metrics.slos
        if monitor is not None and self.degradation is not None:
            reason = self.degradation(request, monitor)
            if reason is not None:
                return self._reject(request, future, reason)
        with self._lock:
            if self._closed:
                return self._reject(request, future, RejectionReason.SHUTDOWN)
            if self._queued >= self.max_queue:
                return self._reject(request, future, RejectionReason.QUEUE_FULL)
            self._queued += 1
            bucket = self._pending.get(key)
            if bucket is None:
                bucket = deque()
                self._pending[key] = bucket
            pending = _Pending(request, future, time.perf_counter())
            # Now that the request holds a queue slot it becomes the
            # leader for its structure; identical submits from here on
            # ride its execution instead of queueing.
            pending.flight = self.inflight.open(flight_key)
            bucket.append(pending)
            if key not in self._active and len(bucket) == 1:
                self._ready.append(key)
                self._work_ready.notify()
        return future

    def query(self, request: QueryRequest) -> QueryResponse:
        """Blocking convenience: submit and wait for the response."""
        return self.submit(request).result()

    def close(self, timeout: float | None = None) -> None:
        """Stop accepting work, drain in-flight batches, reject the rest.

        Idempotent. Requests still queued when the workers exit resolve
        with a ``SHUTDOWN`` rejection rather than hanging their futures.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._work_ready.notify_all()
        for thread in self._workers:
            thread.join(timeout=timeout)
        with self._lock:
            leftovers = [item for bucket in self._pending.values() for item in bucket]
            self._pending.clear()
            self._ready.clear()
            self._queued = 0
        for item in leftovers:
            self._reject(item.request, item.future, RejectionReason.SHUTDOWN)
        # Flights whose leaders were never picked up (or joined after the
        # leader resolved during shutdown) must not hang their followers.
        for _, followers in self.inflight.drain():
            for follower in followers:
                self._reject(
                    follower.request, follower.future, RejectionReason.SHUTDOWN
                )
        self.pool.close()
        self.backend.close()

    def __enter__(self) -> "DurableTopKService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _reject(
        self,
        request: QueryRequest,
        future: "Future[QueryResponse]",
        reason: RejectionReason,
    ) -> "Future[QueryResponse]":
        self.metrics.record_rejection(reason)
        # Joinable against traces: inside a span (timeouts resolved while
        # the batch span is open) the line carries that trace id; at
        # submit time no trace exists yet, which null states honestly.
        context = current_context()
        log_event(
            "service.reject",
            reason=reason.value,
            trace_id=context[0] if context else None,
            algorithm=request.algorithm,
            k=request.k,
            priority=request.priority,
        )
        error = QueryRejected(reason, f"request rejected: {reason.value}")
        future.set_result(QueryResponse(request=request, error=error))
        return future

    def _take_batch(self) -> tuple[Hashable, list[_Pending]] | None:
        """Block until a batch is available; ``None`` means shut down."""
        with self._lock:
            while not self._ready and not self._closed:
                self._work_ready.wait()
            if not self._ready:
                return None  # closed and drained
            key = self._ready.popleft()
            self._active.add(key)
            bucket = self._pending[key]
            batch = []
            while bucket and len(batch) < self.max_batch:
                batch.append(bucket.popleft())
            if not bucket:
                del self._pending[key]
            self._queued -= len(batch)
            return key, batch

    def _finish_key(self, key: Hashable) -> None:
        """Mark a key idle again, rescheduling it if work arrived meanwhile."""
        with self._lock:
            self._active.discard(key)
            if key in self._pending:
                self._ready.append(key)
                self._work_ready.notify()

    def _worker_loop(self) -> None:
        while True:
            taken = self._take_batch()
            if taken is None:
                return
            key, batch = taken
            try:
                self._serve_batch(key, batch)
            finally:
                self._finish_key(key)

    def _make_session(self, scorer):
        """Build a cold session, throttled by the build gate."""
        with self._build_gate:
            return self.backend.make_session(scorer)

    def _serve_batch(self, key: Hashable, batch: list[_Pending]) -> None:
        scorer = batch[0].request.scorer
        try:
            session, pool_hit = self.pool.checkout(
                key, lambda: self._make_session(scorer)
            )
        except BaseException as exc:
            # A session that cannot be built (e.g. a scorer whose
            # dimensionality doesn't match the dataset) fails this batch's
            # futures — never the worker thread, which must keep serving.
            done = time.perf_counter()
            for item in batch:
                item.future.set_exception(exc)
                self._settle_flight(item, exc, batch_size=len(batch), done=done)
            return
        self.metrics.record_batch(pool_hit)
        try:
            self._execute_batch(batch, session, pool_hit)
        finally:
            self.pool.checkin(key, session)

    @staticmethod
    def _flight_signature(request: QueryRequest) -> tuple:
        """What makes two same-preference requests the *same* query."""
        return (
            request.k,
            request.tau,
            request.interval,
            request.direction,
            request.algorithm,
        )

    def _settle_flight(
        self,
        item: _Pending,
        outcome,
        *,
        batch_size: int,
        done: float,
        pool_hit: bool = False,
    ) -> None:
        """Resolve everyone who joined ``item``'s flight from its outcome.

        Followers inherit the leader's fate — a clone of its answer, its
        timeout/shutdown rejection, or its exception — exactly as if
        they had landed in the leader's batch. A follower whose own
        deadline passed still gets the answer: it exists, and serving it
        is strictly better than manufacturing a timeout.
        """
        if item.flight is None:
            return
        followers = self.inflight.settle(item.flight)
        item.flight = None
        if not followers:
            return
        self.metrics.record_coalesced(len(followers), mode="inflight")
        for follower in followers:
            waited = max(0.0, done - follower.enqueued)
            if isinstance(outcome, QueryRejected):
                self.metrics.record_rejection(outcome.reason)
                follower.future.set_result(
                    QueryResponse(
                        request=follower.request,
                        error=outcome,
                        wait_seconds=waited,
                        total_seconds=waited,
                        batch_size=batch_size,
                        pool_hit=pool_hit,
                        extra={"cache": "inflight"},
                    )
                )
            elif isinstance(outcome, BaseException):
                follower.future.set_exception(outcome)
            else:
                response = QueryResponse(
                    request=follower.request,
                    result=clone_result(outcome, query=follower.request.as_query()),
                    wait_seconds=waited,
                    total_seconds=waited,
                    batch_size=batch_size,
                    pool_hit=pool_hit,
                    extra={"cache": "inflight"},
                )
                self.metrics.record_response(response)
                follower.future.set_result(response)

    def _execute_batch(
        self, batch: list[_Pending], session, pool_hit: bool
    ) -> None:
        """Serve one same-preference batch through ``backend.execute_batch``.

        The batch trace span opens *before* timeout filtering, so a
        request rejected for queue-wait timeout resolves inside the span
        and its ``service.reject`` log line carries this batch's trace
        id. Survivors are single-flighted (identical queries execute
        once, every waiter gets a copy of the one answer) and handed to
        the backend as a whole batch, so one index traversal serves all
        of them.
        """
        batch_size = len(batch)
        # The batch trace roots at the earliest enqueue, so trace
        # duration equals end-to-end latency (queue wait included) and
        # the slowest-N buffer keeps the worst-latency batches.
        first_enqueued = min(item.enqueued for item in batch)
        with trace_span(
            "service.batch",
            _start=first_enqueued,
            batch_size=batch_size,
            pool_hit=pool_hit,
        ) as span:
            now = time.perf_counter()
            live: list[tuple[_Pending, float]] = []
            for item in batch:
                wait = now - item.enqueued
                timeout = (
                    item.request.timeout
                    if item.request.timeout is not None
                    else self.default_timeout
                )
                if timeout is not None and wait > timeout:
                    self.metrics.record_rejection(RejectionReason.TIMEOUT)
                    context = current_context()
                    log_event(
                        "service.reject",
                        reason=RejectionReason.TIMEOUT.value,
                        trace_id=context[0] if context else None,
                        algorithm=item.request.algorithm,
                        k=item.request.k,
                        priority=item.request.priority,
                        wait_ms=round(wait * 1e3, 3),
                    )
                    error = QueryRejected(
                        RejectionReason.TIMEOUT,
                        f"queued {wait * 1e3:.1f} ms > timeout {timeout * 1e3:.1f} ms",
                    )
                    item.future.set_result(
                        QueryResponse(
                            request=item.request,
                            error=error,
                            wait_seconds=wait,
                            total_seconds=wait,
                            batch_size=batch_size,
                            pool_hit=pool_hit,
                        )
                    )
                    self._settle_flight(
                        item, error, batch_size=batch_size, done=now, pool_hit=pool_hit
                    )
                    continue
                live.append((item, wait))
            if not live:
                span.set(timed_out=batch_size, leaders=0, coalesced=0)
                return
            if len(live) < batch_size:
                span.set(timed_out=batch_size - len(live))
            add_span(
                "service.queue_wait",
                start=first_enqueued,
                duration=now - first_enqueued,
                wait_min=round(min(wait for _, wait in live), 6),
                wait_max=round(max(wait for _, wait in live), 6),
            )
            # Single-flight: identical in-flight queries collapse onto one
            # execution slot; `source[i]` maps live item i to its leader.
            flight_of: dict[tuple, int] = {}
            leaders: list[_Pending] = []
            source: list[int] = []
            for item, _ in live:
                signature = self._flight_signature(item.request)
                slot = flight_of.get(signature)
                if slot is None:
                    slot = len(leaders)
                    flight_of[signature] = slot
                    leaders.append(item)
                source.append(slot)
            coalesced = len(live) - len(leaders)
            if coalesced:
                self.metrics.record_coalesced(coalesced, mode="batch")
            span.set(leaders=len(leaders), coalesced=coalesced)

            try:
                results: list = self.backend.execute_batch(
                    session, [leader.request for leader in leaders]
                )
            except BaseException:
                # The batched path failed as a whole; fall back to per-leader
                # execution so a single bad request (e.g. a direction the
                # backend rejects) fails only its own group's futures.
                results = []
                for leader in leaders:
                    try:
                        results.append(self.backend.execute(session, leader.request))
                    except BaseException as exc:
                        results.append(exc)

            done = time.perf_counter()
            for (item, wait), slot in zip(live, source):
                outcome = results[slot]
                if isinstance(outcome, BaseException):
                    item.future.set_exception(outcome)
                    self._settle_flight(
                        item, outcome,
                        batch_size=batch_size, done=done, pool_hit=pool_hit,
                    )
                    continue
                if self.cache is not None and item is leaders[slot]:
                    # Fill at the epoch the answer was computed at (the
                    # live snapshot stamp when present): under ingest
                    # that epoch may already trail the current one, and
                    # such a fill can never be served — exactly right.
                    version = outcome.extra.get("snapshot_version")
                    if version is None:
                        version = self._version_of()
                    self.cache.put(item.request, version, outcome)
                result = outcome if item is leaders[slot] else clone_result(outcome)
                response = QueryResponse(
                    request=item.request,
                    result=result,
                    wait_seconds=wait,
                    service_seconds=done - now,
                    total_seconds=done - item.enqueued,
                    batch_size=batch_size,
                    pool_hit=pool_hit,
                )
                self.metrics.record_response(response)
                item.future.set_result(response)
                self._settle_flight(
                    item, outcome, batch_size=batch_size, done=done, pool_hit=pool_hit
                )


class LockedEngineService:
    """The naive multi-client layer: one global lock around the engine.

    Every request — including any index (re)build the engine's LRU has
    evicted — runs under the lock, so clients serialise end to end. This
    is the baseline the session-pooled service is measured against; it
    deliberately has no queue, no batching and no pooling beyond the
    engine's own ``PREFERENCE_CACHE_SIZE``-entry index LRU.
    """

    def __init__(self, engine, metrics: MetricsCollector | None = None) -> None:
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self._lock = threading.Lock()

    def query(self, request: QueryRequest) -> QueryResponse:
        self.metrics.record_submit()
        start = time.perf_counter()
        with self._lock:
            acquired = time.perf_counter()
            result = self.engine.query(
                request.as_query(), request.scorer, algorithm=request.algorithm
            )
        done = time.perf_counter()
        response = QueryResponse(
            request=request,
            result=result,
            wait_seconds=acquired - start,
            service_seconds=done - acquired,
            total_seconds=done - start,
        )
        self.metrics.record_response(response)
        return response

    def close(self) -> None:
        """Nothing to release (no workers, no pool)."""

    def __enter__(self) -> "LockedEngineService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
