"""Cross-batch single-flight: one in-flight execution absorbs duplicates.

PR 6's single-flight coalescing collapses duplicate queries that happen
to land in the *same* batch pickup — a worker deduplicates its batch,
executes each distinct query once and clones the leader's report for the
followers. But a duplicate arriving one batch *later* still paid a full
execution, even though an identical query was already on its way through
a backend.

:class:`InFlightRegistry` lifts that window from one batch to the whole
queue residency of the leader. The first request for a structural key
``(preference, k, tau, I, direction, algorithm)`` **opens a flight** and
proceeds through admission as usual; any identical request submitted
while that flight is open **joins** it instead of entering the queue —
no admission slot, no session, no execution. When the leader's batch
settles, the service resolves every follower from the leader's outcome:
a clone of the report on success, the same rejection on
timeout/shutdown, the same exception on failure. Followers therefore
inherit the leader's fate — exactly what would have happened had they
landed in the leader's batch — and can never be left hanging: every
path through ``_execute_batch`` settles the flight, and ``drain()``
sweeps whatever remains at shutdown.

Unlike the answer cache, the registry is *not* keyed on dataset version:
joining a flight hands out a **future** execution whose snapshot is
taken at execution time, which is valid for every waiter regardless of
how many ingest epochs pass between submit and pickup. (The answer
cache replays a *past* execution and therefore must pin the epoch.)

The registry only tracks membership; turning a leader outcome into
follower responses (and metrics) stays in the service, which owns those
types. Thread-safe: one lock arbitrates open/join/settle, so a join
either lands before settlement (the leader delivers it) or misses the
flight entirely and falls back to normal admission.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable

__all__ = ["InFlight", "InFlightRegistry"]


class InFlight:
    """One open flight: the leader's key plus the followers it absorbed."""

    __slots__ = ("key", "followers")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.followers: list[Any] = []


class InFlightRegistry:
    """Membership tracking for in-flight executions, keyed on structure."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, InFlight] = {}

    def open(self, key: Hashable) -> InFlight | None:
        """Open a flight for ``key``; ``None`` if one is already open.

        The caller that receives a flight is its leader and *must*
        eventually :meth:`settle` it (the service does so on every
        outcome path, including rejection).
        """
        with self._lock:
            if key in self._flights:
                return None
            flight = InFlight(key)
            self._flights[key] = flight
            return flight

    def join(self, key: Hashable, item: Any) -> bool:
        """Attach ``item`` to an open flight; ``False`` if none is open."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                return False
            flight.followers.append(item)
            return True

    def settle(self, flight: InFlight) -> list[Any]:
        """Close ``flight`` and hand its followers to the caller.

        After settlement no further join can reach the flight, so the
        returned list is complete and exclusively owned by the caller.
        """
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
            followers = flight.followers
            flight.followers = []
            return followers

    def drain(self) -> list[tuple[InFlight, list[Any]]]:
        """Settle every open flight (shutdown sweep)."""
        with self._lock:
            flights = list(self._flights.values())
            self._flights.clear()
            drained = []
            for flight in flights:
                followers = flight.followers
                flight.followers = []
                drained.append((flight, followers))
            return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)
