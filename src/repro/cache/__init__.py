"""Semantic answer caching for durable top-k serving.

Three tiers of structural reuse, cheapest first:

* **exact** — :class:`SemanticAnswerCache`: a byte-bounded LRU of
  completed answers keyed on ``(version, preference, algorithm, k, tau,
  I, direction)``. A hit replays a clone and skips the queue entirely.
* **in-flight** — :class:`InFlightRegistry`: cross-batch single-flight;
  a request identical to one already travelling through a backend joins
  that flight instead of executing.
* **seeded** — :class:`WindowMemo`: a persistent per-session window memo
  that survives between batches, so contained/overlapping queries reuse
  earlier traversals while still producing byte-identical output.

All three invalidate by epoch (``Dataset.version`` / live snapshot
version), never by scanning.
"""

from repro.cache.answers import SemanticAnswerCache
from repro.cache.inflight import InFlight, InFlightRegistry
from repro.cache.windows import WindowMemo

__all__ = [
    "InFlight",
    "InFlightRegistry",
    "SemanticAnswerCache",
    "WindowMemo",
]
