"""The seeded tier: a persistent cross-batch window memo.

:class:`WindowMemo` generalises the batch-scoped
:class:`~repro.index.topk.BatchTopKMemo` into a structure that survives
between batches on a pooled session. The placement is identical — the
memo wraps the raw preference-bound index and each query's
:class:`~repro.index.topk.CountingTopKIndex` wraps the memo — so a
*seeded* execution still runs the real algorithm and charges the real
:class:`~repro.core.query.QueryStats`: ids, durations and stats are
byte-identical to a cold run by construction. What the seed buys is the
traversal work: a later batch whose queries revisit windows an earlier
batch already answered (contained intervals and same-``tau``
trajectories share their suffix from the first durable record below
``min(hi)`` on — the candidate-set structure of Lemmas 4/5) gets those
answers from the memo instead of the index.

Epoch safety mirrors the answer cache: every batch re-binds the memo via
:meth:`bind` with the dataset/snapshot version it is about to serve;
a version change drops every entry, so ingest invalidates by epoch and
a stale window can never seed a newer epoch's query. Re-binding under
the *same* version advances a generation counter — a hit on an entry
written by an earlier generation is a **seed** (cross-batch reuse), and
is counted both locally and in the process-wide
``cache.window_seeds`` counter the dashboard rates.

Memory is bounded by an entry-count LRU (answers are small: Lemma 4
sizes the expected answer at ``k|I|/(tau+1)`` records, and a window
entry holds at most ``k`` ids). Not thread-safe — a memo belongs to one
session, and the service serves at most one batch per preference key at
a time, which is the same contract every session cache relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.index.topk import TopKIndex
from repro.obs import global_registry

__all__ = ["WindowMemo"]


class WindowMemo:
    """A bounded, epoch-aware top-k window memo that outlives its batch.

    Implements the :class:`~repro.index.topk.TopKIndex` protocol by
    delegation (plus :meth:`prime`, the vectorised pre-answer hook), so
    the engine and the live dataset can drop it in wherever a
    :class:`~repro.index.topk.BatchTopKMemo` fits.

    Parameters
    ----------
    max_entries:
        Windows retained across batches (LRU-evicted). Entries are
        small — a ``topk`` answer holds at most ``k`` ids — so the
        default keeps a deep history for well under a megabyte.
    """

    __slots__ = (
        "_inner",
        "_version",
        "_generation",
        "_topk",
        "_top1",
        "max_entries",
        "hits",
        "seeds",
        "evictions",
        "invalidations",
    )

    def __init__(self, max_entries: int = 8192) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._inner: TopKIndex | None = None
        self._version: object = None
        self._generation = 0
        # key -> [answer, generation]; OrderedDict gives the LRU order.
        self._topk: "OrderedDict[tuple, list]" = OrderedDict()
        self._top1: "OrderedDict[tuple, list]" = OrderedDict()
        self.hits = 0
        self.seeds = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, inner: TopKIndex, version: object) -> "WindowMemo":
        """Point the memo at this batch's index/epoch; returns ``self``.

        Same ``version`` as the previous bind: entries survive and the
        generation advances (hits on older-generation entries count as
        seeds). Different version: every entry is dropped — the epoch
        invalidation that makes staleness impossible by construction.
        """
        if version != self._version:
            if self._topk or self._top1:
                self.invalidations += 1
            self._topk.clear()
            self._top1.clear()
            self._version = version
            self._generation = 0
        else:
            self._generation += 1
        self._inner = inner
        return self

    def clear(self) -> None:
        """Drop every memoised window (the binding itself is kept)."""
        self._topk.clear()
        self._top1.clear()

    @property
    def entries(self) -> int:
        return len(self._topk) + len(self._top1)

    def stats(self) -> dict[str, int]:
        return {
            "entries": self.entries,
            "hits": self.hits,
            "seeds": self.seeds,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    # ------------------------------------------------------------------
    # TopKIndex protocol (plus prime), memoised
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._inner.n

    def score(self, record_id: int) -> float:
        return self._inner.score(record_id)

    def _hit(self, store: "OrderedDict[tuple, list]", key: tuple, entry: list):
        store.move_to_end(key)
        self.hits += 1
        if entry[1] != self._generation:
            # Written by an earlier batch: this lookup was *seeded*.
            # Refresh the generation so one batch counts a window once.
            entry[1] = self._generation
            self.seeds += 1
            global_registry().counter("cache.window_seeds").inc()
        return entry[0]

    def _insert(self, store: "OrderedDict[tuple, list]", key: tuple, answer) -> None:
        store[key] = [answer, self._generation]
        if len(store) > self.max_entries:
            store.popitem(last=False)
            self.evictions += 1

    def top1(self, lo: int, hi: int) -> int | None:
        key = (lo, hi)
        entry = self._top1.get(key)
        if entry is not None:
            return self._hit(self._top1, key, entry)
        found = self._inner.top1(lo, hi)
        self._insert(self._top1, key, found)
        return found

    def topk(self, k: int, lo: int, hi: int) -> list[int]:
        key = (k, lo, hi)
        entry = self._topk.get(key)
        if entry is not None:
            return self._hit(self._topk, key, entry)
        found = self._inner.topk(k, lo, hi)
        self._insert(self._topk, key, found)
        return found

    def prime(self, k: int, windows: Sequence[tuple[int, int]]) -> None:
        """Pre-answer ``windows`` for rank ``k`` in one vectorised pass.

        Windows already memoised (from this batch's plan *or* an earlier
        batch — the cross-batch seed) are skipped; the rest go through
        the inner index's ``topk_batch`` when it has one.
        """
        batch = getattr(self._inner, "topk_batch", None)
        if batch is None:
            return
        fresh = [w for w in windows if (k, w[0], w[1]) not in self._topk]
        if not fresh:
            return
        for (lo, hi), ids in zip(fresh, batch(k, fresh)):
            self._insert(self._topk, (k, lo, hi), ids)
