"""The exact tier: a semantic answer cache keyed on query structure.

Durable top-k answers are small, structured objects — Lemma 4 bounds the
expected answer size at ``E[|S|] = k|I|/(tau+1)`` records (validated in
``results/lemma4_answer_size.txt``) — and the serving workload is
Zipfian over a fixed catalogue of preferences whose hot query shapes
repeat verbatim. :class:`SemanticAnswerCache` exploits both facts: it
stores one completed :class:`~repro.core.query.DurableTopKResult` per
query *structure*

    ``(dataset_version, preference, algorithm, k, tau, I, direction)``

and replays an independent clone on an exact structural hit, skipping
the admission queue, the session pool and the execution backend
entirely.

Three properties the design pins down:

* **Staleness is impossible by construction.** The version is part of
  the key: lookups use the backend's *current* dataset/snapshot version,
  fills use the version the answer was actually computed at (the live
  backend's ``snapshot_version`` stamp). Ingest therefore invalidates
  by epoch — an old entry simply stops matching and rots out of the
  LRU — never by scanning.
* **Memory is bounded in bytes, with a Lemma-4 admission estimate.**
  The cache holds at most ``capacity_bytes`` of estimated answer
  payload; at admission a query with a known interval is sized by the
  lemma (``k|I|/(tau+1)`` ids) before its actual answer is weighed, and
  an entry estimated above ``max_entry_bytes`` is refused outright —
  one pathological full-domain query cannot wipe the working set.
* **A hit is a replay, not a reference.** Both fill and hit go through
  :func:`~repro.core.batch.clone_result`, so callers can mutate their
  response (and the service can stamp serving metadata) without
  aliasing the cached copy.

Lookup outcomes are counted per tier in the metrics registry
(``cache.lookups{tier=exact|miss}``), resident bytes ride the
``cache.bytes`` gauge, and every lookup opens a ``cache.lookup`` trace
span — the same one-boolean-check fast path as every other span when
tracing is off. Thread-safe: one lock around the LRU, held only for
dict operations (cloning happens outside it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.analysis.expected import expected_answer_size
from repro.core.batch import clone_result
from repro.core.query import DurableTopKResult
from repro.obs import MetricsRegistry, global_registry, trace_span

__all__ = ["SemanticAnswerCache"]

#: Fixed per-entry overhead estimate: result object, query, stats and
#: dict plumbing — everything that is not the ids/durations payload.
ENTRY_OVERHEAD_BYTES = 120


@dataclass
class _Entry:
    """One cached answer with the bytes it is charged for."""

    result: DurableTopKResult
    bytes: int


def _result_bytes(result: DurableTopKResult) -> int:
    """Actual charge for a completed answer (ids + durations payload)."""
    charged = ENTRY_OVERHEAD_BYTES + 8 * len(result.ids)
    if result.durations:
        charged += 16 * len(result.durations)
    return charged


class SemanticAnswerCache:
    """Byte-bounded LRU of durable top-k answers, keyed on structure.

    Parameters
    ----------
    capacity_bytes:
        Total estimated answer bytes retained (LRU-evicted beyond it).
    max_entry_bytes:
        Admission ceiling for a single answer; defaults to an eighth of
        the capacity. Estimated via Lemma 4 when the query carries an
        explicit interval, else via the actual answer size.
    registry:
        Metrics registry for the lookup/bytes series; defaults to the
        process-wide :func:`~repro.obs.global_registry` so Prometheus
        export and ``repro top`` see cache traffic without wiring.
    """

    def __init__(
        self,
        capacity_bytes: int = 64 * 1024 * 1024,
        max_entry_bytes: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity_bytes < 1:
            raise ValueError(f"capacity_bytes must be >= 1, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.max_entry_bytes = (
            max_entry_bytes if max_entry_bytes is not None else capacity_bytes // 8
        )
        self.registry = registry if registry is not None else global_registry()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.admission_rejected = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _key(request, version: object) -> Hashable:
        """The structural identity of one request at one epoch.

        ``request.key`` is the service's preference key (the scorer's
        weight content, not its object identity), so equal-preference
        requests share entries exactly as they share sessions. The raw
        interval is used as given — the workload model repeats shapes
        verbatim — and the version pins the epoch.
        """
        return (
            version,
            request.key,
            request.algorithm,
            request.k,
            request.tau,
            request.interval,
            request.direction,
        )

    @staticmethod
    def estimate_bytes(request) -> int | None:
        """Lemma-4 admission estimate; ``None`` without an explicit interval."""
        if request.interval is None:
            return None
        lo, hi = request.interval
        expected = expected_answer_size(request.k, abs(hi - lo) + 1, request.tau)
        return ENTRY_OVERHEAD_BYTES + int(8 * expected)

    # ------------------------------------------------------------------
    def get(self, request, version: object) -> DurableTopKResult | None:
        """An independent clone of the cached answer, or ``None``.

        ``version`` must be the backend's *current* dataset/snapshot
        version — an entry filled at an older epoch can never match.
        """
        key = self._key(request, version)
        with trace_span(
            "cache.lookup",
            algorithm=request.algorithm,
            k=request.k,
            tau=request.tau,
        ) as span:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                else:
                    self.misses += 1
            tier = "exact" if entry is not None else "miss"
            span.set(tier=tier)
        self.registry.counter("cache.lookups", tier=tier).inc()
        if entry is None:
            return None
        return clone_result(entry.result, query=request.as_query())

    def put(self, request, version: object, result: DurableTopKResult) -> bool:
        """Admit one completed answer; returns whether it was cached.

        ``version`` is the epoch the answer was computed at (for live
        backends: the snapshot version stamped on the result), which may
        already trail the backend's current version — such an entry is
        admitted but can never be served, and the LRU retires it.
        """
        estimated = self.estimate_bytes(request)
        actual = _result_bytes(result)
        if max(estimated or 0, actual) > self.max_entry_bytes:
            with self._lock:
                self.admission_rejected += 1
            return False
        entry = _Entry(clone_result(result), actual)
        key = self._key(request, version)
        evicted = 0
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.bytes -= previous.bytes
            self._entries[key] = entry
            self.bytes += entry.bytes
            self.fills += 1
            while self.bytes > self.capacity_bytes and self._entries:
                _, old = self._entries.popitem(last=False)
                self.bytes -= old.bytes
                evicted += 1
            self.evictions += evicted
            resident = self.bytes
        if evicted:
            self.registry.counter("cache.evictions").inc(evicted)
        self.registry.gauge("cache.bytes").set(resident)
        return True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, float | int]:
        with self._lock:
            entries = len(self._entries)
            resident = self.bytes
        return {
            "entries": entries,
            "bytes": resident,
            "capacity_bytes": self.capacity_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "fills": self.fills,
            "evictions": self.evictions,
            "admission_rejected": self.admission_rejected,
        }

    def clear(self) -> None:
        """Drop every entry (counters survive; used by benches/tests)."""
        with self._lock:
            self._entries.clear()
            self.bytes = 0
        self.registry.gauge("cache.bytes").set(0)
