"""Sharded scatter-gather serving: multi-process durable top-k.

The single-process service is GIL-bound: past a handful of workers,
extra threads only take turns. This package splits the time domain into
contiguous ownership spans, runs one **unmodified** engine per span in
its own process (the dataset handed off through one shared-memory
block, never pickled), and scatters each durable top-k query to the
spans its interval intersects. Per-span answers concatenate losslessly
under the canonical order — the same composition property the ingest
tier's :class:`~repro.ingest.segments.SegmentedTopKIndex` relies on —
so merged answers are byte-identical to a single-process run while
throughput finally scales with cores.

Plug into the serving layer via
:class:`~repro.service.backends.ShardedBackend`; benchmark with
``repro shard-bench`` (see ``EXPERIMENTS.md``, "Sharded serving").
"""

from repro.shard.coordinator import (
    ShardCoordinator,
    ShardCrashed,
    ShardRemoteError,
    ShardWorkerHandle,
)
from repro.shard.dataset import (
    ShardedDataset,
    SharedDatasetHandle,
    ShardSpan,
    merge_shard_answers,
    partition_spans,
)
from repro.shard.worker import pack_stats, shard_worker_main, unpack_stats

__all__ = [
    "ShardCoordinator",
    "ShardCrashed",
    "ShardRemoteError",
    "ShardSpan",
    "ShardWorkerHandle",
    "ShardedDataset",
    "SharedDatasetHandle",
    "merge_shard_answers",
    "pack_stats",
    "partition_spans",
    "shard_worker_main",
    "unpack_stats",
]
