"""The shard worker: one process, one engine, one ownership span.

A worker is deliberately boring — that is the point of the design. It
maps the shared dataset, builds an unmodified
:class:`~repro.core.engine.DurableTopKEngine` over it, keeps warm
per-preference sessions in its own
:class:`~repro.service.pool.SessionPool`, and answers sub-queries whose
interval the coordinator has already clipped to the worker's span. No
sharding logic runs here: every answer the worker produces is exactly
what a single-process engine would produce for the same sub-interval,
which is what makes the coordinator's merge a pure concatenation.

The wire protocol is one request/response pair per message over a
``multiprocessing`` pipe::

    (seq, op, payload[, trace_ctx])          coordinator -> worker
    (seq, "ok", result_payload[, spans])     worker -> coordinator
    (seq, "err", (kind, message, traceback)[, spans])

``trace_ctx`` is an optional ``(trace_id, parent_span_id)`` pair: when
present the worker collects its spans (engine/index work under a
``shard.worker`` root) under that id and ships them back as the fourth
response element, so the coordinator can stitch one trace tree spanning
both processes. Plain 3-tuples remain valid in both directions.

Ops: ``"query"`` (the workhorse), ``"query_batch"`` (a whole batch of
clipped sub-queries for one preference in one message, answered through
the session's shared-pass ``query_batch``), ``"ping"`` (health check),
``"stats"`` (pool/served counters), ``"exit"`` (clean shutdown). Errors are caught
per message and shipped back as data — a bad request must fail *that
request*, never the worker.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import fields
from typing import Any

from repro.core.engine import DurableTopKEngine
from repro.core.query import Direction, DurableTopKQuery, QueryStats
from repro.obs import begin_remote, end_remote, trace_span
from repro.service.pool import SessionPool
from repro.service.request import preference_key
from repro.shard.dataset import ShardSpan, SharedDatasetHandle

__all__ = ["pack_stats", "shard_worker_main", "unpack_stats"]


def pack_stats(stats: QueryStats) -> dict[str, int]:
    """A :class:`QueryStats` as a plain field dict (wire-friendly)."""
    return {f.name: getattr(stats, f.name) for f in fields(QueryStats)}


def unpack_stats(data: dict[str, int]) -> QueryStats:
    """Rebuild a :class:`QueryStats` from :func:`pack_stats` output.

    Unknown keys are ignored so coordinator and worker builds can skew
    by one release without breaking the wire format.
    """
    names = {f.name for f in fields(QueryStats)}
    return QueryStats(**{key: int(value) for key, value in data.items() if key in names})


def _answer_query(engine: DurableTopKEngine, pool: SessionPool, payload: dict) -> dict:
    """Run one clipped sub-query through a pooled per-preference session."""
    scorer = payload["scorer"]
    query = DurableTopKQuery(
        k=payload["k"],
        tau=payload["tau"],
        interval=(payload["lo"], payload["hi"]),
        direction=Direction(payload["direction"]),
    )
    key = preference_key(scorer)
    session, pool_hit = pool.checkout(key, lambda: engine.session(scorer))
    try:
        result = session.query(
            query,
            algorithm=payload["algorithm"],
            with_durations=payload["with_durations"],
        )
    finally:
        pool.checkin(key, session)
    return {
        "ids": result.ids,
        "durations": result.durations,
        "stats": pack_stats(result.stats),
        "elapsed": result.elapsed_seconds,
        "algorithm": result.algorithm,
        "pool_hit": pool_hit,
    }


def _answer_query_batch(engine: DurableTopKEngine, pool: SessionPool, payload: dict) -> list[dict]:
    """Run one batched sub-request: many clipped windows, one preference.

    The coordinator ships all of a batch's sub-queries for this span in a
    single message; the pooled session's
    :meth:`~repro.core.engine.EngineSession.query_batch` answers them in
    one shared pass (memoised windows, deduplicated twins), byte-identical
    to a loop of ``"query"`` ops. Answers come back aligned with
    ``payload["queries"]``.
    """
    scorer = payload["scorer"]
    entries = payload["queries"]
    queries = [
        DurableTopKQuery(
            k=entry["k"],
            tau=entry["tau"],
            interval=(entry["lo"], entry["hi"]),
            direction=Direction(entry["direction"]),
        )
        for entry in entries
    ]
    key = preference_key(scorer)
    session, pool_hit = pool.checkout(key, lambda: engine.session(scorer))
    try:
        results = session.query_batch(
            queries,
            algorithm=[entry["algorithm"] for entry in entries],
            with_durations=payload["with_durations"],
        )
    finally:
        pool.checkin(key, session)
    return [
        {
            "ids": result.ids,
            "durations": result.durations,
            "stats": pack_stats(result.stats),
            "elapsed": result.elapsed_seconds,
            "algorithm": result.algorithm,
            "pool_hit": pool_hit,
        }
        for result in results
    ]


def shard_worker_main(
    conn: Any,
    handle: SharedDatasetHandle,
    span: ShardSpan,
    pool_capacity: int = 64,
) -> None:
    """Process entry point: serve ``conn`` until ``"exit"`` or EOF."""
    dataset, shm = handle.attach()
    engine = DurableTopKEngine(dataset)
    pool = SessionPool(pool_capacity)
    served = 0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            seq, op, payload = message[0], message[1], message[2]
            trace_ctx = message[3] if len(message) > 3 else None
            remote = begin_remote(trace_ctx) if trace_ctx is not None else None
            spans: list[dict] | None = None
            try:
                if op == "query":
                    with trace_span("shard.worker", shard=span.shard, op=op, pid=os.getpid()):
                        out = _answer_query(engine, pool, payload)
                    served += 1
                elif op == "query_batch":
                    with trace_span("shard.worker", shard=span.shard, op=op, pid=os.getpid()):
                        out = _answer_query_batch(engine, pool, payload)
                    served += len(payload["queries"])
                elif op == "ping":
                    out = {
                        "shard": span.shard,
                        "pid": os.getpid(),
                        "span": (span.lo, span.hi),
                        "n": dataset.n,
                        "served": served,
                    }
                elif op == "stats":
                    out = {
                        "shard": span.shard,
                        "served": served,
                        "pool": pool.stats(),
                    }
                elif op == "exit":
                    break
                else:
                    raise ValueError(f"unknown shard worker op: {op!r}")
            except Exception as exc:
                if remote is not None:
                    spans = end_remote(remote)
                detail = (type(exc).__name__, str(exc), traceback.format_exc())
                try:
                    conn.send((seq, "err", detail, spans))
                except (BrokenPipeError, OSError):
                    break
                continue
            if remote is not None:
                spans = end_remote(remote)
            try:
                conn.send((seq, "ok", out, spans))
            except (BrokenPipeError, OSError):
                break
    finally:
        pool.close()
        try:
            conn.close()
        except OSError:
            pass
        shm.close()
