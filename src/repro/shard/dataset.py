"""Range partitioning and the pickle-free shared-memory dataset handoff.

The shard tier splits the *time domain*, not the storage: every worker
process maps the same ``(n, d)`` attribute matrix out of one
POSIX shared-memory block (zero copies, nothing pickled), and each shard
*owns* a contiguous span of arrival times. A durable top-k query is
scattered as one sub-query per span it intersects; each worker answers
its sub-interval against the **full** history (a record's durability
window ``[t - tau, t]`` may reach arbitrarily far outside the span that
owns ``t``, so workers must see every row — ownership bounds the records
a shard *reports*, never the records it *reads*).

Exactness of the scatter-gather rests on the same composition property
PR 3's :class:`~repro.ingest.segments.SegmentedTopKIndex` proved for
stitched indexes: membership in ``DurTop(k, I, tau)`` is decided per
record by its own window against the full dataset and is independent of
``I``, so partitioning ``I`` across shards and concatenating the
per-span answers in span order reproduces — byte for byte, ties
included — the answer a single-process run would give.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import NamedTuple, Sequence

import numpy as np

from repro.core.record import Dataset

__all__ = [
    "ShardSpan",
    "SharedDatasetHandle",
    "ShardedDataset",
    "merge_shard_answers",
    "partition_spans",
]


class ShardSpan(NamedTuple):
    """One shard's contiguous ownership range ``[lo, hi]`` (inclusive)."""

    shard: int
    lo: int
    hi: int

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def intersect(self, lo: int, hi: int) -> tuple[int, int] | None:
        """The overlap of this span with ``[lo, hi]``, or ``None``."""
        a, b = max(self.lo, lo), min(self.hi, hi)
        return (a, b) if a <= b else None


def partition_spans(n: int, n_shards: int) -> list[ShardSpan]:
    """Split ``[0, n)`` into ``n_shards`` near-equal contiguous spans.

    The first ``n % n_shards`` spans get one extra record; the shard
    count is capped at ``n`` so every span is non-empty.

    >>> partition_spans(10, 3)
    [ShardSpan(shard=0, lo=0, hi=3), ShardSpan(shard=1, lo=4, hi=6), ShardSpan(shard=2, lo=7, hi=9)]
    """
    if n < 1:
        raise ValueError(f"need at least one record, got n={n}")
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    n_shards = min(n_shards, n)
    base, extra = divmod(n, n_shards)
    spans = []
    lo = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        spans.append(ShardSpan(shard, lo, lo + size - 1))
        lo += size
    return spans


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing block without resource-tracker registration.

    An attaching process never owns the block, but before Python 3.13
    (``track=False``) every ``SharedMemory(name=...)`` registers with
    the resource tracker anyway — and since forked workers share the
    coordinator's tracker, those bogus registrations turn worker exit
    into spurious "leaked shared_memory" complaints against a block the
    creator still serves. Suppressing registration for the attach keeps
    the tracker's view correct: one registration at create, one
    unregistration at the creator's ``unlink``.
    """
    from multiprocessing import resource_tracker

    def _no_register(*args, **kwargs):
        return None

    original = resource_tracker.register
    resource_tracker.register = _no_register
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class SharedDatasetHandle:
    """Everything a worker needs to map the dataset: ~a hundred bytes.

    The attribute matrix itself never crosses the process boundary —
    only this handle does (it is what ``multiprocessing`` pickles into
    the worker's argument list), which is what makes the handoff
    pickle-free for the data.
    """

    shm_name: str
    shape: tuple[int, int]
    dtype: str
    name: str
    version: int

    def attach(self) -> tuple[Dataset, shared_memory.SharedMemory]:
        """Map the block and wrap it as a read-only :class:`Dataset`.

        Returns the dataset *and* the mapping, which the caller must
        keep alive (and ``close()``) for as long as the dataset is used;
        the array is a zero-copy view into the mapped buffer.
        """
        shm = _attach_untracked(self.shm_name)
        values = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)
        dataset = Dataset(values, name=self.name, version=self.version)
        return dataset, shm


def _release(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass


class ShardedDataset:
    """A dataset range-partitioned into spans, exported over shared memory.

    Parameters
    ----------
    dataset:
        The static dataset to shard. Its values are copied once into a
        fresh shared-memory block at construction; workers then map that
        block directly.
    n_shards:
        Number of ownership spans (capped at ``dataset.n``).

    The sharded dataset owns the shared-memory block: :meth:`close`
    (also run by a GC finalizer as a safety net) unmaps and unlinks it.
    Workers that are still attached keep their mapping alive — POSIX
    shared memory is reference-counted by mappings — so closing the
    coordinator-side handle never yanks data from under a worker.
    """

    def __init__(self, dataset: Dataset, n_shards: int) -> None:
        self.dataset = dataset
        self.spans = partition_spans(dataset.n, n_shards)
        values = dataset.values
        self._shm = shared_memory.SharedMemory(create=True, size=values.nbytes)
        shared = np.ndarray(values.shape, dtype=values.dtype, buffer=self._shm.buf)
        np.copyto(shared, values)
        self._finalizer = weakref.finalize(self, _release, self._shm)

    @property
    def n_shards(self) -> int:
        return len(self.spans)

    @property
    def n(self) -> int:
        return self.dataset.n

    @property
    def d(self) -> int:
        return self.dataset.d

    def handle(self) -> SharedDatasetHandle:
        """The picklable attachment token for worker processes."""
        values = self.dataset.values
        return SharedDatasetHandle(
            shm_name=self._shm.name,
            shape=(values.shape[0], values.shape[1]),
            dtype=values.dtype.str,
            name=self.dataset.name,
            version=self.dataset.version,
        )

    def spans_for(self, lo: int, hi: int) -> list[ShardSpan]:
        """The spans intersecting the (resolved) query interval."""
        return [span for span in self.spans if span.intersect(lo, hi) is not None]

    def close(self) -> None:
        """Unmap and unlink the shared block (idempotent)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "ShardedDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedDataset(name={self.dataset.name!r}, n={self.n}, shards={self.n_shards})"


def merge_shard_answers(answers: Sequence[Sequence[int]]) -> list[int]:
    """Concatenate per-span answers (given in span order) into one answer.

    Spans are disjoint and ascending and each per-span answer is
    ascending, so concatenation *is* the sorted union — the degenerate
    (and lossless) case of the canonical-order stitch used by
    :class:`~repro.ingest.segments.SegmentedTopKIndex` for per-part
    top-k candidates.
    """
    merged: list[int] = []
    for answer in answers:
        merged.extend(answer)
    return merged
